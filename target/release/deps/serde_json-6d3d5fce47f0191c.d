/root/repo/target/release/deps/serde_json-6d3d5fce47f0191c.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-6d3d5fce47f0191c.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-6d3d5fce47f0191c.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
