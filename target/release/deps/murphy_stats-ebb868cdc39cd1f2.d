/root/repo/target/release/deps/murphy_stats-ebb868cdc39cd1f2.d: crates/stats/src/lib.rs crates/stats/src/anomaly.rs crates/stats/src/cdf.rs crates/stats/src/correlation.rs crates/stats/src/mase.rs crates/stats/src/summary.rs crates/stats/src/ttest.rs

/root/repo/target/release/deps/libmurphy_stats-ebb868cdc39cd1f2.rlib: crates/stats/src/lib.rs crates/stats/src/anomaly.rs crates/stats/src/cdf.rs crates/stats/src/correlation.rs crates/stats/src/mase.rs crates/stats/src/summary.rs crates/stats/src/ttest.rs

/root/repo/target/release/deps/libmurphy_stats-ebb868cdc39cd1f2.rmeta: crates/stats/src/lib.rs crates/stats/src/anomaly.rs crates/stats/src/cdf.rs crates/stats/src/correlation.rs crates/stats/src/mase.rs crates/stats/src/summary.rs crates/stats/src/ttest.rs

crates/stats/src/lib.rs:
crates/stats/src/anomaly.rs:
crates/stats/src/cdf.rs:
crates/stats/src/correlation.rs:
crates/stats/src/mase.rs:
crates/stats/src/summary.rs:
crates/stats/src/ttest.rs:
