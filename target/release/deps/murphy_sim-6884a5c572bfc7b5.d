/root/repo/target/release/deps/murphy_sim-6884a5c572bfc7b5.d: crates/sim/src/lib.rs crates/sim/src/enterprise.rs crates/sim/src/faults.rs crates/sim/src/incidents.rs crates/sim/src/microservice.rs crates/sim/src/scenario.rs crates/sim/src/traces.rs crates/sim/src/workload.rs

/root/repo/target/release/deps/libmurphy_sim-6884a5c572bfc7b5.rlib: crates/sim/src/lib.rs crates/sim/src/enterprise.rs crates/sim/src/faults.rs crates/sim/src/incidents.rs crates/sim/src/microservice.rs crates/sim/src/scenario.rs crates/sim/src/traces.rs crates/sim/src/workload.rs

/root/repo/target/release/deps/libmurphy_sim-6884a5c572bfc7b5.rmeta: crates/sim/src/lib.rs crates/sim/src/enterprise.rs crates/sim/src/faults.rs crates/sim/src/incidents.rs crates/sim/src/microservice.rs crates/sim/src/scenario.rs crates/sim/src/traces.rs crates/sim/src/workload.rs

crates/sim/src/lib.rs:
crates/sim/src/enterprise.rs:
crates/sim/src/faults.rs:
crates/sim/src/incidents.rs:
crates/sim/src/microservice.rs:
crates/sim/src/scenario.rs:
crates/sim/src/traces.rs:
crates/sim/src/workload.rs:
