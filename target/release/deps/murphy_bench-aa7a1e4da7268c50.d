/root/repo/target/release/deps/murphy_bench-aa7a1e4da7268c50.d: crates/bench/src/lib.rs crates/bench/src/scale.rs

/root/repo/target/release/deps/libmurphy_bench-aa7a1e4da7268c50.rlib: crates/bench/src/lib.rs crates/bench/src/scale.rs

/root/repo/target/release/deps/libmurphy_bench-aa7a1e4da7268c50.rmeta: crates/bench/src/lib.rs crates/bench/src/scale.rs

crates/bench/src/lib.rs:
crates/bench/src/scale.rs:
