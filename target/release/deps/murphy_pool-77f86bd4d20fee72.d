/root/repo/target/release/deps/murphy_pool-77f86bd4d20fee72.d: crates/pool/src/lib.rs

/root/repo/target/release/deps/libmurphy_pool-77f86bd4d20fee72.rlib: crates/pool/src/lib.rs

/root/repo/target/release/deps/libmurphy_pool-77f86bd4d20fee72.rmeta: crates/pool/src/lib.rs

crates/pool/src/lib.rs:
