/root/repo/target/release/deps/murphy_telemetry-58700e4c9eb6f336.d: crates/telemetry/src/lib.rs crates/telemetry/src/association.rs crates/telemetry/src/changes.rs crates/telemetry/src/database.rs crates/telemetry/src/degrade.rs crates/telemetry/src/entity.rs crates/telemetry/src/metric.rs crates/telemetry/src/shard.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/timeseries.rs

/root/repo/target/release/deps/libmurphy_telemetry-58700e4c9eb6f336.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/association.rs crates/telemetry/src/changes.rs crates/telemetry/src/database.rs crates/telemetry/src/degrade.rs crates/telemetry/src/entity.rs crates/telemetry/src/metric.rs crates/telemetry/src/shard.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/timeseries.rs

/root/repo/target/release/deps/libmurphy_telemetry-58700e4c9eb6f336.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/association.rs crates/telemetry/src/changes.rs crates/telemetry/src/database.rs crates/telemetry/src/degrade.rs crates/telemetry/src/entity.rs crates/telemetry/src/metric.rs crates/telemetry/src/shard.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/timeseries.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/association.rs:
crates/telemetry/src/changes.rs:
crates/telemetry/src/database.rs:
crates/telemetry/src/degrade.rs:
crates/telemetry/src/entity.rs:
crates/telemetry/src/metric.rs:
crates/telemetry/src/shard.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/timeseries.rs:
