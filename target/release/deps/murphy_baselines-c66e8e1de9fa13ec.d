/root/repo/target/release/deps/murphy_baselines-c66e8e1de9fa13ec.d: crates/baselines/src/lib.rs crates/baselines/src/explainit.rs crates/baselines/src/netmedic.rs crates/baselines/src/sage.rs crates/baselines/src/scheme.rs

/root/repo/target/release/deps/libmurphy_baselines-c66e8e1de9fa13ec.rlib: crates/baselines/src/lib.rs crates/baselines/src/explainit.rs crates/baselines/src/netmedic.rs crates/baselines/src/sage.rs crates/baselines/src/scheme.rs

/root/repo/target/release/deps/libmurphy_baselines-c66e8e1de9fa13ec.rmeta: crates/baselines/src/lib.rs crates/baselines/src/explainit.rs crates/baselines/src/netmedic.rs crates/baselines/src/sage.rs crates/baselines/src/scheme.rs

crates/baselines/src/lib.rs:
crates/baselines/src/explainit.rs:
crates/baselines/src/netmedic.rs:
crates/baselines/src/sage.rs:
crates/baselines/src/scheme.rs:
