/root/repo/target/release/deps/murphy_graph-46a1e363b0ba644e.d: crates/graph/src/lib.rs crates/graph/src/build.rs crates/graph/src/cycles.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/prune.rs

/root/repo/target/release/deps/libmurphy_graph-46a1e363b0ba644e.rlib: crates/graph/src/lib.rs crates/graph/src/build.rs crates/graph/src/cycles.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/prune.rs

/root/repo/target/release/deps/libmurphy_graph-46a1e363b0ba644e.rmeta: crates/graph/src/lib.rs crates/graph/src/build.rs crates/graph/src/cycles.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/prune.rs

crates/graph/src/lib.rs:
crates/graph/src/build.rs:
crates/graph/src/cycles.rs:
crates/graph/src/graph.rs:
crates/graph/src/paths.rs:
crates/graph/src/prune.rs:
