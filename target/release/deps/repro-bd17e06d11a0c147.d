/root/repo/target/release/deps/repro-bd17e06d11a0c147.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-bd17e06d11a0c147: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
