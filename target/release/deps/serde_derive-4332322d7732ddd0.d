/root/repo/target/release/deps/serde_derive-4332322d7732ddd0.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-4332322d7732ddd0.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
