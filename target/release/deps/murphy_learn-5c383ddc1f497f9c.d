/root/repo/target/release/deps/murphy_learn-5c383ddc1f497f9c.d: crates/learn/src/lib.rs crates/learn/src/features.rs crates/learn/src/gmm.rs crates/learn/src/linalg.rs crates/learn/src/mlp.rs crates/learn/src/model.rs crates/learn/src/ridge.rs crates/learn/src/svr.rs

/root/repo/target/release/deps/libmurphy_learn-5c383ddc1f497f9c.rlib: crates/learn/src/lib.rs crates/learn/src/features.rs crates/learn/src/gmm.rs crates/learn/src/linalg.rs crates/learn/src/mlp.rs crates/learn/src/model.rs crates/learn/src/ridge.rs crates/learn/src/svr.rs

/root/repo/target/release/deps/libmurphy_learn-5c383ddc1f497f9c.rmeta: crates/learn/src/lib.rs crates/learn/src/features.rs crates/learn/src/gmm.rs crates/learn/src/linalg.rs crates/learn/src/mlp.rs crates/learn/src/model.rs crates/learn/src/ridge.rs crates/learn/src/svr.rs

crates/learn/src/lib.rs:
crates/learn/src/features.rs:
crates/learn/src/gmm.rs:
crates/learn/src/linalg.rs:
crates/learn/src/mlp.rs:
crates/learn/src/model.rs:
crates/learn/src/ridge.rs:
crates/learn/src/svr.rs:
