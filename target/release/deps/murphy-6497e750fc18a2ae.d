/root/repo/target/release/deps/murphy-6497e750fc18a2ae.d: src/lib.rs

/root/repo/target/release/deps/libmurphy-6497e750fc18a2ae.rlib: src/lib.rs

/root/repo/target/release/deps/libmurphy-6497e750fc18a2ae.rmeta: src/lib.rs

src/lib.rs:
