/root/repo/target/release/deps/serde-605642600f160efd.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-605642600f160efd.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-605642600f160efd.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
