/root/repo/target/debug/deps/murphy_stats-d29ef2d9b08eaf0c.d: crates/stats/src/lib.rs crates/stats/src/anomaly.rs crates/stats/src/cdf.rs crates/stats/src/correlation.rs crates/stats/src/mase.rs crates/stats/src/summary.rs crates/stats/src/ttest.rs

/root/repo/target/debug/deps/libmurphy_stats-d29ef2d9b08eaf0c.rlib: crates/stats/src/lib.rs crates/stats/src/anomaly.rs crates/stats/src/cdf.rs crates/stats/src/correlation.rs crates/stats/src/mase.rs crates/stats/src/summary.rs crates/stats/src/ttest.rs

/root/repo/target/debug/deps/libmurphy_stats-d29ef2d9b08eaf0c.rmeta: crates/stats/src/lib.rs crates/stats/src/anomaly.rs crates/stats/src/cdf.rs crates/stats/src/correlation.rs crates/stats/src/mase.rs crates/stats/src/summary.rs crates/stats/src/ttest.rs

crates/stats/src/lib.rs:
crates/stats/src/anomaly.rs:
crates/stats/src/cdf.rs:
crates/stats/src/correlation.rs:
crates/stats/src/mase.rs:
crates/stats/src/summary.rs:
crates/stats/src/ttest.rs:
