/root/repo/target/debug/deps/murphy-bbfb05a2e1f7987b.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/murphy-bbfb05a2e1f7987b: crates/cli/src/main.rs

crates/cli/src/main.rs:
