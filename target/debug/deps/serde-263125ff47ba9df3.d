/root/repo/target/debug/deps/serde-263125ff47ba9df3.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-263125ff47ba9df3.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-263125ff47ba9df3.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
