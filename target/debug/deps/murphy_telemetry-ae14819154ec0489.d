/root/repo/target/debug/deps/murphy_telemetry-ae14819154ec0489.d: crates/telemetry/src/lib.rs crates/telemetry/src/association.rs crates/telemetry/src/changes.rs crates/telemetry/src/database.rs crates/telemetry/src/degrade.rs crates/telemetry/src/entity.rs crates/telemetry/src/metric.rs crates/telemetry/src/shard.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/timeseries.rs Cargo.toml

/root/repo/target/debug/deps/libmurphy_telemetry-ae14819154ec0489.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/association.rs crates/telemetry/src/changes.rs crates/telemetry/src/database.rs crates/telemetry/src/degrade.rs crates/telemetry/src/entity.rs crates/telemetry/src/metric.rs crates/telemetry/src/shard.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/timeseries.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/association.rs:
crates/telemetry/src/changes.rs:
crates/telemetry/src/database.rs:
crates/telemetry/src/degrade.rs:
crates/telemetry/src/entity.rs:
crates/telemetry/src/metric.rs:
crates/telemetry/src/shard.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/timeseries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
