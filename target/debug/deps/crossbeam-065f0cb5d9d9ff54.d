/root/repo/target/debug/deps/crossbeam-065f0cb5d9d9ff54.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-065f0cb5d9d9ff54.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-065f0cb5d9d9ff54.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
