/root/repo/target/debug/deps/murphy_telemetry-93fad0d3c5ba41c5.d: crates/telemetry/src/lib.rs crates/telemetry/src/association.rs crates/telemetry/src/changes.rs crates/telemetry/src/database.rs crates/telemetry/src/degrade.rs crates/telemetry/src/entity.rs crates/telemetry/src/metric.rs crates/telemetry/src/shard.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/timeseries.rs

/root/repo/target/debug/deps/libmurphy_telemetry-93fad0d3c5ba41c5.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/association.rs crates/telemetry/src/changes.rs crates/telemetry/src/database.rs crates/telemetry/src/degrade.rs crates/telemetry/src/entity.rs crates/telemetry/src/metric.rs crates/telemetry/src/shard.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/timeseries.rs

/root/repo/target/debug/deps/libmurphy_telemetry-93fad0d3c5ba41c5.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/association.rs crates/telemetry/src/changes.rs crates/telemetry/src/database.rs crates/telemetry/src/degrade.rs crates/telemetry/src/entity.rs crates/telemetry/src/metric.rs crates/telemetry/src/shard.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/timeseries.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/association.rs:
crates/telemetry/src/changes.rs:
crates/telemetry/src/database.rs:
crates/telemetry/src/degrade.rs:
crates/telemetry/src/entity.rs:
crates/telemetry/src/metric.rs:
crates/telemetry/src/shard.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/timeseries.rs:
