/root/repo/target/debug/deps/murphy_baselines-9662a4dfd88baf6d.d: crates/baselines/src/lib.rs crates/baselines/src/explainit.rs crates/baselines/src/netmedic.rs crates/baselines/src/sage.rs crates/baselines/src/scheme.rs

/root/repo/target/debug/deps/libmurphy_baselines-9662a4dfd88baf6d.rlib: crates/baselines/src/lib.rs crates/baselines/src/explainit.rs crates/baselines/src/netmedic.rs crates/baselines/src/sage.rs crates/baselines/src/scheme.rs

/root/repo/target/debug/deps/libmurphy_baselines-9662a4dfd88baf6d.rmeta: crates/baselines/src/lib.rs crates/baselines/src/explainit.rs crates/baselines/src/netmedic.rs crates/baselines/src/sage.rs crates/baselines/src/scheme.rs

crates/baselines/src/lib.rs:
crates/baselines/src/explainit.rs:
crates/baselines/src/netmedic.rs:
crates/baselines/src/sage.rs:
crates/baselines/src/scheme.rs:
