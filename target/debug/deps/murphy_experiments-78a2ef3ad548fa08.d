/root/repo/target/debug/deps/murphy_experiments-78a2ef3ad548fa08.d: crates/experiments/src/lib.rs crates/experiments/src/accuracy.rs crates/experiments/src/fig5.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8a.rs crates/experiments/src/fig8b.rs crates/experiments/src/perf.rs crates/experiments/src/report.rs crates/experiments/src/sensitivity.rs crates/experiments/src/schemes.rs crates/experiments/src/table1.rs crates/experiments/src/table2.rs

/root/repo/target/debug/deps/murphy_experiments-78a2ef3ad548fa08: crates/experiments/src/lib.rs crates/experiments/src/accuracy.rs crates/experiments/src/fig5.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8a.rs crates/experiments/src/fig8b.rs crates/experiments/src/perf.rs crates/experiments/src/report.rs crates/experiments/src/sensitivity.rs crates/experiments/src/schemes.rs crates/experiments/src/table1.rs crates/experiments/src/table2.rs

crates/experiments/src/lib.rs:
crates/experiments/src/accuracy.rs:
crates/experiments/src/fig5.rs:
crates/experiments/src/fig6.rs:
crates/experiments/src/fig7.rs:
crates/experiments/src/fig8a.rs:
crates/experiments/src/fig8b.rs:
crates/experiments/src/perf.rs:
crates/experiments/src/report.rs:
crates/experiments/src/sensitivity.rs:
crates/experiments/src/schemes.rs:
crates/experiments/src/table1.rs:
crates/experiments/src/table2.rs:
