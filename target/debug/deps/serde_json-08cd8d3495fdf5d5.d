/root/repo/target/debug/deps/serde_json-08cd8d3495fdf5d5.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-08cd8d3495fdf5d5.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
