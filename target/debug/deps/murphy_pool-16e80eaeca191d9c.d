/root/repo/target/debug/deps/murphy_pool-16e80eaeca191d9c.d: crates/pool/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmurphy_pool-16e80eaeca191d9c.rmeta: crates/pool/src/lib.rs Cargo.toml

crates/pool/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
