/root/repo/target/debug/deps/murphy_pool-f1a16ca5fa505bbb.d: crates/pool/src/lib.rs

/root/repo/target/debug/deps/libmurphy_pool-f1a16ca5fa505bbb.rlib: crates/pool/src/lib.rs

/root/repo/target/debug/deps/libmurphy_pool-f1a16ca5fa505bbb.rmeta: crates/pool/src/lib.rs

crates/pool/src/lib.rs:
