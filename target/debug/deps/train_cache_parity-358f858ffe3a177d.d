/root/repo/target/debug/deps/train_cache_parity-358f858ffe3a177d.d: crates/core/tests/train_cache_parity.rs

/root/repo/target/debug/deps/train_cache_parity-358f858ffe3a177d: crates/core/tests/train_cache_parity.rs

crates/core/tests/train_cache_parity.rs:
