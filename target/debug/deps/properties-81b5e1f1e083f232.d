/root/repo/target/debug/deps/properties-81b5e1f1e083f232.d: crates/learn/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-81b5e1f1e083f232.rmeta: crates/learn/tests/properties.rs Cargo.toml

crates/learn/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
