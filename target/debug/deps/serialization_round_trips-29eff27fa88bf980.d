/root/repo/target/debug/deps/serialization_round_trips-29eff27fa88bf980.d: tests/serialization_round_trips.rs

/root/repo/target/debug/deps/serialization_round_trips-29eff27fa88bf980: tests/serialization_round_trips.rs

tests/serialization_round_trips.rs:
