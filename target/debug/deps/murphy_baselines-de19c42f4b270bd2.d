/root/repo/target/debug/deps/murphy_baselines-de19c42f4b270bd2.d: crates/baselines/src/lib.rs crates/baselines/src/explainit.rs crates/baselines/src/netmedic.rs crates/baselines/src/sage.rs crates/baselines/src/scheme.rs

/root/repo/target/debug/deps/libmurphy_baselines-de19c42f4b270bd2.rlib: crates/baselines/src/lib.rs crates/baselines/src/explainit.rs crates/baselines/src/netmedic.rs crates/baselines/src/sage.rs crates/baselines/src/scheme.rs

/root/repo/target/debug/deps/libmurphy_baselines-de19c42f4b270bd2.rmeta: crates/baselines/src/lib.rs crates/baselines/src/explainit.rs crates/baselines/src/netmedic.rs crates/baselines/src/sage.rs crates/baselines/src/scheme.rs

crates/baselines/src/lib.rs:
crates/baselines/src/explainit.rs:
crates/baselines/src/netmedic.rs:
crates/baselines/src/sage.rs:
crates/baselines/src/scheme.rs:
