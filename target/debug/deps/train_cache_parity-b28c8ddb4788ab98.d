/root/repo/target/debug/deps/train_cache_parity-b28c8ddb4788ab98.d: crates/core/tests/train_cache_parity.rs Cargo.toml

/root/repo/target/debug/deps/libtrain_cache_parity-b28c8ddb4788ab98.rmeta: crates/core/tests/train_cache_parity.rs Cargo.toml

crates/core/tests/train_cache_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
