/root/repo/target/debug/deps/flat_parity-622b734c5228fd25.d: crates/learn/tests/flat_parity.rs Cargo.toml

/root/repo/target/debug/deps/libflat_parity-622b734c5228fd25.rmeta: crates/learn/tests/flat_parity.rs Cargo.toml

crates/learn/tests/flat_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
