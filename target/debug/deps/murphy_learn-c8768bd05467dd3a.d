/root/repo/target/debug/deps/murphy_learn-c8768bd05467dd3a.d: crates/learn/src/lib.rs crates/learn/src/features.rs crates/learn/src/gmm.rs crates/learn/src/linalg.rs crates/learn/src/mlp.rs crates/learn/src/model.rs crates/learn/src/ridge.rs crates/learn/src/svr.rs

/root/repo/target/debug/deps/libmurphy_learn-c8768bd05467dd3a.rlib: crates/learn/src/lib.rs crates/learn/src/features.rs crates/learn/src/gmm.rs crates/learn/src/linalg.rs crates/learn/src/mlp.rs crates/learn/src/model.rs crates/learn/src/ridge.rs crates/learn/src/svr.rs

/root/repo/target/debug/deps/libmurphy_learn-c8768bd05467dd3a.rmeta: crates/learn/src/lib.rs crates/learn/src/features.rs crates/learn/src/gmm.rs crates/learn/src/linalg.rs crates/learn/src/mlp.rs crates/learn/src/model.rs crates/learn/src/ridge.rs crates/learn/src/svr.rs

crates/learn/src/lib.rs:
crates/learn/src/features.rs:
crates/learn/src/gmm.rs:
crates/learn/src/linalg.rs:
crates/learn/src/mlp.rs:
crates/learn/src/model.rs:
crates/learn/src/ridge.rs:
crates/learn/src/svr.rs:
