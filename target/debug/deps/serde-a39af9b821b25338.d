/root/repo/target/debug/deps/serde-a39af9b821b25338.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a39af9b821b25338.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
