/root/repo/target/debug/deps/repro-81d86ea7b4790fc7.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-81d86ea7b4790fc7: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
