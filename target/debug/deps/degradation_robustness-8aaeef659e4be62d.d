/root/repo/target/debug/deps/degradation_robustness-8aaeef659e4be62d.d: tests/degradation_robustness.rs

/root/repo/target/debug/deps/degradation_robustness-8aaeef659e4be62d: tests/degradation_robustness.rs

tests/degradation_robustness.rs:
