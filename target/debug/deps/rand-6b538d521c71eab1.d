/root/repo/target/debug/deps/rand-6b538d521c71eab1.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-6b538d521c71eab1.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-6b538d521c71eab1.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
