/root/repo/target/debug/deps/rand-e9cf6e1e444ca965.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-e9cf6e1e444ca965.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-e9cf6e1e444ca965.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
