/root/repo/target/debug/deps/murphy_sim-312d72c8d9f27334.d: crates/sim/src/lib.rs crates/sim/src/enterprise.rs crates/sim/src/faults.rs crates/sim/src/incidents.rs crates/sim/src/microservice.rs crates/sim/src/scenario.rs crates/sim/src/traces.rs crates/sim/src/workload.rs

/root/repo/target/debug/deps/libmurphy_sim-312d72c8d9f27334.rlib: crates/sim/src/lib.rs crates/sim/src/enterprise.rs crates/sim/src/faults.rs crates/sim/src/incidents.rs crates/sim/src/microservice.rs crates/sim/src/scenario.rs crates/sim/src/traces.rs crates/sim/src/workload.rs

/root/repo/target/debug/deps/libmurphy_sim-312d72c8d9f27334.rmeta: crates/sim/src/lib.rs crates/sim/src/enterprise.rs crates/sim/src/faults.rs crates/sim/src/incidents.rs crates/sim/src/microservice.rs crates/sim/src/scenario.rs crates/sim/src/traces.rs crates/sim/src/workload.rs

crates/sim/src/lib.rs:
crates/sim/src/enterprise.rs:
crates/sim/src/faults.rs:
crates/sim/src/incidents.rs:
crates/sim/src/microservice.rs:
crates/sim/src/scenario.rs:
crates/sim/src/traces.rs:
crates/sim/src/workload.rs:
