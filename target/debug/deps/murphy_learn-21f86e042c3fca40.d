/root/repo/target/debug/deps/murphy_learn-21f86e042c3fca40.d: crates/learn/src/lib.rs crates/learn/src/features.rs crates/learn/src/gmm.rs crates/learn/src/linalg.rs crates/learn/src/mlp.rs crates/learn/src/model.rs crates/learn/src/ridge.rs crates/learn/src/svr.rs

/root/repo/target/debug/deps/murphy_learn-21f86e042c3fca40: crates/learn/src/lib.rs crates/learn/src/features.rs crates/learn/src/gmm.rs crates/learn/src/linalg.rs crates/learn/src/mlp.rs crates/learn/src/model.rs crates/learn/src/ridge.rs crates/learn/src/svr.rs

crates/learn/src/lib.rs:
crates/learn/src/features.rs:
crates/learn/src/gmm.rs:
crates/learn/src/linalg.rs:
crates/learn/src/mlp.rs:
crates/learn/src/model.rs:
crates/learn/src/ridge.rs:
crates/learn/src/svr.rs:
