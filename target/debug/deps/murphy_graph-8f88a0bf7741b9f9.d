/root/repo/target/debug/deps/murphy_graph-8f88a0bf7741b9f9.d: crates/graph/src/lib.rs crates/graph/src/build.rs crates/graph/src/cycles.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/prune.rs

/root/repo/target/debug/deps/libmurphy_graph-8f88a0bf7741b9f9.rlib: crates/graph/src/lib.rs crates/graph/src/build.rs crates/graph/src/cycles.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/prune.rs

/root/repo/target/debug/deps/libmurphy_graph-8f88a0bf7741b9f9.rmeta: crates/graph/src/lib.rs crates/graph/src/build.rs crates/graph/src/cycles.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/prune.rs

crates/graph/src/lib.rs:
crates/graph/src/build.rs:
crates/graph/src/cycles.rs:
crates/graph/src/graph.rs:
crates/graph/src/paths.rs:
crates/graph/src/prune.rs:
