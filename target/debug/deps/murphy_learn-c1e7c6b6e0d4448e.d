/root/repo/target/debug/deps/murphy_learn-c1e7c6b6e0d4448e.d: crates/learn/src/lib.rs crates/learn/src/features.rs crates/learn/src/gmm.rs crates/learn/src/linalg.rs crates/learn/src/mlp.rs crates/learn/src/model.rs crates/learn/src/ridge.rs crates/learn/src/svr.rs

/root/repo/target/debug/deps/libmurphy_learn-c1e7c6b6e0d4448e.rlib: crates/learn/src/lib.rs crates/learn/src/features.rs crates/learn/src/gmm.rs crates/learn/src/linalg.rs crates/learn/src/mlp.rs crates/learn/src/model.rs crates/learn/src/ridge.rs crates/learn/src/svr.rs

/root/repo/target/debug/deps/libmurphy_learn-c1e7c6b6e0d4448e.rmeta: crates/learn/src/lib.rs crates/learn/src/features.rs crates/learn/src/gmm.rs crates/learn/src/linalg.rs crates/learn/src/mlp.rs crates/learn/src/model.rs crates/learn/src/ridge.rs crates/learn/src/svr.rs

crates/learn/src/lib.rs:
crates/learn/src/features.rs:
crates/learn/src/gmm.rs:
crates/learn/src/linalg.rs:
crates/learn/src/mlp.rs:
crates/learn/src/model.rs:
crates/learn/src/ridge.rs:
crates/learn/src/svr.rs:
