/root/repo/target/debug/deps/serde_json-6baa9685dff80220.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-6baa9685dff80220.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-6baa9685dff80220.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
