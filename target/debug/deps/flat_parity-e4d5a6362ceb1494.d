/root/repo/target/debug/deps/flat_parity-e4d5a6362ceb1494.d: crates/learn/tests/flat_parity.rs

/root/repo/target/debug/deps/flat_parity-e4d5a6362ceb1494: crates/learn/tests/flat_parity.rs

crates/learn/tests/flat_parity.rs:
