/root/repo/target/debug/deps/serde-8bcf97f7ce3daf23.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-8bcf97f7ce3daf23.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-8bcf97f7ce3daf23.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
