/root/repo/target/debug/deps/murphy_core-e442d626eb9bd74a.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/counterfactual.rs crates/core/src/diagnose.rs crates/core/src/explain.rs crates/core/src/factor.rs crates/core/src/labels.rs crates/core/src/mrf.rs crates/core/src/murphy.rs crates/core/src/pool.rs crates/core/src/ranking.rs crates/core/src/sampler.rs crates/core/src/train_cache.rs crates/core/src/training.rs

/root/repo/target/debug/deps/libmurphy_core-e442d626eb9bd74a.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/counterfactual.rs crates/core/src/diagnose.rs crates/core/src/explain.rs crates/core/src/factor.rs crates/core/src/labels.rs crates/core/src/mrf.rs crates/core/src/murphy.rs crates/core/src/pool.rs crates/core/src/ranking.rs crates/core/src/sampler.rs crates/core/src/train_cache.rs crates/core/src/training.rs

/root/repo/target/debug/deps/libmurphy_core-e442d626eb9bd74a.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/counterfactual.rs crates/core/src/diagnose.rs crates/core/src/explain.rs crates/core/src/factor.rs crates/core/src/labels.rs crates/core/src/mrf.rs crates/core/src/murphy.rs crates/core/src/pool.rs crates/core/src/ranking.rs crates/core/src/sampler.rs crates/core/src/train_cache.rs crates/core/src/training.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/counterfactual.rs:
crates/core/src/diagnose.rs:
crates/core/src/explain.rs:
crates/core/src/factor.rs:
crates/core/src/labels.rs:
crates/core/src/mrf.rs:
crates/core/src/murphy.rs:
crates/core/src/pool.rs:
crates/core/src/ranking.rs:
crates/core/src/sampler.rs:
crates/core/src/train_cache.rs:
crates/core/src/training.rs:
