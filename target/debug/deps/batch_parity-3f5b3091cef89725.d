/root/repo/target/debug/deps/batch_parity-3f5b3091cef89725.d: crates/core/tests/batch_parity.rs Cargo.toml

/root/repo/target/debug/deps/libbatch_parity-3f5b3091cef89725.rmeta: crates/core/tests/batch_parity.rs Cargo.toml

crates/core/tests/batch_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
