/root/repo/target/debug/deps/murphy_stats-086ec7861f830cbe.d: crates/stats/src/lib.rs crates/stats/src/anomaly.rs crates/stats/src/cdf.rs crates/stats/src/correlation.rs crates/stats/src/mase.rs crates/stats/src/summary.rs crates/stats/src/ttest.rs

/root/repo/target/debug/deps/libmurphy_stats-086ec7861f830cbe.rlib: crates/stats/src/lib.rs crates/stats/src/anomaly.rs crates/stats/src/cdf.rs crates/stats/src/correlation.rs crates/stats/src/mase.rs crates/stats/src/summary.rs crates/stats/src/ttest.rs

/root/repo/target/debug/deps/libmurphy_stats-086ec7861f830cbe.rmeta: crates/stats/src/lib.rs crates/stats/src/anomaly.rs crates/stats/src/cdf.rs crates/stats/src/correlation.rs crates/stats/src/mase.rs crates/stats/src/summary.rs crates/stats/src/ttest.rs

crates/stats/src/lib.rs:
crates/stats/src/anomaly.rs:
crates/stats/src/cdf.rs:
crates/stats/src/correlation.rs:
crates/stats/src/mase.rs:
crates/stats/src/summary.rs:
crates/stats/src/ttest.rs:
