/root/repo/target/debug/deps/kernel_parity-4b963bd08e662c93.d: crates/core/tests/kernel_parity.rs

/root/repo/target/debug/deps/kernel_parity-4b963bd08e662c93: crates/core/tests/kernel_parity.rs

crates/core/tests/kernel_parity.rs:
