/root/repo/target/debug/deps/murphy_sim-2eaa6b1c21089730.d: crates/sim/src/lib.rs crates/sim/src/enterprise.rs crates/sim/src/faults.rs crates/sim/src/incidents.rs crates/sim/src/microservice.rs crates/sim/src/scenario.rs crates/sim/src/traces.rs crates/sim/src/workload.rs

/root/repo/target/debug/deps/libmurphy_sim-2eaa6b1c21089730.rlib: crates/sim/src/lib.rs crates/sim/src/enterprise.rs crates/sim/src/faults.rs crates/sim/src/incidents.rs crates/sim/src/microservice.rs crates/sim/src/scenario.rs crates/sim/src/traces.rs crates/sim/src/workload.rs

/root/repo/target/debug/deps/libmurphy_sim-2eaa6b1c21089730.rmeta: crates/sim/src/lib.rs crates/sim/src/enterprise.rs crates/sim/src/faults.rs crates/sim/src/incidents.rs crates/sim/src/microservice.rs crates/sim/src/scenario.rs crates/sim/src/traces.rs crates/sim/src/workload.rs

crates/sim/src/lib.rs:
crates/sim/src/enterprise.rs:
crates/sim/src/faults.rs:
crates/sim/src/incidents.rs:
crates/sim/src/microservice.rs:
crates/sim/src/scenario.rs:
crates/sim/src/traces.rs:
crates/sim/src/workload.rs:
