/root/repo/target/debug/deps/serde_derive-45e76101ef19f636.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-45e76101ef19f636.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
