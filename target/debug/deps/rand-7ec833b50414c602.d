/root/repo/target/debug/deps/rand-7ec833b50414c602.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-7ec833b50414c602.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
