/root/repo/target/debug/deps/murphy-34e46809185f18f6.d: src/lib.rs

/root/repo/target/debug/deps/libmurphy-34e46809185f18f6.rlib: src/lib.rs

/root/repo/target/debug/deps/libmurphy-34e46809185f18f6.rmeta: src/lib.rs

src/lib.rs:
