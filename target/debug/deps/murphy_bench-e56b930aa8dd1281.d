/root/repo/target/debug/deps/murphy_bench-e56b930aa8dd1281.d: crates/bench/src/lib.rs crates/bench/src/scale.rs

/root/repo/target/debug/deps/libmurphy_bench-e56b930aa8dd1281.rlib: crates/bench/src/lib.rs crates/bench/src/scale.rs

/root/repo/target/debug/deps/libmurphy_bench-e56b930aa8dd1281.rmeta: crates/bench/src/lib.rs crates/bench/src/scale.rs

crates/bench/src/lib.rs:
crates/bench/src/scale.rs:
