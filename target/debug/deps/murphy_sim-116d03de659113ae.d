/root/repo/target/debug/deps/murphy_sim-116d03de659113ae.d: crates/sim/src/lib.rs crates/sim/src/enterprise.rs crates/sim/src/faults.rs crates/sim/src/incidents.rs crates/sim/src/microservice.rs crates/sim/src/scenario.rs crates/sim/src/traces.rs crates/sim/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libmurphy_sim-116d03de659113ae.rmeta: crates/sim/src/lib.rs crates/sim/src/enterprise.rs crates/sim/src/faults.rs crates/sim/src/incidents.rs crates/sim/src/microservice.rs crates/sim/src/scenario.rs crates/sim/src/traces.rs crates/sim/src/workload.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/enterprise.rs:
crates/sim/src/faults.rs:
crates/sim/src/incidents.rs:
crates/sim/src/microservice.rs:
crates/sim/src/scenario.rs:
crates/sim/src/traces.rs:
crates/sim/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
