/root/repo/target/debug/deps/batch_parity-7b0ba36cea3fe1c8.d: crates/core/tests/batch_parity.rs

/root/repo/target/debug/deps/batch_parity-7b0ba36cea3fe1c8: crates/core/tests/batch_parity.rs

crates/core/tests/batch_parity.rs:
