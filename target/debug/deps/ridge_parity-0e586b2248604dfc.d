/root/repo/target/debug/deps/ridge_parity-0e586b2248604dfc.d: crates/learn/tests/ridge_parity.rs Cargo.toml

/root/repo/target/debug/deps/libridge_parity-0e586b2248604dfc.rmeta: crates/learn/tests/ridge_parity.rs Cargo.toml

crates/learn/tests/ridge_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
