/root/repo/target/debug/deps/crossbeam-96da5597686e16e6.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-96da5597686e16e6.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-96da5597686e16e6.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
