/root/repo/target/debug/deps/ridge_parity-071a698f29a1e170.d: crates/learn/tests/ridge_parity.rs

/root/repo/target/debug/deps/ridge_parity-071a698f29a1e170: crates/learn/tests/ridge_parity.rs

crates/learn/tests/ridge_parity.rs:
