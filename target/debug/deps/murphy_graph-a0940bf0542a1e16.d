/root/repo/target/debug/deps/murphy_graph-a0940bf0542a1e16.d: crates/graph/src/lib.rs crates/graph/src/build.rs crates/graph/src/cycles.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/prune.rs

/root/repo/target/debug/deps/libmurphy_graph-a0940bf0542a1e16.rlib: crates/graph/src/lib.rs crates/graph/src/build.rs crates/graph/src/cycles.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/prune.rs

/root/repo/target/debug/deps/libmurphy_graph-a0940bf0542a1e16.rmeta: crates/graph/src/lib.rs crates/graph/src/build.rs crates/graph/src/cycles.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/prune.rs

crates/graph/src/lib.rs:
crates/graph/src/build.rs:
crates/graph/src/cycles.rs:
crates/graph/src/graph.rs:
crates/graph/src/paths.rs:
crates/graph/src/prune.rs:
