/root/repo/target/debug/deps/cli-238609b3699094ae.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-238609b3699094ae: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_murphy=/root/repo/target/debug/murphy
