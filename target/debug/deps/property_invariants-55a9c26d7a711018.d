/root/repo/target/debug/deps/property_invariants-55a9c26d7a711018.d: tests/property_invariants.rs

/root/repo/target/debug/deps/property_invariants-55a9c26d7a711018: tests/property_invariants.rs

tests/property_invariants.rs:
