/root/repo/target/debug/deps/murphy_learn-a605f3e21fb433e4.d: crates/learn/src/lib.rs crates/learn/src/features.rs crates/learn/src/gmm.rs crates/learn/src/linalg.rs crates/learn/src/mlp.rs crates/learn/src/model.rs crates/learn/src/ridge.rs crates/learn/src/svr.rs Cargo.toml

/root/repo/target/debug/deps/libmurphy_learn-a605f3e21fb433e4.rmeta: crates/learn/src/lib.rs crates/learn/src/features.rs crates/learn/src/gmm.rs crates/learn/src/linalg.rs crates/learn/src/mlp.rs crates/learn/src/model.rs crates/learn/src/ridge.rs crates/learn/src/svr.rs Cargo.toml

crates/learn/src/lib.rs:
crates/learn/src/features.rs:
crates/learn/src/gmm.rs:
crates/learn/src/linalg.rs:
crates/learn/src/mlp.rs:
crates/learn/src/model.rs:
crates/learn/src/ridge.rs:
crates/learn/src/svr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
