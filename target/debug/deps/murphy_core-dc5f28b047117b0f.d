/root/repo/target/debug/deps/murphy_core-dc5f28b047117b0f.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/counterfactual.rs crates/core/src/diagnose.rs crates/core/src/explain.rs crates/core/src/factor.rs crates/core/src/labels.rs crates/core/src/mrf.rs crates/core/src/murphy.rs crates/core/src/pool.rs crates/core/src/ranking.rs crates/core/src/sampler.rs crates/core/src/train_cache.rs crates/core/src/training.rs Cargo.toml

/root/repo/target/debug/deps/libmurphy_core-dc5f28b047117b0f.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/counterfactual.rs crates/core/src/diagnose.rs crates/core/src/explain.rs crates/core/src/factor.rs crates/core/src/labels.rs crates/core/src/mrf.rs crates/core/src/murphy.rs crates/core/src/pool.rs crates/core/src/ranking.rs crates/core/src/sampler.rs crates/core/src/train_cache.rs crates/core/src/training.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/counterfactual.rs:
crates/core/src/diagnose.rs:
crates/core/src/explain.rs:
crates/core/src/factor.rs:
crates/core/src/labels.rs:
crates/core/src/mrf.rs:
crates/core/src/murphy.rs:
crates/core/src/pool.rs:
crates/core/src/ranking.rs:
crates/core/src/sampler.rs:
crates/core/src/train_cache.rs:
crates/core/src/training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
