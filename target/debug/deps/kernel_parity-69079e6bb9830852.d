/root/repo/target/debug/deps/kernel_parity-69079e6bb9830852.d: crates/core/tests/kernel_parity.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_parity-69079e6bb9830852.rmeta: crates/core/tests/kernel_parity.rs Cargo.toml

crates/core/tests/kernel_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
