/root/repo/target/debug/deps/murphy-5d30340628c4700f.d: src/lib.rs

/root/repo/target/debug/deps/murphy-5d30340628c4700f: src/lib.rs

src/lib.rs:
