/root/repo/target/debug/deps/murphy_stats-41a8f19bd81af32a.d: crates/stats/src/lib.rs crates/stats/src/anomaly.rs crates/stats/src/cdf.rs crates/stats/src/correlation.rs crates/stats/src/mase.rs crates/stats/src/summary.rs crates/stats/src/ttest.rs Cargo.toml

/root/repo/target/debug/deps/libmurphy_stats-41a8f19bd81af32a.rmeta: crates/stats/src/lib.rs crates/stats/src/anomaly.rs crates/stats/src/cdf.rs crates/stats/src/correlation.rs crates/stats/src/mase.rs crates/stats/src/summary.rs crates/stats/src/ttest.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/anomaly.rs:
crates/stats/src/cdf.rs:
crates/stats/src/correlation.rs:
crates/stats/src/mase.rs:
crates/stats/src/summary.rs:
crates/stats/src/ttest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
