/root/repo/target/debug/deps/determinism-868d9c2aa6d48805.d: crates/core/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-868d9c2aa6d48805.rmeta: crates/core/tests/determinism.rs Cargo.toml

crates/core/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
