/root/repo/target/debug/deps/proptest-4195907b82d08c92.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-4195907b82d08c92.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
