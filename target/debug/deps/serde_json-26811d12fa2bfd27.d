/root/repo/target/debug/deps/serde_json-26811d12fa2bfd27.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-26811d12fa2bfd27.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-26811d12fa2bfd27.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
