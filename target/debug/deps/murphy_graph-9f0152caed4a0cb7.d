/root/repo/target/debug/deps/murphy_graph-9f0152caed4a0cb7.d: crates/graph/src/lib.rs crates/graph/src/build.rs crates/graph/src/cycles.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/prune.rs Cargo.toml

/root/repo/target/debug/deps/libmurphy_graph-9f0152caed4a0cb7.rmeta: crates/graph/src/lib.rs crates/graph/src/build.rs crates/graph/src/cycles.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/prune.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/build.rs:
crates/graph/src/cycles.rs:
crates/graph/src/graph.rs:
crates/graph/src/paths.rs:
crates/graph/src/prune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
