/root/repo/target/debug/deps/properties-e8f8ad8627e069e4.d: crates/learn/tests/properties.rs

/root/repo/target/debug/deps/properties-e8f8ad8627e069e4: crates/learn/tests/properties.rs

crates/learn/tests/properties.rs:
