/root/repo/target/debug/deps/determinism-73c2d73b3aa5a449.d: crates/core/tests/determinism.rs

/root/repo/target/debug/deps/determinism-73c2d73b3aa5a449: crates/core/tests/determinism.rs

crates/core/tests/determinism.rs:
