/root/repo/target/debug/deps/end_to_end_diagnosis-bd8807969eb4c47b.d: tests/end_to_end_diagnosis.rs

/root/repo/target/debug/deps/end_to_end_diagnosis-bd8807969eb4c47b: tests/end_to_end_diagnosis.rs

tests/end_to_end_diagnosis.rs:
