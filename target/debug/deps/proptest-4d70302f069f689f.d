/root/repo/target/debug/deps/proptest-4d70302f069f689f.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-4d70302f069f689f.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-4d70302f069f689f.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
