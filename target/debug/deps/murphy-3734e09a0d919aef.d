/root/repo/target/debug/deps/murphy-3734e09a0d919aef.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/murphy-3734e09a0d919aef: crates/cli/src/main.rs

crates/cli/src/main.rs:
