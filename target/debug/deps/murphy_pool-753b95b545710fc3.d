/root/repo/target/debug/deps/murphy_pool-753b95b545710fc3.d: crates/pool/src/lib.rs

/root/repo/target/debug/deps/libmurphy_pool-753b95b545710fc3.rlib: crates/pool/src/lib.rs

/root/repo/target/debug/deps/libmurphy_pool-753b95b545710fc3.rmeta: crates/pool/src/lib.rs

crates/pool/src/lib.rs:
