/root/repo/target/debug/examples/enterprise_incident-3288232bc144c142.d: examples/enterprise_incident.rs

/root/repo/target/debug/examples/enterprise_incident-3288232bc144c142: examples/enterprise_incident.rs

examples/enterprise_incident.rs:
