/root/repo/target/debug/examples/resource_contention-48496dbabcc8681f.d: examples/resource_contention.rs

/root/repo/target/debug/examples/resource_contention-48496dbabcc8681f: examples/resource_contention.rs

examples/resource_contention.rs:
