/root/repo/target/debug/examples/whatif-50ac1dfd99971435.d: examples/whatif.rs

/root/repo/target/debug/examples/whatif-50ac1dfd99971435: examples/whatif.rs

examples/whatif.rs:
