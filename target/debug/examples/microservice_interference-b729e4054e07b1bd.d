/root/repo/target/debug/examples/microservice_interference-b729e4054e07b1bd.d: examples/microservice_interference.rs

/root/repo/target/debug/examples/microservice_interference-b729e4054e07b1bd: examples/microservice_interference.rs

examples/microservice_interference.rs:
