/root/repo/target/debug/examples/quickstart-efc36d979abc109f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-efc36d979abc109f: examples/quickstart.rs

examples/quickstart.rs:
