#!/usr/bin/env bash
# Tier-1 verification: release build + full test suite + lint gate.
#
# Usage: scripts/tier1.sh
#
# The test suite runs twice — once sequential (MURPHY_THREADS=1), once
# over a 4-thread worker pool — because the pool's thread count is fixed
# per process (sized once from the environment): only separate processes
# can pin that the global-pool paths behave identically at both settings.
# In-process thread-count variation is covered by
# crates/core/tests/determinism.rs via explicit WorkerPool instances.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release

echo "tier1: test suite with MURPHY_THREADS=1 (sequential pool)"
MURPHY_THREADS=1 cargo test -q

echo "tier1: test suite with MURPHY_THREADS=4 (parallel pool)"
MURPHY_THREADS=4 cargo test -q

# Lint gate: warnings are errors. Skipped gracefully where the clippy
# component isn't installed (minimal toolchains).
if cargo clippy --version >/dev/null 2>&1; then
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "tier1: cargo clippy unavailable, skipping lint gate" >&2
fi
