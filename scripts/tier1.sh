#!/usr/bin/env bash
# Tier-1 verification: release build + full test suite.
#
# Usage: scripts/tier1.sh
# Honors MURPHY_THREADS for the worker pool (see README "Performance").
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
