#!/usr/bin/env bash
# Tier-1 verification: release build + full test suite + lint gate.
#
# Usage: scripts/tier1.sh
#
# The test suite runs under a thread × shard × train-cache matrix —
# MURPHY_THREADS ∈ {1, 4} × MURPHY_SHARDS ∈ {1, 4} ×
# MURPHY_TRAIN_CACHE ∈ {0, 1} — because all three knobs are fixed per
# process (the pool's thread count is sized once from the environment;
# env-constructed databases read MURPHY_SHARDS at creation; the `Murphy`
# facade gates its held training cache on MURPHY_TRAIN_CACHE): only
# separate processes can pin that the global-pool, default-shard, and
# legacy-full-refit paths behave identically at every setting.
# In-process variation is covered by crates/core/tests/determinism.rs
# (explicit WorkerPool instances, explicit with_shards counts),
# crates/core/tests/train_cache_parity.rs (cached vs cold training), and
# crates/telemetry/tests/shard_parity.rs.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release

for threads in 1 4; do
  for shards in 1 4; do
    for cache in 0 1; do
      echo "tier1: test suite with MURPHY_THREADS=$threads MURPHY_SHARDS=$shards MURPHY_TRAIN_CACHE=$cache"
      MURPHY_THREADS=$threads MURPHY_SHARDS=$shards MURPHY_TRAIN_CACHE=$cache cargo test -q
    done
  done
done

# Lint gate: warnings are errors. Skipped gracefully where the clippy
# component isn't installed (minimal toolchains).
if cargo clippy --version >/dev/null 2>&1; then
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "tier1: cargo clippy unavailable, skipping lint gate" >&2
fi
