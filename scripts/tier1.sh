#!/usr/bin/env bash
# Tier-1 verification: release build + full test suite + lint gate.
#
# Usage: scripts/tier1.sh
# Honors MURPHY_THREADS for the worker pool (see README "Performance").
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

# Lint gate: warnings are errors. Skipped gracefully where the clippy
# component isn't installed (minimal toolchains).
if cargo clippy --version >/dev/null 2>&1; then
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "tier1: cargo clippy unavailable, skipping lint gate" >&2
fi
