#!/usr/bin/env bash
# Fast-scale perf smoke: times online training + per-symptom diagnosis —
# including the legacy-vs-memoized-vs-batch comparison, the sharded
# ingestion series (per-record loop vs record_batch at 1/2/4/8 shards,
# plus the fanned-out training-window scan), and the incremental-training
# series (full retrain vs fingerprint-keyed cache: cold / warm / 10%
# dirty) — and appends one record to BENCH_perf.json at the repo root.
#
# Usage: scripts/bench-smoke.sh [--scale fast|default|paper]
# Compare runs with: jq '.[] | {scale, threads, train_ms, diagnose_ms}' BENCH_perf.json
# Batch series:      jq '.[-1].diagnose_batch' BENCH_perf.json
# Ingest series:     jq '.[-1].ingest' BENCH_perf.json
# Window scans:      jq '.[-1].train_window_scan' BENCH_perf.json
# Incremental train: jq '.[-1].train_incremental' BENCH_perf.json
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="fast"
if [[ "${1:-}" == "--scale" && -n "${2:-}" ]]; then
  SCALE="$2"
fi

cargo run --release -p murphy-bench --bin repro -- --scale "$SCALE" bench
