//! Integration tests for the Table 2 robustness path: degrade the
//! telemetry, rebuild the graph, diagnose — the pipeline must stay total
//! and keep finding the root cause when the degradation permits.

use murphy::baselines::{DiagnosisScheme, MurphyScheme, SchemeContext};
use murphy::core::MurphyConfig;
use murphy::graph::{build_from_seeds, prune_candidates, BuildOptions};
use murphy::sim::faults::FaultKind;
use murphy::sim::scenario::{FaultPlan, Scenario, ScenarioBuilder};
use murphy::telemetry::degrade::{apply, DegradeContext, Degradation};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn base_scenario(seed: u64) -> Scenario {
    ScenarioBuilder::hotel_reservation(seed)
        .with_fault(FaultPlan::contention(FaultKind::Cpu, 1.5))
        .with_causal_edges(true)
        .with_ticks(260)
        .build()
}

fn diagnose_after(scenario: &Scenario, degradation: Option<Degradation>) -> Vec<murphy::telemetry::EntityId> {
    let mut db = scenario.db.clone();
    if let Some(d) = degradation {
        apply(
            &mut db,
            d,
            DegradeContext {
                symptom_entity: scenario.symptom.entity,
                root_cause_entity: scenario.ground_truth[0],
                incident_start_tick: scenario.incident_start_tick,
            },
            &mut StdRng::seed_from_u64(5),
        );
    }
    let graph = build_from_seeds(&db, &[scenario.symptom.entity], BuildOptions::default());
    let candidates = prune_candidates(&db, &graph, scenario.symptom.entity, 1.0);
    MurphyScheme::new(MurphyConfig::fast()).diagnose(&SchemeContext {
        db: &db,
        graph: &graph,
        symptom: scenario.symptom,
        candidates: &candidates,
        n_train: 150,
    })
}

#[test]
fn missing_values_keeps_diagnosis_working() {
    // The paper: "missing values have a minimal effect on Murphy since the
    // most recent data related to the incident is still present". In our
    // emulation the blanked-history hit is larger (see EXPERIMENTS.md
    // deviation 3), so the assertion is statistical: across a few
    // scenarios the degraded pipeline must still find the root cause at
    // least once — i.e. it degrades, it doesn't break.
    let mut hits = 0;
    for seed in [81u64, 82, 83] {
        let scenario = base_scenario(seed);
        let ranked =
            diagnose_after(&scenario, Some(Degradation::MissingValues { fraction: 0.25 }));
        if ranked.iter().take(5).any(|e| scenario.ground_truth.contains(e)) {
            hits += 1;
        }
    }
    assert!(hits >= 1, "missing-values degradation broke diagnosis entirely");
}

#[test]
fn missing_edge_and_entity_do_not_crash() {
    let scenario = base_scenario(82);
    for degradation in [Degradation::MissingEdge, Degradation::MissingEntity] {
        let ranked = diagnose_after(&scenario, Some(degradation));
        // Totality is the requirement here; accuracy is measured by the
        // Table 2 experiment over many scenarios.
        for e in &ranked {
            assert!(scenario.db.entity(*e).is_some() || true);
        }
    }
}

#[test]
fn missing_metric_still_leaves_other_signals() {
    let scenario = base_scenario(83);
    let ranked = diagnose_after(&scenario, Some(Degradation::MissingMetric));
    // The faulted container has several metrics; losing one random metric
    // usually leaves enough signal. We only require a non-empty diagnosis.
    assert!(!ranked.is_empty(), "diagnosis collapsed after one missing metric");
}

#[test]
fn pristine_baseline_beats_or_matches_degraded() {
    let scenario = base_scenario(84);
    let pristine = diagnose_after(&scenario, None);
    let rank_of = |ranked: &[murphy::telemetry::EntityId]| {
        ranked
            .iter()
            .position(|e| scenario.ground_truth.contains(e))
            .map(|i| i + 1)
    };
    let pristine_rank = rank_of(&pristine);
    assert!(pristine_rank.is_some_and(|r| r <= 5), "pristine run must find the fault");
}
