//! Property-based tests on cross-crate invariants.
//!
//! proptest drives randomized databases, graphs, and scenarios through
//! the public API and asserts structural invariants that must hold for
//! *every* input — graph construction monotonicity, pruning soundness,
//! diagnosis-output well-formedness.

use murphy::graph::{build_from_seeds, prune_candidates, BuildOptions, ShortestPathSubgraph};
use murphy::telemetry::{AssociationKind, EntityId, EntityKind, MetricKind, MonitoringDb};
use proptest::prelude::*;

/// Build a random database: `n` VMs with random associations and random
/// CPU levels at tick 0.
fn arb_db() -> impl Strategy<Value = MonitoringDb> {
    (2usize..12, proptest::collection::vec((0usize..12, 0usize..12), 1..24), proptest::collection::vec(0.0f64..100.0, 12))
        .prop_map(|(n, edges, cpus)| {
            let mut db = MonitoringDb::new(10);
            let ids: Vec<EntityId> = (0..n)
                .map(|i| db.add_entity(EntityKind::Vm, format!("vm{i}")))
                .collect();
            for (a, b) in edges {
                if a < n && b < n && a != b {
                    db.relate(ids[a], ids[b], AssociationKind::Related);
                }
            }
            for (i, &id) in ids.iter().enumerate() {
                db.record(id, MetricKind::CpuUtil, 0, cpus[i % cpus.len()]);
            }
            db
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_nodes_subset_of_db_entities(db in arb_db()) {
        let seeds: Vec<EntityId> = db.entities().take(2).map(|e| e.id).collect();
        let graph = build_from_seeds(&db, &seeds, BuildOptions::default());
        for &e in graph.entities() {
            prop_assert!(db.entity(e).is_some());
        }
        // Edge endpoints are graph nodes.
        for (a, b) in graph.edges() {
            prop_assert!(graph.contains(a));
            prop_assert!(graph.contains(b));
        }
    }

    #[test]
    fn hop_limit_is_monotone(db in arb_db()) {
        let seeds: Vec<EntityId> = db.entities().take(1).map(|e| e.id).collect();
        let mut prev = 0usize;
        for hops in 0..4usize {
            let graph = build_from_seeds(&db, &seeds, BuildOptions { max_hops: Some(hops) });
            prop_assert!(graph.node_count() >= prev, "hops {hops}: shrank");
            prev = graph.node_count();
        }
        let unlimited = build_from_seeds(&db, &seeds, BuildOptions::default());
        prop_assert!(unlimited.node_count() >= prev);
    }

    #[test]
    fn pruned_candidates_are_graph_members(db in arb_db()) {
        let Some(seed) = db.entities().next().map(|e| e.id) else { return Ok(()); };
        let graph = build_from_seeds(&db, &[seed], BuildOptions::default());
        let candidates = prune_candidates(&db, &graph, seed, 1.0);
        for c in &candidates {
            prop_assert!(graph.contains(*c));
            prop_assert_ne!(*c, seed, "symptom entity must not be a candidate");
        }
        // No duplicates.
        let mut sorted = candidates.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), candidates.len());
    }

    #[test]
    fn shortest_path_subgraph_invariants(db in arb_db()) {
        let entities: Vec<EntityId> = db.entities().map(|e| e.id).collect();
        if entities.len() < 2 { return Ok(()); }
        let graph = build_from_seeds(&db, &entities[..1], BuildOptions::default());
        let (a, d) = (entities[0], entities[entities.len() - 1]);
        if let Some(sp) = ShortestPathSubgraph::compute_with_slack(&graph, a, d, 2) {
            // Order never contains the candidate A, ends at D, no dupes.
            let a_idx = graph.node(a).unwrap();
            let d_idx = graph.node(d).unwrap();
            if a != d {
                prop_assert!(!sp.order.contains(&a_idx));
            }
            prop_assert_eq!(*sp.order.last().unwrap(), d_idx);
            let mut sorted = sp.order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), sp.order.len());
            // Strict subgraph is contained in the slacked one.
            let strict = ShortestPathSubgraph::compute(&graph, a, d).unwrap();
            for v in &strict.order {
                prop_assert!(sp.order.contains(v), "strict member missing under slack");
            }
            prop_assert_eq!(strict.distance, sp.distance);
        }
    }

    #[test]
    fn threshold_scale_monotone_pruning(db in arb_db()) {
        let Some(seed) = db.entities().next().map(|e| e.id) else { return Ok(()); };
        let graph = build_from_seeds(&db, &[seed], BuildOptions::default());
        // A stricter (larger) scale can only shrink the candidate set.
        let loose = prune_candidates(&db, &graph, seed, 0.5);
        let strict = prune_candidates(&db, &graph, seed, 2.0);
        for c in &strict {
            prop_assert!(loose.contains(c), "strict candidate {c:?} absent from loose set");
        }
    }
}
