//! Cross-crate integration tests: full diagnosis pipelines through the
//! public facade, from emulation to ranked root causes and explanations.

use murphy::baselines::{DiagnosisScheme, SchemeContext};
use murphy::core::{Murphy, MurphyConfig};
use murphy::experiments::schemes::SchemeKind;
use murphy::graph::{prune_candidates, CycleStats};
use murphy::sim::faults::FaultKind;
use murphy::sim::scenario::{FaultPlan, ScenarioBuilder};

#[test]
fn contention_pipeline_finds_the_faulted_container() {
    let scenario = ScenarioBuilder::hotel_reservation(71)
        .with_fault(FaultPlan::contention(FaultKind::Cpu, 1.4))
        .with_ticks(260)
        .build();
    let murphy = Murphy::new(MurphyConfig::fast());
    let explained = murphy.diagnose_explained(&scenario.db, &scenario.graph, &scenario.symptom);
    let truth = scenario.ground_truth[0];
    let rank = explained.report.rank_of(truth);
    assert!(
        rank.is_some_and(|r| r <= 5),
        "faulted container not in top-5: rank {rank:?}, ranked {:?}",
        explained.report.root_causes
    );
    // Explanations align one-to-one with root causes.
    assert_eq!(
        explained.explanations.len(),
        explained.report.root_causes.len()
    );
}

#[test]
fn interference_pipeline_blames_the_aggressor_client() {
    let scenario = ScenarioBuilder::hotel_reservation(72)
        .with_fault(FaultPlan::interference(1.2))
        .with_ticks(260)
        .build();
    // The cyclic relationship graph really is cyclic.
    let cycles = CycleStats::count(&scenario.graph);
    assert!(cycles.len2 > 0, "interference graph must contain cycles");

    let murphy = Murphy::new(MurphyConfig::fast());
    let report = murphy.diagnose(&scenario.db, &scenario.graph, &scenario.symptom);
    let truth = scenario.ground_truth[0];
    assert!(
        report.top_k(5).contains(&truth),
        "aggressor not in top-5: {:?}",
        report.root_causes
    );
}

#[test]
fn all_four_schemes_run_on_a_shared_context() {
    let scenario = ScenarioBuilder::social_network(73)
        .with_fault(FaultPlan::contention(FaultKind::Mem, 1.3))
        .with_causal_edges(true)
        .with_ticks(260)
        .build();
    let candidates = prune_candidates(&scenario.db, &scenario.graph, scenario.symptom.entity, 1.0);
    assert!(!candidates.is_empty(), "pruning must leave candidates");
    let ctx = SchemeContext {
        db: &scenario.db,
        graph: &scenario.graph,
        symptom: scenario.symptom,
        candidates: &candidates,
        n_train: 150,
    };
    for kind in SchemeKind::ALL {
        let scheme: Box<dyn DiagnosisScheme> = kind.build(MurphyConfig::fast());
        let ranked = scheme.diagnose(&ctx);
        // Every reported entity must come from the shared candidate space.
        for e in &ranked {
            assert!(
                candidates.contains(e),
                "{}: reported {e:?} outside the candidate space",
                kind.label()
            );
        }
    }
}

#[test]
fn symptom_discovery_and_application_graphs_compose() {
    let scenario = ScenarioBuilder::hotel_reservation(74)
        .with_fault(FaultPlan::contention(FaultKind::Disk, 1.5))
        .with_ticks(260)
        .build();
    let murphy = Murphy::new(MurphyConfig::fast());
    // Appendix A.1: scan the affected application for symptoms.
    let symptoms = murphy.find_symptoms(&scenario.db, "hotel-reservation");
    assert!(
        !symptoms.is_empty(),
        "threshold scan should surface the incident"
    );
    // The scan must include the faulted container's saturated resource.
    let truth = scenario.ground_truth[0];
    assert!(
        symptoms.iter().any(|s| s.entity == truth),
        "faulted container not among discovered symptoms"
    );
}
