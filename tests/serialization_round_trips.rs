//! Integration tests for trace/result serialization: the paper published
//! its DeathStarBench traces; we mirror that by round-tripping the
//! monitoring database and diagnosis outputs through JSON.

use murphy::core::{Murphy, MurphyConfig};
use murphy::sim::faults::FaultKind;
use murphy::sim::scenario::{FaultPlan, ScenarioBuilder};
use murphy::telemetry::{MetricId, MetricKind, MonitoringDb};

fn scenario() -> murphy::sim::scenario::Scenario {
    ScenarioBuilder::hotel_reservation(91)
        .with_fault(FaultPlan::contention(FaultKind::Cpu, 1.2))
        .with_ticks(120)
        .build()
}

#[test]
fn monitoring_db_round_trips_through_json() {
    let s = scenario();
    let json = serde_json::to_string(&s.db).expect("serialize");
    let restored: MonitoringDb = serde_json::from_str(&json).expect("deserialize");

    assert_eq!(restored.entity_count(), s.db.entity_count());
    assert_eq!(restored.associations().len(), s.db.associations().len());
    assert_eq!(restored.latest_tick(), s.db.latest_tick());
    // Adjacency queries work after deserialization (index is serialized).
    let some_entity = s.db.entities().next().unwrap().id;
    assert_eq!(restored.neighbors(some_entity), s.db.neighbors(some_entity));
    // Series data survives.
    let m = s.symptom.metric_id();
    assert_eq!(
        restored.series(m).map(|x| x.len()),
        s.db.series(m).map(|x| x.len())
    );
}

#[test]
fn diagnosis_report_round_trips_through_json() {
    let s = scenario();
    let murphy = Murphy::new(MurphyConfig::fast());
    let report = murphy.diagnose(&s.db, &s.graph, &s.symptom);
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    let restored: murphy::core::DiagnosisReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(restored.root_causes.len(), report.root_causes.len());
    assert_eq!(restored.top_k(5), report.top_k(5));
}

#[test]
fn restored_db_supports_fresh_diagnosis() {
    // The published-traces workflow: emulate once, serialize, let a
    // downstream user deserialize and diagnose.
    let s = scenario();
    let json = serde_json::to_string(&s.db).expect("serialize");
    let restored: MonitoringDb = serde_json::from_str(&json).expect("deserialize");
    let murphy = Murphy::new(MurphyConfig::fast());
    let graph = murphy.graph_for_entity(
        &restored,
        s.symptom.entity,
        murphy::graph::BuildOptions::default(),
    );
    let report = murphy.diagnose(&restored, &graph, &s.symptom);
    assert!(report.candidates_evaluated > 0);
}

#[test]
fn metric_values_survive_exactly() {
    let s = scenario();
    let json = serde_json::to_string(&s.db).expect("serialize");
    let restored: MonitoringDb = serde_json::from_str(&json).expect("deserialize");
    let truth = s.ground_truth[0];
    let m = MetricId::new(truth, MetricKind::CpuUtil);
    let a = s.db.series(m).expect("series");
    let b = restored.series(m).expect("series");
    for t in 0..a.end_tick() {
        let (x, y) = (a.at(t), b.at(t));
        match (x, y) {
            (Some(x), Some(y)) => assert_eq!(x.to_bits(), y.to_bits(), "tick {t}"),
            (None, None) => {}
            other => panic!("tick {t}: mismatch {other:?}"),
        }
    }
}
