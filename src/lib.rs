//! # Murphy — performance diagnosis for distributed cloud applications
//!
//! This is the facade crate of a from-scratch Rust reproduction of
//! *Murphy: Performance Diagnosis of Distributed Cloud Applications*
//! (Harsh et al., ACM SIGCOMM 2023). It re-exports every subsystem so that
//! downstream users can depend on a single crate:
//!
//! * [`telemetry`] — entity/metric model and the in-memory monitoring
//!   database Murphy reads from (stand-in for an enterprise observability
//!   platform).
//! * [`graph`] — the relationship graph (§4.1): loose, possibly cyclic
//!   associations between entities.
//! * [`stats`] — statistics substrate (Welch t-test, correlation, MASE,
//!   anomaly scores).
//! * [`learn`] — metric-prediction models (ridge regression, GMM, SVR,
//!   MLP) and feature selection.
//! * [`core`] — the MRF framework, adapted Gibbs sampler, counterfactual
//!   diagnosis and explanation generation (§4.2–4.3).
//! * [`baselines`] — reference schemes: NetMedic, ExplainIt, and a
//!   Sage-style causal-DAG engine.
//! * [`sim`] — evaluation environments: a DeathStarBench-style
//!   microservice emulator, fault injection, and enterprise topology /
//!   incident generators.
//! * [`experiments`] — runners that regenerate every table and figure of
//!   the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use murphy::core::{Murphy, MurphyConfig};
//! use murphy::sim::faults::FaultKind;
//! use murphy::sim::scenario::{FaultPlan, ScenarioBuilder};
//!
//! // Emulate a small microservice app with a CPU contention fault.
//! let scenario = ScenarioBuilder::hotel_reservation(7)
//!     .with_fault(FaultPlan::contention(FaultKind::Cpu, 1.6))
//!     .with_ticks(180)
//!     .build();
//!
//! // Diagnose the problematic symptom with Murphy.
//! let murphy = Murphy::new(MurphyConfig::fast().with_num_samples(100));
//! let report = murphy.diagnose(&scenario.db, &scenario.graph, &scenario.symptom);
//! assert!(!report.root_causes.is_empty());
//! ```
//!
//! See `examples/` for complete, narrated scenarios and `crates/bench` for
//! the reproduction harness (`cargo run -p murphy-bench --bin repro`).

#![forbid(unsafe_code)]

pub use murphy_baselines as baselines;
pub use murphy_core as core;
pub use murphy_experiments as experiments;
pub use murphy_graph as graph;
pub use murphy_learn as learn;
pub use murphy_sim as sim;
pub use murphy_stats as stats;
pub use murphy_telemetry as telemetry;
