//! Quickstart: diagnose a resource-contention fault in an emulated
//! microservice application, end to end.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```
//!
//! What happens:
//! 1. the DeathStarBench-style hotel-reservation app is emulated for an
//!    hour of 10 s ticks, with a CPU hog injected into one container,
//! 2. Murphy builds the relationship graph, trains its MRF online, and
//!    runs the counterfactual candidate loop,
//! 3. the ranked root causes and their explanation chains are printed.

use murphy::core::{Murphy, MurphyConfig};
use murphy::sim::faults::FaultKind;
use murphy::sim::scenario::{FaultPlan, ScenarioBuilder};

fn main() {
    // 1. Emulate the app with an injected CPU-contention fault.
    let scenario = ScenarioBuilder::hotel_reservation(7)
        .with_fault(FaultPlan::contention(FaultKind::Cpu, 1.5))
        .with_ticks(300)
        .build();
    println!("scenario: {}", scenario.name);
    println!(
        "graph: {} entities, {} directed edges",
        scenario.graph.node_count(),
        scenario.graph.edge_count()
    );
    let symptom_name = scenario
        .db
        .entity(scenario.symptom.entity)
        .map(|e| e.describe())
        .unwrap_or_default();
    println!(
        "symptom: {} {} is high ({:.1})",
        symptom_name,
        scenario.symptom.metric,
        scenario.db.current_value(scenario.symptom.metric_id())
    );

    // 2. Diagnose.
    let murphy = Murphy::new(MurphyConfig::fast());
    let explained = murphy.diagnose_explained(&scenario.db, &scenario.graph, &scenario.symptom);

    // 3. Report.
    println!(
        "\nevaluated {} candidates ({} pruned up front)",
        explained.report.candidates_evaluated, explained.report.candidates_pruned
    );
    println!("ranked root causes:");
    for (i, rc) in explained.report.root_causes.iter().enumerate() {
        let name = scenario
            .db
            .entity(rc.entity)
            .map(|e| e.describe())
            .unwrap_or_default();
        let truth = if scenario.ground_truth.contains(&rc.entity) {
            "  <-- injected fault"
        } else {
            ""
        };
        println!(
            "  {}. {} via {} (anomaly {:.1}σ, p={:.2e}){}",
            i + 1,
            name,
            rc.metric,
            rc.score,
            rc.verdict.p_value,
            truth
        );
        if let Some(Some(chain)) = explained.explanations.get(i) {
            for line in chain.render().lines() {
                println!("       {line}");
            }
        }
    }
    match explained
        .report
        .rank_of(scenario.ground_truth[0])
    {
        Some(rank) => println!("\ninjected root cause found at rank {rank}"),
        None => println!("\ninjected root cause NOT found"),
    }
}
