//! Performance interference between microservice clients (§6.1, Fig 5a).
//!
//! ```sh
//! cargo run --example microservice_interference --release
//! ```
//!
//! Client A floods its API endpoint; the shared downstream services
//! saturate and client B — who never changed anything — sees its latency
//! climb. The relationship graph is cyclic (shared services couple the
//! two call trees in both directions), which is exactly the case the
//! paper's Sage baseline cannot model. Murphy diagnoses client B's
//! latency and should surface client A's request load as the root cause.

use murphy::baselines::{DiagnosisScheme, SchemeContext};
use murphy::core::MurphyConfig;
use murphy::experiments::fig5::interference_scenario;
use murphy::experiments::schemes::SchemeKind;
use murphy::graph::prune_candidates;
use murphy::telemetry::MetricId;
use murphy_telemetry::MetricKind;

fn main() {
    let scenario = interference_scenario(1003, 300);
    println!("scenario: {}", scenario.name);

    let aggressor = scenario.ground_truth[0];
    println!(
        "aggressor: {} at {:.0} req/s (victim's baseline is ~60 req/s)",
        scenario.db.entity(aggressor).unwrap().describe(),
        scenario
            .db
            .current_value(MetricId::new(aggressor, MetricKind::RequestRate))
    );
    println!(
        "victim:    {} latency {:.1} ms",
        scenario.db.entity(scenario.symptom.entity).unwrap().describe(),
        scenario.db.current_value(scenario.symptom.metric_id())
    );

    let candidates = prune_candidates(&scenario.db, &scenario.graph, scenario.symptom.entity, 1.0);
    println!("\n{} candidates after conservative-threshold pruning", candidates.len());

    // Run all four schemes on the same pruned input, as in the paper.
    for kind in SchemeKind::ALL {
        let scheme: Box<dyn DiagnosisScheme> = kind.build(MurphyConfig::fast());
        let ctx = SchemeContext {
            db: &scenario.db,
            graph: &scenario.graph,
            symptom: scenario.symptom,
            candidates: &candidates,
            n_train: 200,
        };
        let ranked = scheme.diagnose(&ctx);
        let hit = ranked
            .iter()
            .position(|e| scenario.ground_truth.contains(e))
            .map(|i| format!("rank {}", i + 1))
            .unwrap_or_else(|| "missed".to_string());
        println!("\n{} — true root cause: {}", kind.label(), hit);
        for (i, e) in ranked.iter().take(3).enumerate() {
            println!(
                "  {}. {}",
                i + 1,
                scenario.db.entity(*e).map(|x| x.describe()).unwrap_or_default()
            );
        }
        if ranked.is_empty() {
            println!("  (no output — cannot model this environment)");
        }
    }
}
