//! Resource contention with data degradation (§6.3 + Table 2).
//!
//! ```sh
//! cargo run --example resource_contention --release
//! ```
//!
//! A stress-ng-style memory hog is injected into one container of the
//! social-network app; the entry service's latency is diagnosed four
//! times — once on pristine telemetry, then once per Table 2 degradation
//! (missing values / edge / entity / metric) — to show the pipeline is
//! robust to the monitoring-data defects common in large estates.

use murphy::baselines::{DiagnosisScheme, MurphyScheme, SchemeContext};
use murphy::core::MurphyConfig;
use murphy::graph::{build_from_seeds, prune_candidates, BuildOptions};
use murphy::sim::faults::FaultKind;
use murphy::sim::scenario::{FaultPlan, ScenarioBuilder};
use murphy::telemetry::degrade::{apply, DegradeContext, Degradation};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let base = ScenarioBuilder::social_network(23)
        .with_fault(FaultPlan::contention(FaultKind::Mem, 1.4))
        .with_causal_edges(true)
        .with_ticks(300)
        .build();
    let truth = base.ground_truth[0];
    println!("scenario: {}", base.name);
    println!(
        "injected fault: memory hog on {}",
        base.db.entity(truth).unwrap().describe()
    );
    println!(
        "symptom: {} latency {:.1} ms\n",
        base.db.entity(base.symptom.entity).unwrap().describe(),
        base.db.current_value(base.symptom.metric_id())
    );

    let mut runs: Vec<(String, Option<Degradation>)> =
        vec![("unchanged input".to_string(), None)];
    for d in Degradation::TABLE2 {
        runs.push((d.label().to_string(), Some(d)));
    }

    for (label, degradation) in runs {
        let mut db = base.db.clone();
        if let Some(d) = degradation {
            let note = apply(
                &mut db,
                d,
                DegradeContext {
                    symptom_entity: base.symptom.entity,
                    root_cause_entity: truth,
                    incident_start_tick: base.incident_start_tick,
                },
                &mut StdRng::seed_from_u64(99),
            );
            println!("-- {label}: {note}");
        } else {
            println!("-- {label}");
        }
        let graph = build_from_seeds(&db, &[base.symptom.entity], BuildOptions::default());
        let candidates = prune_candidates(&db, &graph, base.symptom.entity, 1.0);
        let scheme = MurphyScheme::new(MurphyConfig::fast());
        let ranked = scheme.diagnose(&SchemeContext {
            db: &db,
            graph: &graph,
            symptom: base.symptom,
            candidates: &candidates,
            n_train: 200,
        });
        match ranked.iter().position(|&e| e == truth) {
            Some(i) => println!("   root cause found at rank {}\n", i + 1),
            None => println!("   root cause missed ({} candidates ranked)\n", ranked.len()),
        }
    }
}
