//! The Figure 1 production incident: a crawler VM floods the frontend,
//! the frontend fans out to the backends, and the backend VMs saturate.
//!
//! ```sh
//! cargo run --example enterprise_incident --release
//! ```
//!
//! This replays Table 1's incident 2 ("App returning a 502 error") on the
//! scripted enterprise: Murphy should identify the crawler's heavy-hitter
//! flow as the root cause and produce the paper's explanation chain —
//! heavy flow → frontend → heavy flow → high CPU on the backend.

use murphy::core::{Murphy, MurphyConfig};
use murphy::graph::CycleStats;
use murphy::sim::incidents::{build_incident, TABLE1};

fn main() {
    // Incident 2 is the crawler story.
    let spec = TABLE1[1];
    let scenario = build_incident(spec, 42);
    println!("incident: {}", scenario.name);
    println!(
        "relationship graph: {} entities, {} directed edges",
        scenario.graph.node_count(),
        scenario.graph.edge_count()
    );
    let cycles = CycleStats::count(&scenario.graph);
    println!(
        "cycles: {} of length 2, {} of length 3 (cycles are the norm, §2.2)",
        cycles.len2, cycles.len3
    );
    let symptom_entity = scenario.db.entity(scenario.symptom.entity).unwrap();
    println!(
        "\nsymptom: {} has high {} ({:.1})",
        symptom_entity.describe(),
        scenario.symptom.metric,
        scenario.db.current_value(scenario.symptom.metric_id())
    );

    let murphy = Murphy::new(MurphyConfig::fast());
    let explained = murphy.diagnose_explained(&scenario.db, &scenario.graph, &scenario.symptom);

    println!(
        "\nevaluated {} candidates, {} pruned; {} confirmed root causes",
        explained.report.candidates_evaluated,
        explained.report.candidates_pruned,
        explained.report.root_causes.len()
    );
    for (i, rc) in explained.report.root_causes.iter().enumerate().take(5) {
        let name = scenario
            .db
            .entity(rc.entity)
            .map(|e| e.describe())
            .unwrap_or_default();
        println!("\nroot cause #{}: {} (anomalous {}, {:.1}σ)", i + 1, name, rc.metric, rc.score);
        match &explained.explanations[i] {
            Some(chain) => {
                println!("explanation chain:");
                for line in chain.render().lines() {
                    println!("  {line}");
                }
            }
            None => println!("(no label-respecting chain)"),
        }
    }

    let truth = scenario.ground_truth[0];
    println!(
        "\noperator ground truth: {}",
        scenario.db.entity(truth).unwrap().describe()
    );
    match explained.report.rank_of(truth) {
        Some(rank) => println!("Murphy ranked it #{rank}"),
        None => println!("Murphy missed it"),
    }
}
