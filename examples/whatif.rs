//! What-if performance reasoning (§7 "Using Murphy for performance
//! reasoning").
//!
//! ```sh
//! cargo run --example whatif --release
//! ```
//!
//! Murphy's counterfactual machinery answers questions beyond diagnosis:
//! "how would the backend's CPU change if this flow's load halved?" This
//! example trains the MRF over an enterprise application, then sweeps a
//! flow's throughput through counterfactual values and prints the
//! predicted effect on a backend VM several hops away — the appendix A.2
//! setup used interactively.

use murphy::core::config::MurphyConfig;
use murphy::core::sampler::resample_subgraph;
use murphy::core::training::{train_mrf, TrainingWindow};
use murphy::graph::{build_from_seeds, BuildOptions, ShortestPathSubgraph};
use murphy::sim::enterprise::{generate, EnterpriseConfig};
use murphy::telemetry::{MetricId, MetricKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let enterprise = generate(&EnterpriseConfig::small(21));
    let db = &enterprise.db;
    let app = &enterprise.apps[0];
    let flow = app.flows[0];
    let backend = app.db[0];
    println!(
        "app {}: what if {} changed its throughput?",
        app.name,
        db.entity(flow).unwrap().describe()
    );

    // Train the MRF over the app's four-hop neighborhood.
    let graph = build_from_seeds(db, &db.application_members(&app.name), BuildOptions::four_hops());
    let config = MurphyConfig::fast();
    let mrf = train_mrf(db, &graph, &config, TrainingWindow::online(db, 200), db.latest_tick());

    let flow_metric = MetricId::new(flow, MetricKind::Throughput);
    let backend_metric = MetricId::new(backend, MetricKind::CpuUtil);
    let flow_pos = mrf.index.position(flow_metric).expect("flow indexed");
    let backend_pos = mrf.index.position(backend_metric).expect("backend indexed");
    let subgraph =
        ShortestPathSubgraph::compute_with_slack(&graph, flow, backend, config.subgraph_slack)
            .expect("flow reaches backend");

    let current_flow = mrf.current[flow_pos];
    let current_backend = mrf.current[backend_pos];
    println!(
        "current: flow throughput {current_flow:.0} MB/interval, backend CPU {current_backend:.1}%"
    );
    println!(
        "path length {} hops; resampling {} entities, W = {} Gibbs passes\n",
        subgraph.distance,
        subgraph.order.len(),
        config.gibbs_rounds
    );

    println!("{:>22}  {:>18}", "flow throughput", "predicted backend CPU");
    let mut rng = StdRng::seed_from_u64(17);
    for factor in [0.25, 0.5, 1.0, 1.5, 2.0] {
        let whatif = current_flow * factor;
        // Average a few hundred resampled predictions.
        let n = 300;
        let mut sum = 0.0;
        for _ in 0..n {
            let mut state = mrf.current.clone();
            state[flow_pos] = whatif;
            resample_subgraph(&mrf, &graph, &subgraph, &mut state, config.gibbs_rounds, &mut rng);
            sum += state[backend_pos];
        }
        println!(
            "{:>14.0} MB ({}x)  {:>17.1}%",
            whatif,
            factor,
            sum / n as f64
        );
    }
    println!("\n(predictions move with the flow: the MRF has learned the coupling)");
}
