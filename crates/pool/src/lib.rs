//! A persistent shared worker pool for Murphy's embarrassingly parallel
//! stages.
//!
//! Four hot phases of the pipeline fan out over independent work items:
//! sharded telemetry ingestion (one bulk write per shard), online MRF
//! training (one factor fit per entity metric, plus one training-window
//! column scan per metric), per-symptom subgraph derivation, and
//! candidate evaluation (one counterfactual test per candidate). All run
//! through the same [`WorkerPool`], which centralizes
//!
//! * **sizing** — `MURPHY_THREADS` overrides the thread count (useful for
//!   benchmarking scaling curves and for pinning CI), defaulting to the
//!   machine's available parallelism;
//! * **scheduling** — workers pull indices from a per-batch atomic
//!   counter, so an expensive item (a far candidate with a large subgraph)
//!   does not stall a statically assigned partner;
//! * **amortization** — worker threads are spawned **once**, when the pool
//!   is created, and parked on a condition variable between batches. A
//!   many-symptom workload (`diagnose_batch`, ablation sweeps, `repro
//!   bench`) issues hundreds of batches; none of them pays thread-spawn
//!   cost.
//!
//! The workspace is `#![forbid(unsafe_code)]`, so jobs crossing the
//! persistent-thread boundary must be `'static`: callers capture their
//! shared inputs in `Arc`s (`Arc<MrfModel>`, `Arc<RelationshipGraph>`,
//! …) instead of borrowing them. The submitting thread does not idle
//! while a batch runs — it steals indices from its own batch like any
//! worker, which also means a pool sized at `n` threads spawns only
//! `n − 1` OS threads.
//!
//! Determinism: work stealing only decides *who computes* an index, never
//! where its result lands — each job writes slot `i` of the result
//! vector. Combined with per-item seeds that are pure functions of stable
//! ids, every batch is bit-identical across thread counts and
//! interleavings (pinned by `crates/core/tests/determinism.rs`).
//!
//! A panic inside a job is caught (`catch_unwind`), recorded, and
//! re-raised on the submitting thread after the batch drains — the pool's
//! threads survive and the queue keeps serving later batches. Dropping
//! the pool signals shutdown and joins every worker.
//!
//! This crate sits below `murphy-telemetry` in the workspace so the
//! sharded monitoring database and the diagnosis engine share one
//! process-wide pool; `murphy_core::pool` re-exports everything here, so
//! existing `murphy_core::pool::global()` call sites are unaffected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// One submitted batch: a type-erased job body plus the bookkeeping that
/// lets any mix of workers (and the submitter) drain it.
struct Batch {
    /// Number of indexed jobs in the batch.
    n_jobs: usize,
    /// Next index to claim. May overshoot `n_jobs` by one per thread.
    next: AtomicUsize,
    /// Jobs not yet finished; the thread that takes this to zero flags
    /// completion.
    remaining: AtomicUsize,
    /// The job body. Writes its result into a caller-owned slot, so the
    /// pool never sees result types.
    job: Box<dyn Fn(usize) + Send + Sync>,
    /// Completion flag + condvar the submitter waits on.
    done: Mutex<bool>,
    done_cv: Condvar,
    /// First panic payload raised by a job, re-thrown by the submitter.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Batch {
    /// Steal and run indices until the batch is exhausted.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_jobs {
                break;
            }
            // A panicking job must not wedge the batch: record the payload,
            // count the job as finished, and let the submitter re-raise.
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.job)(i))) {
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                let mut done = self.done.lock().unwrap();
                *done = true;
                self.done_cv.notify_all();
            }
        }
    }

    /// True once every index has been claimed (some may still be running).
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.n_jobs
    }

    /// Block until every claimed index has finished.
    fn wait_done(&self) {
        let mut done = self.done.lock().unwrap();
        while !*done {
            done = self.done_cv.wait(done).unwrap();
        }
    }
}

/// Queue state shared between the pool handle and its workers.
struct PoolState {
    queue: VecDeque<Arc<Batch>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signaled when a batch is pushed or shutdown is requested.
    available: Condvar,
}

impl Shared {
    /// Next batch with unclaimed work, or `None` on shutdown.
    fn next_batch(&self) -> Option<Arc<Batch>> {
        let mut state = self.state.lock().unwrap();
        loop {
            // Exhausted front batches are finished by whoever claimed their
            // last indices; the queue can forget them.
            while state.queue.front().is_some_and(|b| b.exhausted()) {
                state.queue.pop_front();
            }
            if let Some(batch) = state.queue.front() {
                return Some(Arc::clone(batch));
            }
            if state.shutdown {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
    }
}

/// Cumulative dispatch counters (monotonic over the pool's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Configured thread count (including the submitting thread).
    pub threads: usize,
    /// Worker threads currently alive (0 for single-threaded pools,
    /// `threads − 1` while running, 0 again after shutdown joins).
    pub live_workers: usize,
    /// Batches submitted through [`WorkerPool::run_indexed`].
    pub batches_run: u64,
    /// Total indexed jobs across those batches.
    pub jobs_dispatched: u64,
}

/// A sized pool of persistent worker threads for batches of independent
/// indexed jobs.
pub struct WorkerPool {
    threads: usize,
    /// `None` for single-threaded pools: every batch runs inline.
    shared: Option<Arc<Shared>>,
    handles: Vec<JoinHandle<()>>,
    /// Live worker-thread count; drops to zero after shutdown joins.
    live_workers: Arc<AtomicUsize>,
    batches_run: AtomicU64,
    jobs_dispatched: AtomicU64,
}

impl WorkerPool {
    /// A pool with an explicit thread count (floored at 1). Spawns
    /// `threads − 1` worker threads; the submitting thread is the last
    /// worker of its own batches.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let live_workers = Arc::new(AtomicUsize::new(0));
        if threads == 1 {
            return Self {
                threads,
                shared: None,
                handles: Vec::new(),
                live_workers,
                batches_run: AtomicU64::new(0),
                jobs_dispatched: AtomicU64::new(0),
            };
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let handles = (0..threads - 1)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let live = Arc::clone(&live_workers);
                live.fetch_add(1, Ordering::AcqRel);
                std::thread::spawn(move || {
                    while let Some(batch) = shared.next_batch() {
                        batch.work();
                    }
                    live.fetch_sub(1, Ordering::AcqRel);
                })
            })
            .collect();
        Self {
            threads,
            shared: Some(shared),
            handles,
            live_workers,
            batches_run: AtomicU64::new(0),
            jobs_dispatched: AtomicU64::new(0),
        }
    }

    /// A pool sized from the environment: `MURPHY_THREADS` when set to a
    /// positive integer, otherwise the machine's available parallelism.
    pub fn from_env() -> Self {
        let threads = std::env::var("MURPHY_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
            .unwrap_or(4);
        Self::new(threads)
    }

    /// Configured thread count (including the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cumulative dispatch counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.threads,
            live_workers: self.live_workers.load(Ordering::Acquire),
            batches_run: self.batches_run.load(Ordering::Relaxed),
            jobs_dispatched: self.jobs_dispatched.load(Ordering::Relaxed),
        }
    }

    /// Run `f(0..n_jobs)` across the pool and return the results in index
    /// order.
    ///
    /// Work is pulled from a per-batch atomic counter (dynamic load
    /// balance) and each result is written to its own slot, so the output
    /// order — and therefore every downstream ranking — is independent of
    /// thread interleaving. With one thread or one job the batch runs
    /// inline on the caller's thread. The job must be `'static`: capture
    /// shared inputs in `Arc`s.
    ///
    /// If a job panics, the panic is re-raised here after the rest of the
    /// batch drains; the pool remains usable. Submitting a batch from
    /// inside a job cannot deadlock (the inner submitter drains its own
    /// batch), but serializes — keep fan-out at one level.
    pub fn run_indexed<T, F>(&self, n_jobs: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
    {
        if n_jobs == 0 {
            return Vec::new();
        }
        self.batches_run.fetch_add(1, Ordering::Relaxed);
        self.jobs_dispatched.fetch_add(n_jobs as u64, Ordering::Relaxed);
        let Some(shared) = self.shared.as_ref().filter(|_| n_jobs > 1) else {
            return (0..n_jobs).map(f).collect();
        };

        let results: Arc<Mutex<Vec<Option<T>>>> =
            Arc::new(Mutex::new((0..n_jobs).map(|_| None).collect()));
        let job = {
            let results = Arc::clone(&results);
            Box::new(move |i: usize| {
                let value = f(i);
                results.lock().unwrap()[i] = Some(value);
            })
        };
        let batch = Arc::new(Batch {
            n_jobs,
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(n_jobs),
            job,
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            let mut state = shared.state.lock().unwrap();
            state.queue.push_back(Arc::clone(&batch));
        }
        shared.available.notify_all();

        // The submitter is a worker of its own batch, then waits for
        // stragglers claimed by pool threads.
        batch.work();
        batch.wait_done();
        if let Some(payload) = batch.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        let mut slots = results.lock().unwrap();
        slots
            .iter_mut()
            .map(|slot| slot.take().expect("every job completed"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let Some(shared) = self.shared.take() else {
            return;
        };
        shared.state.lock().unwrap().shutdown = true;
        shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("batches_run", &stats.batches_run)
            .field("jobs_dispatched", &stats.jobs_dispatched)
            .finish()
    }
}

/// The process-wide pool, sized once (from `MURPHY_THREADS` or the
/// machine) on first use and shared by training and diagnosis. Its
/// workers live for the rest of the process; every later batch reuses
/// them.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(WorkerPool::from_env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run_indexed(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_is_empty() {
        let pool = WorkerPool::new(4);
        let out: Vec<usize> = pool.run_indexed(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert!(pool.shared.is_none(), "no workers for a 1-thread pool");
        let out = pool.run_indexed(5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn thread_count_floors_at_one() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = WorkerPool::new(1).run_indexed(257, |i| (i as f64).sqrt());
        let par = WorkerPool::new(8).run_indexed(257, |i| (i as f64).sqrt());
        assert_eq!(seq, par);
    }

    #[test]
    fn global_pool_is_stable() {
        let a = global().threads();
        let b = global().threads();
        assert_eq!(a, b);
        assert!(a >= 1);
    }

    #[test]
    fn workers_persist_across_batches() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.live_workers.load(Ordering::Acquire), 3);
        for round in 0..50u64 {
            let out = pool.run_indexed(16, move |i| round * 100 + i as u64);
            assert_eq!(out.len(), 16);
            assert_eq!(out[3], round * 100 + 3);
        }
        // Same three threads served every batch — no spawn per batch.
        assert_eq!(pool.live_workers.load(Ordering::Acquire), 3);
        let stats = pool.stats();
        assert_eq!(stats.batches_run, 50);
        assert_eq!(stats.jobs_dispatched, 50 * 16);
    }

    #[test]
    fn shutdown_on_drop_joins_all_threads() {
        let pool = WorkerPool::new(8);
        let live = Arc::clone(&pool.live_workers);
        assert_eq!(live.load(Ordering::Acquire), 7);
        let out = pool.run_indexed(64, |i| i);
        assert_eq!(out.len(), 64);
        drop(pool);
        // Drop joins, so by here every worker has run its exit path.
        assert_eq!(live.load(Ordering::Acquire), 0, "worker thread leaked");
    }

    #[test]
    fn jobs_vastly_exceeding_threads_complete() {
        let pool = WorkerPool::new(2);
        let out = pool.run_indexed(10_000, |i| i as u64 * 7);
        assert_eq!(out.len(), 10_000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 7));
    }

    #[test]
    fn panic_in_job_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(8, |i| {
                if i == 3 {
                    panic!("job 3 exploded");
                }
                i
            })
        }));
        let payload = caught.expect_err("panic must propagate to the submitter");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "job 3 exploded");
        // The pool's threads survived the panic and keep serving batches.
        let out = pool.run_indexed(8, |i| i + 1);
        assert_eq!(out, (1..=8).collect::<Vec<_>>());
        assert_eq!(pool.live_workers.load(Ordering::Acquire), 3);
    }

    #[test]
    fn concurrent_submitters_share_one_pool() {
        let pool = Arc::new(WorkerPool::new(4));
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for round in 0..10 {
                        let out = pool.run_indexed(33, move |i| (t, round, i));
                        assert_eq!(out.len(), 33);
                        assert!(out.iter().enumerate().all(|(i, &(tt, r, ii))| {
                            tt == t && r == round && ii == i
                        }));
                    }
                });
            }
        });
        assert_eq!(pool.stats().batches_run, 40);
    }
}
