//! Runtime and scale measurements (§6.7).
//!
//! The paper reports Murphy's inference complexity as
//! `O((N+M)·T + (N+M)·W)` for N entities, M edges, T training slices and
//! W Gibbs passes, with ~2 minutes per symptom at incident scale. This
//! module measures wall-clock time of the two components — online
//! training and the per-symptom candidate loop — across graph sizes, for
//! the `repro perf` report (Criterion benches time the same units with
//! statistical rigor; this gives the one-table overview).

use murphy_baselines::{DiagnosisScheme, MurphyScheme, SchemeContext};
use murphy_core::diagnose::{diagnose_batch, diagnose_symptom};
use murphy_core::training::{train_mrf, train_mrf_cached, TrainingWindow};
use murphy_core::{evaluate_candidate, MurphyConfig, Symptom, TrainingCache};
use murphy_graph::{build_from_seeds, prune_candidates, BuildOptions};
use murphy_sim::enterprise::{generate, EnterpriseConfig};
use murphy_telemetry::{MetricKind, MetricSample, MonitoringDb};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One scale point's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfPoint {
    /// Entities in the relationship graph (N).
    pub entities: usize,
    /// Directed edges (M).
    pub edges: usize,
    /// Training slices (T).
    pub train_slices: usize,
    /// Online-training wall time, milliseconds.
    pub train_ms: f64,
    /// Candidates evaluated in the diagnosis loop.
    pub candidates: usize,
    /// Full per-symptom diagnosis wall time (training + loop), ms.
    pub diagnose_ms: f64,
}

/// Measure training and diagnosis across enterprise sizes.
///
/// `app_counts` controls the generated-estate sizes; `murphy` sets the
/// engine parameters (use a reduced `num_samples` unless you want the
/// paper's ~minutes-per-symptom regime).
pub fn run(app_counts: &[usize], murphy: MurphyConfig) -> Vec<PerfPoint> {
    app_counts
        .iter()
        .map(|&apps| {
            let config = EnterpriseConfig {
                num_apps: apps,
                ..EnterpriseConfig::small(17)
            };
            let enterprise = generate(&config);
            let db = &enterprise.db;
            let seeds: Vec<_> = enterprise
                .apps
                .iter()
                .flat_map(|a| db.application_members(&a.name))
                .collect();
            let graph = build_from_seeds(db, &seeds, BuildOptions::four_hops());
            let window = TrainingWindow::online(db, murphy.n_train);

            let t0 = Instant::now();
            let mrf = train_mrf(db, &graph, &murphy, window, db.latest_tick());
            let train_ms = t0.elapsed().as_secs_f64() * 1e3;
            drop(mrf);

            // Diagnose a representative symptom: the first app's backend.
            let symptom = murphy_core::Symptom::high(
                enterprise.apps[0].db[0],
                murphy_telemetry::MetricKind::CpuUtil,
            );
            let candidates = prune_candidates(db, &graph, symptom.entity, 1.0);
            let t1 = Instant::now();
            let scheme = MurphyScheme::new(murphy);
            let _ = scheme.diagnose(&SchemeContext {
                db,
                graph: &graph,
                symptom,
                candidates: &candidates,
                n_train: murphy.n_train,
            });
            let diagnose_ms = t1.elapsed().as_secs_f64() * 1e3;

            PerfPoint {
                entities: graph.node_count(),
                edges: graph.edge_count(),
                train_slices: window.len(),
                train_ms,
                candidates: candidates.len(),
                diagnose_ms,
            }
        })
        .collect()
}

/// Wall-clock comparison of the three ways to diagnose N symptoms: the
/// legacy per-candidate path (BFS + plan per candidate), a loop of
/// memoized [`diagnose_symptom`] calls, and one [`diagnose_batch`] call.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchPerfPoint {
    /// Entities in the relationship graph (N).
    pub entities: usize,
    /// Symptoms diagnosed.
    pub symptoms: usize,
    /// Total candidate evaluations across all symptoms.
    pub candidates: usize,
    /// Per-candidate `evaluate_candidate` loop (pre-memoization path), ms.
    pub legacy_ms: f64,
    /// N independent `diagnose_symptom` calls (memoized setup), ms.
    pub loop_ms: f64,
    /// One `diagnose_batch` call (memoization shared across symptoms), ms.
    pub batch_ms: f64,
    /// Resampling plans built across the batch call (interner misses).
    #[serde(default)]
    pub plans_built: usize,
    /// Plan builds the interner avoided across the batch call (hits).
    #[serde(default)]
    pub plans_reused: usize,
}

/// Measure the batch-diagnosis speedup on a generated enterprise.
///
/// The model is trained once; each timing then covers only the candidate
/// loop, which is where the memoization acts. To give the cross-symptom
/// cache something to share, each app's backend entity contributes
/// `CpuUtil` and `Latency` symptoms (two symptoms per entity — the
/// [`diagnose_batch`] sweet spot, mirroring how `find_symptoms` reports
/// incidents).
pub fn run_batch(app_counts: &[usize], murphy: MurphyConfig) -> Vec<BatchPerfPoint> {
    app_counts
        .iter()
        .map(|&apps| {
            let config = EnterpriseConfig {
                num_apps: apps,
                ..EnterpriseConfig::small(17)
            };
            let enterprise = generate(&config);
            let db = &enterprise.db;
            let seeds: Vec<_> = enterprise
                .apps
                .iter()
                .flat_map(|a| db.application_members(&a.name))
                .collect();
            let graph = build_from_seeds(db, &seeds, BuildOptions::four_hops());
            let window = TrainingWindow::online(db, murphy.n_train);
            let mrf = train_mrf(db, &graph, &murphy, window, db.latest_tick());

            let symptoms: Vec<Symptom> = enterprise
                .apps
                .iter()
                .flat_map(|a| {
                    [
                        Symptom::high(a.db[0], MetricKind::CpuUtil),
                        Symptom::high(a.db[0], MetricKind::Latency),
                    ]
                })
                .collect();

            // (a) Legacy: per-candidate subgraph + plan, no memoization.
            let t0 = Instant::now();
            let mut candidates_total = 0usize;
            for symptom in &symptoms {
                let candidates =
                    prune_candidates(db, &graph, symptom.entity, murphy.threshold_scale);
                candidates_total += candidates.len();
                for &c in &candidates {
                    let _ = evaluate_candidate(&mrf, &graph, symptom, c, &murphy, murphy.seed);
                }
            }
            let legacy_ms = t0.elapsed().as_secs_f64() * 1e3;

            // (b) Loop of memoized single-symptom diagnoses.
            let t1 = Instant::now();
            for symptom in &symptoms {
                let _ = diagnose_symptom(db, &mrf, &graph, symptom, &murphy);
            }
            let loop_ms = t1.elapsed().as_secs_f64() * 1e3;

            // (c) One batch call sharing memoization across symptoms.
            let t2 = Instant::now();
            let reports = diagnose_batch(db, &mrf, &graph, &symptoms, &murphy);
            let batch_ms = t2.elapsed().as_secs_f64() * 1e3;
            let plans_built = reports.iter().map(|r| r.plans_built).sum();
            let plans_reused = reports.iter().map(|r| r.plans_reused).sum();

            BatchPerfPoint {
                entities: graph.node_count(),
                symptoms: symptoms.len(),
                candidates: candidates_total,
                legacy_ms,
                loop_ms,
                batch_ms,
                plans_built,
                plans_reused,
            }
        })
        .collect()
}

/// Wall-clock comparison of full retraining against the fingerprint-keyed
/// incremental path at one estate size: a cold cache (every factor fit),
/// the warm steady state (same window retrained, everything reused), and
/// a 10%-dirty run (a tenth of the metrics overwritten in-window, so only
/// the touched factors and their downstream readers refit).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainIncrementalPoint {
    /// Entities in the relationship graph (N).
    pub entities: usize,
    /// Metrics in the model index.
    pub metrics: usize,
    /// Metrics overwritten for the dirty run (~10% of the index).
    pub dirty_metrics: usize,
    /// Legacy `train_mrf` (no cache) wall time, ms — the baseline.
    pub full_ms: f64,
    /// `train_mrf_cached` on an empty cache, ms (pays fingerprinting on
    /// top of every fit).
    pub cold_ms: f64,
    /// Warm rerun at the same window, ms (fingerprint + lookup only).
    pub warm_ms: f64,
    /// Rerun after dirtying ~10% of the metrics, ms.
    pub dirty_ms: f64,
    /// Factors fit by the cold run (= the full model's factor count).
    pub cold_refit: usize,
    /// Factors fit by the warm rerun (0 in steady state).
    pub warm_refit: usize,
    /// Factors reused by the warm rerun.
    pub warm_reused: usize,
    /// Factors refit after the dirty write (touched targets + readers).
    pub dirty_refit: usize,
    /// Factors still reused after the dirty write.
    pub dirty_reused: usize,
}

/// Measure incremental-training cost across enterprise sizes.
///
/// Each estate trains four ways on the *same* window: the legacy full
/// refit, a cold cache, a warm rerun, and a rerun after overwriting every
/// tenth metric at the latest tick (an in-window correction, no clock
/// advance). The cached model is bit-identical to the full one in all
/// three cases — parity is pinned by the core test suite; this only
/// measures the cost.
pub fn run_train_incremental(
    app_counts: &[usize],
    murphy: MurphyConfig,
) -> Vec<TrainIncrementalPoint> {
    app_counts
        .iter()
        .map(|&apps| {
            let config = EnterpriseConfig {
                num_apps: apps,
                ..EnterpriseConfig::small(17)
            };
            let enterprise = generate(&config);
            let mut db = enterprise.db;
            let seeds: Vec<_> = enterprise
                .apps
                .iter()
                .flat_map(|a| db.application_members(&a.name))
                .collect();
            let graph = build_from_seeds(&db, &seeds, BuildOptions::four_hops());
            let window = TrainingWindow::online(&db, murphy.n_train);
            let tick = db.latest_tick();

            let t0 = Instant::now();
            let full = train_mrf(&db, &graph, &murphy, window, tick);
            let full_ms = t0.elapsed().as_secs_f64() * 1e3;

            let mut cache = TrainingCache::new();
            let t1 = Instant::now();
            let cold = train_mrf_cached(&db, &graph, &murphy, window, tick, &mut cache);
            let cold_ms = t1.elapsed().as_secs_f64() * 1e3;

            let t2 = Instant::now();
            let warm = train_mrf_cached(&db, &graph, &murphy, window, tick, &mut cache);
            let warm_ms = t2.elapsed().as_secs_f64() * 1e3;

            // Dirty ~10% of the indexed metrics in place: overwrite their
            // latest-tick value (in-window) without advancing the clock.
            let ids: Vec<_> = full.index.ids().to_vec();
            let step = 10;
            let mut dirty_metrics = 0usize;
            for m in ids.iter().step_by(step) {
                let v = db.value_at(*m, tick);
                db.record(m.entity, m.kind, tick, v + 1.5);
                dirty_metrics += 1;
            }
            let t3 = Instant::now();
            let dirty = train_mrf_cached(&db, &graph, &murphy, window, tick, &mut cache);
            let dirty_ms = t3.elapsed().as_secs_f64() * 1e3;

            TrainIncrementalPoint {
                entities: graph.node_count(),
                metrics: full.index.len(),
                dirty_metrics,
                full_ms,
                cold_ms,
                warm_ms,
                dirty_ms,
                cold_refit: cold.train_stats.factors_refit,
                warm_refit: warm.train_stats.factors_refit,
                warm_reused: warm.train_stats.factors_reused,
                dirty_refit: dirty.train_stats.factors_refit,
                dirty_reused: dirty.train_stats.factors_reused,
            }
        })
        .collect()
}

/// Wall-clock comparison of telemetry ingestion and training-window
/// scans at a given shard count: the legacy per-`record` loop versus the
/// sharded `record_batch` bulk path, plus the fanned-out
/// `scan_series` column extraction that online training uses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestPerfPoint {
    /// Shard count of the measured database.
    pub shards: usize,
    /// Entities in the generated estate.
    pub entities: usize,
    /// Total metric samples ingested.
    pub samples: usize,
    /// Distinct metric series.
    pub metrics: usize,
    /// Per-`record` ingestion loop, ms (one map probe per sample).
    pub record_ms: f64,
    /// Per-tick `record_batch` replay, ms (one pool fan-out per tick,
    /// samples grouped by metric within a shard).
    pub batch_ms: f64,
    /// One-shot `record_batch` of the whole trace, ms — the bootstrap
    /// shape, where metric-grouped runs amortize the series-map probes
    /// (one probe per metric instead of one per sample).
    pub bulk_ms: f64,
    /// `scan_series` training-window column extraction over every
    /// metric, ms.
    pub scan_ms: f64,
}

/// Rebuild `src`'s entities and associations (no series) on a fresh
/// database with the given shard count, preserving ids.
fn skeleton_of(src: &MonitoringDb, shards: usize) -> MonitoringDb {
    let mut db = MonitoringDb::with_shards(src.interval_secs, shards);
    for e in src.entities() {
        let id = db.add_entity(e.kind, e.name.clone());
        debug_assert_eq!(id, e.id, "skeleton ids must align with the source");
    }
    for &a in src.associations() {
        db.add_association(a);
    }
    db
}

/// Measure ingestion and scan cost across shard counts.
///
/// One enterprise trace is generated, flattened into per-tick sample
/// batches (the shape a monitoring platform delivers), and replayed into
/// fresh databases at each requested shard count — once through the
/// per-`record` loop and once through `record_batch`. The scan timing
/// then extracts a 60-tick training window for every metric on the
/// batch-ingested database.
pub fn run_ingest(shard_counts: &[usize], apps: usize) -> Vec<IngestPerfPoint> {
    let config = EnterpriseConfig {
        num_apps: apps,
        ..EnterpriseConfig::small(17)
    };
    let enterprise = generate(&config);
    let src = &enterprise.db;
    let ticks = src.latest_tick() + 1;
    let metrics = src.all_metrics();

    // Flatten the trace twice: tick-major (one delivery batch per tick,
    // the streaming shape) and metric-major (one contiguous run per
    // series, the bootstrap-load shape).
    let mut per_tick: Vec<Vec<MetricSample>> = vec![Vec::new(); ticks as usize];
    let mut bulk: Vec<MetricSample> = Vec::new();
    for &m in &metrics {
        if let Some(s) = src.series(m) {
            for t in 0..ticks {
                if let Some(v) = s.at(t) {
                    let sample = MetricSample::new(m.entity, m.kind, t, v);
                    per_tick[t as usize].push(sample);
                    bulk.push(sample);
                }
            }
        }
    }
    let total = bulk.len();

    shard_counts
        .iter()
        .map(|&shards| {
            // (a) Legacy: one `record` call (and one series-map probe)
            // per sample.
            let mut loop_db = skeleton_of(src, shards);
            let t0 = Instant::now();
            for batch in &per_tick {
                for s in batch {
                    loop_db.record(s.entity, s.kind, s.tick, s.value);
                }
            }
            let record_ms = t0.elapsed().as_secs_f64() * 1e3;

            // (b) Bulk: per-tick `record_batch` — partitioned by shard,
            // grouped by metric, one pool job per shard.
            let mut batch_db = skeleton_of(src, shards);
            let t1 = Instant::now();
            for batch in &per_tick {
                batch_db.record_batch(batch);
            }
            let batch_ms = t1.elapsed().as_secs_f64() * 1e3;
            assert_eq!(batch_db.latest_tick(), loop_db.latest_tick());

            // (c) Bootstrap: the entire trace as one metric-grouped
            // batch, where run detection amortizes the series-map
            // probes to one per metric.
            let mut bulk_db = skeleton_of(src, shards);
            let tb = Instant::now();
            bulk_db.record_batch(&bulk);
            let bulk_ms = tb.elapsed().as_secs_f64() * 1e3;
            assert_eq!(bulk_db.latest_tick(), loop_db.latest_tick());

            // (d) Training-window column scan over every metric.
            let from = ticks.saturating_sub(60);
            let ids = metrics.clone();
            let t2 = Instant::now();
            let cols = batch_db.scan_series(ids, move |m, series| match series {
                Some(s) => s.window_mean_imputed(from, ticks, m.kind.default_value(), 8),
                None => Vec::new(),
            });
            let scan_ms = t2.elapsed().as_secs_f64() * 1e3;
            assert_eq!(cols.len(), metrics.len());

            IngestPerfPoint {
                shards: batch_db.shard_count(),
                entities: src.entity_count(),
                samples: total,
                metrics: metrics.len(),
                record_ms,
                batch_ms,
                bulk_ms,
                scan_ms,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_points_are_ordered_and_positive() {
        let points = run(&[1, 3], MurphyConfig::fast().with_num_samples(50));
        assert_eq!(points.len(), 2);
        assert!(points[1].entities > points[0].entities);
        for p in &points {
            assert!(p.train_ms > 0.0);
            assert!(p.diagnose_ms > 0.0);
            assert!(p.edges > p.entities, "relationship graphs are dense-ish");
        }
    }

    #[test]
    fn batch_points_measure_all_three_paths() {
        let points = run_batch(&[1], MurphyConfig::fast().with_num_samples(30));
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert_eq!(p.symptoms, 2);
        assert!(p.legacy_ms > 0.0);
        assert!(p.loop_ms > 0.0);
        assert!(p.batch_ms > 0.0);
        // Both symptoms share one entity, so the second one's candidates
        // are fully prepared already: the cache must see some traffic.
        assert!(p.plans_built > 0, "batch built no plans: {p:?}");
    }

    #[test]
    fn incremental_points_show_reuse() {
        let points = run_train_incremental(&[1], MurphyConfig::fast().with_num_samples(30));
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert!(p.entities > 0 && p.metrics > 0);
        assert!(p.full_ms > 0.0 && p.cold_ms > 0.0 && p.warm_ms > 0.0 && p.dirty_ms > 0.0);
        // Cold cache: everything fit, nothing reused yet.
        assert!(p.cold_refit > 0);
        // Warm steady state: the whole model comes from the cache.
        assert_eq!(p.warm_refit, 0, "{p:?}");
        assert!(p.warm_reused > 0, "{p:?}");
        assert_eq!(p.warm_refit + p.warm_reused, p.cold_refit);
        // Dirty run: the touched metrics force refits, but untouched
        // factors still come from the cache.
        assert!(p.dirty_metrics > 0);
        assert!(p.dirty_refit > 0, "{p:?}");
        assert!(p.dirty_reused > 0, "{p:?}");
    }

    #[test]
    fn ingest_points_measure_all_three_paths() {
        let points = run_ingest(&[1, 2], 1);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].shards, 1);
        assert_eq!(points[1].shards, 2);
        for p in &points {
            assert!(p.entities > 0);
            assert!(p.samples > 0);
            assert!(p.metrics > 0);
            assert!(p.record_ms > 0.0);
            assert!(p.batch_ms > 0.0);
            assert!(p.bulk_ms > 0.0);
            assert!(p.scan_ms > 0.0);
        }
        // Same trace replayed at every shard count.
        assert_eq!(points[0].samples, points[1].samples);
        assert_eq!(points[0].metrics, points[1].metrics);
    }
}
