//! Runtime and scale measurements (§6.7).
//!
//! The paper reports Murphy's inference complexity as
//! `O((N+M)·T + (N+M)·W)` for N entities, M edges, T training slices and
//! W Gibbs passes, with ~2 minutes per symptom at incident scale. This
//! module measures wall-clock time of the two components — online
//! training and the per-symptom candidate loop — across graph sizes, for
//! the `repro perf` report (Criterion benches time the same units with
//! statistical rigor; this gives the one-table overview).

use murphy_baselines::{DiagnosisScheme, MurphyScheme, SchemeContext};
use murphy_core::training::{train_mrf, TrainingWindow};
use murphy_core::MurphyConfig;
use murphy_graph::{build_from_seeds, prune_candidates, BuildOptions};
use murphy_sim::enterprise::{generate, EnterpriseConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One scale point's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfPoint {
    /// Entities in the relationship graph (N).
    pub entities: usize,
    /// Directed edges (M).
    pub edges: usize,
    /// Training slices (T).
    pub train_slices: usize,
    /// Online-training wall time, milliseconds.
    pub train_ms: f64,
    /// Candidates evaluated in the diagnosis loop.
    pub candidates: usize,
    /// Full per-symptom diagnosis wall time (training + loop), ms.
    pub diagnose_ms: f64,
}

/// Measure training and diagnosis across enterprise sizes.
///
/// `app_counts` controls the generated-estate sizes; `murphy` sets the
/// engine parameters (use a reduced `num_samples` unless you want the
/// paper's ~minutes-per-symptom regime).
pub fn run(app_counts: &[usize], murphy: MurphyConfig) -> Vec<PerfPoint> {
    app_counts
        .iter()
        .map(|&apps| {
            let config = EnterpriseConfig {
                num_apps: apps,
                ..EnterpriseConfig::small(17)
            };
            let enterprise = generate(&config);
            let db = &enterprise.db;
            let seeds: Vec<_> = enterprise
                .apps
                .iter()
                .flat_map(|a| db.application_members(&a.name))
                .collect();
            let graph = build_from_seeds(db, &seeds, BuildOptions::four_hops());
            let window = TrainingWindow::online(db, murphy.n_train);

            let t0 = Instant::now();
            let mrf = train_mrf(db, &graph, &murphy, window, db.latest_tick());
            let train_ms = t0.elapsed().as_secs_f64() * 1e3;
            drop(mrf);

            // Diagnose a representative symptom: the first app's backend.
            let symptom = murphy_core::Symptom::high(
                enterprise.apps[0].db[0],
                murphy_telemetry::MetricKind::CpuUtil,
            );
            let candidates = prune_candidates(db, &graph, symptom.entity, 1.0);
            let t1 = Instant::now();
            let scheme = MurphyScheme::new(murphy);
            let _ = scheme.diagnose(&SchemeContext {
                db,
                graph: &graph,
                symptom,
                candidates: &candidates,
                n_train: murphy.n_train,
            });
            let diagnose_ms = t1.elapsed().as_secs_f64() * 1e3;

            PerfPoint {
                entities: graph.node_count(),
                edges: graph.edge_count(),
                train_slices: window.len(),
                train_ms,
                candidates: candidates.len(),
                diagnose_ms,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_points_are_ordered_and_positive() {
        let points = run(&[1, 3], MurphyConfig::fast().with_num_samples(50));
        assert_eq!(points.len(), 2);
        assert!(points[1].entities > points[0].entities);
        for p in &points {
            assert!(p.train_ms > 0.0);
            assert!(p.diagnose_ms > 0.0);
            assert!(p.edges > p.entities, "relationship graphs are dense-ish");
        }
    }
}
