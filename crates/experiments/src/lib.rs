//! Experiment runners reproducing the Murphy paper's evaluation.
//!
//! One module per table/figure of §6, each with a scale-configurable
//! runner (tests and CI use reduced scenario counts and sample sizes; the
//! `repro` binary in `murphy-bench` runs paper-shaped defaults):
//!
//! * [`accuracy`] — top-K recall, precision, and the §6.1 relaxed
//!   variants; shared accumulators.
//! * [`schemes`] — uniform construction of the four diagnosis schemes.
//! * [`fig5`] — performance interference in microservices (Fig 5c/5d).
//! * [`table1`] — false positives on the 13 enterprise incidents.
//! * [`fig6`] — resource contention in microservices (Fig 6a/6b/6c).
//! * [`table2`] — robustness to degraded telemetry.
//! * [`fig7`] — microbenchmarks: no prior incidents, offline vs fresh
//!   training, training-length sweep.
//! * [`fig8a`] — metric-prediction model selection (MASE CDFs).
//! * [`fig8b`] — Gibbs-rounds ablation verifying cyclic effects.
//! * [`sensitivity`] — §6.8 sweeps (W, subgraph slack, model family).
//! * [`perf`] — §6.7 runtime-vs-scale measurements.
//! * [`report`] — plain-text rendering of tables and series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8a;
pub mod fig8b;
pub mod perf;
pub mod report;
pub mod sensitivity;
pub mod schemes;
pub mod table1;
pub mod table2;

pub use accuracy::{precision, relaxed_precision, top_k_hit, AccuracyAccumulator};
pub use schemes::{all_schemes, SchemeKind};
