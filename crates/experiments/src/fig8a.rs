//! Figure 8a: metric-prediction model selection (§6.6.1).
//!
//! Using the (synthetic stand-in for the) large metrics dataset — ~17K
//! entities across 300 production applications — fit each of the four
//! candidate factor families to every entity's primary metric from its
//! neighbors' metrics, predict a held-out suffix, and report the CDF of
//! MASE across entities. The paper finds ridge regression best and the
//! small neural networks worst (too few training points).

use murphy_core::MurphyConfig;
use murphy_graph::{build_from_seeds, BuildOptions};
use murphy_learn::{select_top_features, ModelKind, TrainedModel};
use murphy_sim::enterprise::{generate, EnterpriseConfig};
use murphy_stats::{mase, Ecdf};
use murphy_telemetry::{MetricId, MonitoringDb};
use serde::{Deserialize, Serialize};

/// Configuration for the Figure 8a study.
#[derive(Debug, Clone, Copy)]
pub struct Fig8aConfig {
    /// The enterprise to generate.
    pub enterprise: EnterpriseConfig,
    /// Fraction of the trace used for training (rest is evaluated).
    pub train_fraction: f64,
    /// Feature budget per model.
    pub feature_budget: usize,
    /// Cap on evaluated entities (0 = all). Keeps test runtime sane.
    pub max_entities: usize,
}

impl Fig8aConfig {
    /// Paper-shaped defaults (~17K entities — slow; the repro binary
    /// exposes a scale knob).
    pub fn paper() -> Self {
        Self {
            enterprise: EnterpriseConfig::paper_scale(8),
            train_fraction: 0.8,
            feature_budget: MurphyConfig::paper().feature_budget,
            max_entities: 0,
        }
    }

    /// Reduced scale for tests/CI.
    pub fn fast() -> Self {
        Self {
            enterprise: EnterpriseConfig::small(8),
            train_fraction: 0.8,
            feature_budget: 10,
            max_entities: 60,
        }
    }
}

/// Results: per-model MASE samples and their CDFs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8aResults {
    /// `(model, MASE per evaluated entity)`.
    pub per_model: Vec<(ModelKind, Vec<f64>)>,
    /// Number of evaluated entities.
    pub entities: usize,
}

impl Fig8aResults {
    /// Empirical CDF for one model.
    pub fn cdf(&self, model: ModelKind) -> Ecdf {
        Ecdf::new(
            &self
                .per_model
                .iter()
                .find(|(m, _)| *m == model)
                .expect("model present")
                .1,
        )
    }

    /// Median MASE per model (lower is better).
    pub fn medians(&self) -> Vec<(ModelKind, f64)> {
        self.per_model
            .iter()
            .map(|(m, errs)| (*m, Ecdf::new(errs).median().unwrap_or(f64::NAN)))
            .collect()
    }
}

/// One entity's prediction task: target series + neighbor feature rows.
struct PredictionTask {
    train_rows: Vec<Vec<f64>>,
    train_y: Vec<f64>,
    test_rows: Vec<Vec<f64>>,
    test_y: Vec<f64>,
}

fn task_for_entity(
    db: &MonitoringDb,
    entity: murphy_telemetry::EntityId,
    train_fraction: f64,
    feature_budget: usize,
) -> Option<PredictionTask> {
    let metrics = db.metrics_of(entity);
    let target_kind = *metrics.first()?;
    let target_id = MetricId::new(entity, target_kind);
    let series = db.series(target_id)?;
    let total = series.len();
    if total < 40 {
        return None;
    }
    let split = ((total as f64) * train_fraction) as u64;
    let y_all = series.window(0, total as u64, target_kind.default_value());

    // Neighbor metrics as candidate features.
    let mut feature_ids: Vec<MetricId> = Vec::new();
    for n in db.neighbors(entity) {
        for kind in db.metrics_of(n) {
            feature_ids.push(MetricId::new(n, kind));
        }
    }
    if feature_ids.is_empty() {
        return None;
    }
    let columns: Vec<Vec<f64>> = feature_ids
        .iter()
        .map(|&m| {
            db.series(m)
                .map(|s| s.window(0, total as u64, m.kind.default_value()))
                .unwrap_or_else(|| vec![m.kind.default_value(); total])
        })
        .collect();
    let train_y: Vec<f64> = y_all[..split as usize].to_vec();
    let train_cols: Vec<Vec<f64>> = columns.iter().map(|c| c[..split as usize].to_vec()).collect();
    let chosen = select_top_features(&train_cols, &train_y, feature_budget);
    if chosen.is_empty() {
        return None;
    }
    let row = |t: usize| -> Vec<f64> { chosen.iter().map(|&c| columns[c][t]).collect() };
    Some(PredictionTask {
        train_rows: (0..split as usize).map(row).collect(),
        train_y,
        test_rows: (split as usize..total).map(row).collect(),
        test_y: y_all[split as usize..].to_vec(),
    })
}

/// Run the model-selection study.
pub fn run(config: &Fig8aConfig) -> Fig8aResults {
    let enterprise = generate(&config.enterprise);
    let db = &enterprise.db;
    // Evaluate every entity that has metrics and neighbors; graph just to
    // mirror the paper's "entities of the monitored estate".
    let _ = build_from_seeds(db, &[], BuildOptions::default());
    let mut entities: Vec<murphy_telemetry::EntityId> =
        db.entities().map(|e| e.id).collect();
    if config.max_entities > 0 {
        entities.truncate(config.max_entities);
    }

    let mut per_model: Vec<(ModelKind, Vec<f64>)> =
        ModelKind::ALL.iter().map(|&m| (m, Vec::new())).collect();
    let mut evaluated = 0usize;
    for &entity in &entities {
        let Some(task) = task_for_entity(db, entity, config.train_fraction, config.feature_budget)
        else {
            continue;
        };
        evaluated += 1;
        for (model_kind, errors) in per_model.iter_mut() {
            let err = match TrainedModel::fit(*model_kind, &task.train_rows, &task.train_y, entity.0 as u64) {
                Ok(model) => {
                    let preds: Vec<f64> =
                        task.test_rows.iter().map(|r| model.predict(r)).collect();
                    mase(&preds, &task.test_y, &task.train_y)
                }
                Err(_) => f64::INFINITY,
            };
            if err.is_finite() {
                errors.push(err);
            }
        }
    }

    Fig8aResults {
        per_model,
        entities: evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_wins_the_model_selection() {
        let results = run(&Fig8aConfig::fast());
        assert!(results.entities >= 20, "evaluated {}", results.entities);
        let medians = results.medians();
        let median_of = |m: ModelKind| {
            medians
                .iter()
                .find(|(k, _)| *k == m)
                .map(|(_, v)| *v)
                .unwrap()
        };
        let ridge = median_of(ModelKind::Ridge);
        // Fig 8a shape: ridge is the best (lowest median error); the
        // small MLP struggles on few training points.
        assert!(ridge.is_finite());
        assert!(
            ridge <= median_of(ModelKind::Mlp) * 1.3,
            "ridge {ridge} vs mlp {}",
            median_of(ModelKind::Mlp)
        );
        assert!(
            ridge <= median_of(ModelKind::Gmm) * 1.3,
            "ridge {ridge} vs gmm {}",
            median_of(ModelKind::Gmm)
        );
    }

    #[test]
    fn cdfs_are_well_formed() {
        let results = run(&Fig8aConfig {
            max_entities: 30,
            ..Fig8aConfig::fast()
        });
        for kind in ModelKind::ALL {
            let cdf = results.cdf(kind);
            assert!(!cdf.is_empty(), "{kind}: empty CDF");
            // CDF reaches 1.0 at its max.
            let (_, max) = cdf.range().unwrap();
            assert_eq!(cdf.eval(max), 1.0);
        }
    }
}
