//! Figure 6: resource contention in microservices (§6.3).
//!
//! stress-ng-style CPU/memory/disk faults on randomly chosen containers
//! of the two DeathStarBench apps, with up to 14 short prior incidents in
//! the training window for realism. These scenarios are *acyclic* (known
//! causal direction everywhere) — the environment Sage was designed for —
//! so all four schemes run on the same directed input. Outputs:
//!
//! * Fig 6a — a sample latency trace (prior incidents + main incident),
//! * Fig 6b — top-K recall on social-network,
//! * Fig 6c — top-K recall on hotel-reservation.

use crate::accuracy::AccuracyAccumulator;
use crate::schemes::SchemeKind;
use murphy_baselines::{DiagnosisScheme, SchemeContext};
use murphy_core::MurphyConfig;
use murphy_graph::prune_candidates;
use murphy_sim::faults::FaultKind;
use murphy_sim::scenario::{FaultPlan, Scenario, ScenarioBuilder};
use serde::{Deserialize, Serialize};

/// Which app to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum App {
    /// hotel-reservation (Fig 6c).
    HotelReservation,
    /// social-network (Fig 6b).
    SocialNetwork,
}

impl App {
    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            App::HotelReservation => "hotel-reservation",
            App::SocialNetwork => "social-network",
        }
    }
}

/// Configuration for the Figure 6 run.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Config {
    /// Scenarios per app (paper: >200 across both apps).
    pub scenarios: usize,
    /// Maximum prior incidents per scenario (paper: up to 14).
    pub max_prior_incidents: usize,
    /// Training-window ticks.
    pub n_train: usize,
    /// Trace length per scenario.
    pub ticks: u64,
    /// Murphy engine configuration.
    pub murphy: MurphyConfig,
}

impl Fig6Config {
    /// Paper-shaped defaults (100 scenarios per app ≈ >200 total).
    pub fn paper() -> Self {
        Self {
            scenarios: 100,
            max_prior_incidents: 14,
            n_train: 300,
            ticks: 360,
            murphy: MurphyConfig::paper(),
        }
    }

    /// Reduced scale for tests/CI.
    pub fn fast() -> Self {
        Self {
            scenarios: 4,
            max_prior_incidents: 4,
            n_train: 150,
            ticks: 240,
            murphy: MurphyConfig::fast(),
        }
    }
}

/// Per-scheme results for one app.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Results {
    /// The app evaluated.
    pub app: App,
    /// `(scheme, accumulator)` in legend order.
    pub per_scheme: Vec<(SchemeKind, AccuracyAccumulator)>,
}

impl Fig6Results {
    /// Accumulator for one scheme.
    pub fn of(&self, kind: SchemeKind) -> &AccuracyAccumulator {
        &self
            .per_scheme
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("scheme present")
            .1
    }
}

/// Build one contention scenario (public for the examples and Fig 7).
pub fn contention_scenario(
    app: App,
    seed: u64,
    ticks: u64,
    prior_incidents: usize,
) -> Scenario {
    let kind = FaultKind::ALL[(seed % 3) as usize];
    let intensity = 1.0 + 0.1 * ((seed / 3) % 5) as f64;
    let builder = match app {
        App::HotelReservation => ScenarioBuilder::hotel_reservation(seed),
        App::SocialNetwork => ScenarioBuilder::social_network(seed),
    };
    builder
        .with_fault(FaultPlan::contention(kind, intensity))
        .with_prior_incidents(prior_incidents)
        .with_ticks(ticks)
        .with_causal_edges(true)
        .build()
}

/// Run the Figure 6b/6c experiment for one app.
pub fn run(app: App, config: &Fig6Config) -> Fig6Results {
    let mut accs: Vec<(SchemeKind, AccuracyAccumulator)> = SchemeKind::ALL
        .iter()
        .map(|&k| (k, AccuracyAccumulator::new(10)))
        .collect();

    for v in 0..config.scenarios {
        let seed = 2000 + v as u64;
        let priors = (seed % (config.max_prior_incidents as u64 + 1)) as usize;
        let scenario = contention_scenario(app, seed, config.ticks, priors);
        let candidates =
            prune_candidates(&scenario.db, &scenario.graph, scenario.symptom.entity, 1.0);
        let ctx = SchemeContext {
            db: &scenario.db,
            graph: &scenario.graph,
            symptom: scenario.symptom,
            candidates: &candidates,
            n_train: config.n_train,
        };
        for (kind, acc) in accs.iter_mut() {
            let scheme: Box<dyn DiagnosisScheme> = kind.build(config.murphy);
            let ranked = scheme.diagnose(&ctx);
            acc.record(&ranked, &scenario.ground_truth, &scenario.relaxed_truth);
        }
    }
    Fig6Results {
        app,
        per_scheme: accs,
    }
}

/// Figure 6a: a sample latency trace with prior incidents, as
/// `(time_seconds, latency_ms)` pairs of the symptom entity.
pub fn sample_trace(seed: u64, ticks: u64, prior_incidents: usize) -> Vec<(f64, f64)> {
    let scenario = contention_scenario(App::SocialNetwork, seed, ticks, prior_incidents);
    let series = scenario
        .db
        .series(scenario.symptom.metric_id())
        .expect("symptom series exists");
    let interval = scenario.db.interval_secs as f64;
    series
        .values()
        .iter()
        .enumerate()
        .filter(|(_, v)| v.is_finite())
        .map(|(i, &v)| (i as f64 * interval, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn murphy_and_sage_both_work_on_acyclic_input() {
        let results = run(App::HotelReservation, &Fig6Config {
            scenarios: 3,
            ..Fig6Config::fast()
        });
        let murphy = results.of(SchemeKind::Murphy);
        let sage = results.of(SchemeKind::Sage);
        // Fig 6 shape: both handle the DAG environment; Murphy ≥ Sage.
        assert!(murphy.recall_at(5) >= 0.66, "Murphy = {}", murphy.recall_at(5));
        assert!(sage.recall_at(5) > 0.0, "Sage must work here");
        assert!(murphy.recall_at(5) >= sage.recall_at(5) - 1e-9);
    }

    #[test]
    fn social_network_scenarios_diagnose() {
        let results = run(App::SocialNetwork, &Fig6Config {
            scenarios: 2,
            ..Fig6Config::fast()
        });
        assert!(results.of(SchemeKind::Murphy).recall_at(5) > 0.0);
    }

    #[test]
    fn sample_trace_shows_the_incident() {
        let trace = sample_trace(3, 240, 4);
        assert_eq!(trace.len(), 240);
        // Latency during the incident tail is clearly above the early
        // baseline.
        let early: f64 = trace[10..40].iter().map(|p| p.1).sum::<f64>() / 30.0;
        let late: f64 = trace[230..].iter().map(|p| p.1).sum::<f64>() / 10.0;
        assert!(late > early * 1.3, "early {early}, late {late}");
        // Time axis uses the 10 s interval.
        assert_eq!(trace[1].0, 10.0);
    }
}
