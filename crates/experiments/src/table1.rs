//! Table 1: false positives on the 13 enterprise incidents (§6.2).
//!
//! Each scheme diagnoses every incident; we count false positives —
//! reported entities that are not in the operator-decided ground truth.
//! Per the paper's methodology, scheme parameters are first *calibrated*
//! on the two full-certainty incidents (2 and 13): each scheme's
//! reporting threshold is loosened just enough to keep recall = 1 there,
//! then frozen for the full run.

use crate::schemes::SchemeKind;
use murphy_baselines::{DiagnosisScheme, ExplainIt, MurphyScheme, NetMedic, SchemeContext};
use murphy_core::MurphyConfig;
use murphy_graph::prune_candidates;
use murphy_sim::incidents::{build_incident, IncidentSpec, TABLE1};
use murphy_sim::scenario::Scenario;
use serde::{Deserialize, Serialize};

/// Configuration for the Table 1 run.
#[derive(Debug, Clone, Copy)]
pub struct Table1Config {
    /// Training-window ticks.
    pub n_train: usize,
    /// Scenario seed.
    pub seed: u64,
    /// Murphy engine configuration.
    pub murphy: MurphyConfig,
}

impl Table1Config {
    /// Paper-shaped defaults.
    pub fn paper() -> Self {
        Self {
            n_train: 200,
            seed: 42,
            murphy: MurphyConfig::paper(),
        }
    }

    /// Reduced scale for tests/CI.
    pub fn fast() -> Self {
        let mut murphy = MurphyConfig::fast().with_num_samples(200);
        murphy.max_candidates = 24;
        Self {
            n_train: 150,
            seed: 42,
            murphy,
        }
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Incident id (1-based) and description.
    pub id: usize,
    /// Paper description of the observed problem.
    pub description: String,
    /// False positives per scheme: Murphy, NetMedic, ExplainIt.
    pub fps: [usize; 3],
    /// Whether each scheme recalled the ground truth at all.
    pub recalled: [bool; 3],
}

/// Full Table 1 results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Results {
    /// Per-incident rows.
    pub rows: Vec<Table1Row>,
}

impl Table1Results {
    /// Average false positives per scheme (the table's last row).
    pub fn average_fps(&self) -> [f64; 3] {
        let n = self.rows.len().max(1) as f64;
        let mut out = [0.0; 3];
        for row in &self.rows {
            for i in 0..3 {
                out[i] += row.fps[i] as f64;
            }
        }
        for v in &mut out {
            *v /= n;
        }
        out
    }

    /// Overall recall per scheme across incidents.
    pub fn recall(&self) -> [f64; 3] {
        let n = self.rows.len().max(1) as f64;
        let mut out = [0.0; 3];
        for row in &self.rows {
            for i in 0..3 {
                if row.recalled[i] {
                    out[i] += 1.0;
                }
            }
        }
        for v in &mut out {
            *v /= n;
        }
        out
    }
}

fn diagnose(scheme: &dyn DiagnosisScheme, s: &Scenario, n_train: usize) -> Vec<murphy_telemetry::EntityId> {
    let candidates = prune_candidates(&s.db, &s.graph, s.symptom.entity, 1.0);
    let ctx = SchemeContext {
        db: &s.db,
        graph: &s.graph,
        symptom: s.symptom,
        candidates: &candidates,
        n_train,
    };
    scheme.diagnose(&ctx)
}

/// Calibrate a baseline's threshold on the calibration incidents: pick the
/// largest threshold from `grid` (descending) that keeps the ground truth
/// in the output for *all* calibration scenarios; fall back to the loosest.
fn calibrate<F>(build: F, grid: &[f64], calibration: &[(IncidentSpec, Scenario)], n_train: usize) -> f64
where
    F: Fn(f64) -> Box<dyn DiagnosisScheme>,
{
    for &threshold in grid {
        let scheme = build(threshold);
        let ok = calibration.iter().all(|(_, s)| {
            let ranked = diagnose(scheme.as_ref(), s, n_train);
            s.ground_truth.iter().all(|t| ranked.contains(t))
        });
        if ok {
            return threshold;
        }
    }
    *grid.last().unwrap_or(&0.0)
}

/// Run Table 1: calibrate on incidents 2 and 13, then evaluate all 13.
pub fn run(config: &Table1Config) -> Table1Results {
    let scenarios: Vec<(IncidentSpec, Scenario)> = TABLE1
        .iter()
        .map(|&spec| (spec, build_incident(spec, config.seed)))
        .collect();

    // Calibration incidents: ids 2 and 13 (full ground-truth certainty).
    // A calibration incident is only usable when its ground truth is in
    // the shared candidate space at all — incident 13's root cause is the
    // observed entity itself, which no scheme can report (the candidate
    // BFS never returns the symptom entity), so requiring recall there
    // would push every threshold to "report everything".
    let calibration: Vec<(IncidentSpec, Scenario)> = scenarios
        .iter()
        .filter(|(spec, _)| spec.id == 2 || spec.id == 13)
        .filter(|(_, s)| {
            let candidates = prune_candidates(&s.db, &s.graph, s.symptom.entity, 1.0);
            s.ground_truth.iter().all(|t| candidates.contains(t))
        })
        .map(|(spec, s)| (*spec, s.clone()))
        .collect();

    let explainit_threshold = calibrate(
        |t| Box::new(ExplainIt::with_threshold(t)),
        &[0.9, 0.8, 0.7, 0.6, 0.5, 0.3, 0.0],
        &calibration,
        config.n_train,
    );
    let netmedic_threshold = calibrate(
        |t| Box::new(NetMedic::with_min_score(t)),
        &[0.8, 0.6, 0.4, 0.2, 0.1, 0.0],
        &calibration,
        config.n_train,
    );

    let murphy = MurphyScheme::new(config.murphy);
    let netmedic = NetMedic::with_min_score(netmedic_threshold);
    let explainit = ExplainIt::with_threshold(explainit_threshold);
    let schemes: [&dyn DiagnosisScheme; 3] = [&murphy, &netmedic, &explainit];

    let rows = scenarios
        .iter()
        .map(|(spec, s)| {
            let mut fps = [0usize; 3];
            let mut recalled = [false; 3];
            for (i, scheme) in schemes.iter().enumerate() {
                let ranked = diagnose(*scheme, s, config.n_train);
                fps[i] = ranked
                    .iter()
                    .filter(|e| !s.ground_truth.contains(e))
                    .count();
                recalled[i] = s.ground_truth.iter().any(|t| ranked.contains(t));
            }
            Table1Row {
                id: spec.id,
                description: spec.description.to_string(),
                fps,
                recalled,
            }
        })
        .collect();

    Table1Results { rows }
}

/// The Table 1 scheme order for reporting.
pub const SCHEME_ORDER: [SchemeKind; 3] = [
    SchemeKind::Murphy,
    SchemeKind::NetMedic,
    SchemeKind::ExplainIt,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn murphy_produces_fewest_false_positives() {
        let results = run(&Table1Config::fast());
        assert_eq!(results.rows.len(), 13);
        let [murphy_fp, netmedic_fp, explainit_fp] = results.average_fps();
        // The headline of Table 1: Murphy ≪ NetMedic, ExplainIt.
        assert!(
            murphy_fp < netmedic_fp,
            "Murphy {murphy_fp} vs NetMedic {netmedic_fp}"
        );
        assert!(
            murphy_fp < explainit_fp,
            "Murphy {murphy_fp} vs ExplainIT {explainit_fp}"
        );
        // Comparable recall: Murphy's recall is at least in the same band
        // (the paper calibrates all schemes to recall ≈ 0.53–0.56).
        let recalls = results.recall();
        assert!(recalls[0] >= 0.4, "Murphy recall = {}", recalls[0]);
    }

    #[test]
    fn rows_carry_descriptions_in_order() {
        let results = run(&Table1Config::fast());
        assert_eq!(results.rows[0].id, 1);
        assert_eq!(results.rows[12].id, 13);
        assert!(results.rows[1].description.contains("502"));
    }
}
