//! Accuracy metrics (§6 "Measuring accuracy").
//!
//! * **Top-K accuracy / recall**: the fraction of scenarios where the
//!   true root cause appears in the first K candidates (paper default
//!   K = 5).
//! * **Precision**: `1/r` when the true root cause is the r-th candidate,
//!   0 when absent — "the operator will start at the top of the list and
//!   will have to check r suggestions".
//! * **Relaxed variants** (§6.1): the same, but any entity of the relaxed
//!   set (true root cause ∪ common services/containers) counts as a hit.

use murphy_telemetry::EntityId;
use serde::{Deserialize, Serialize};

/// True when any ground-truth entity appears in the first `k` candidates.
pub fn top_k_hit(ranked: &[EntityId], truth: &[EntityId], k: usize) -> bool {
    ranked.iter().take(k).any(|e| truth.contains(e))
}

/// Precision: `1/r` with `r` the 1-based rank of the first ground-truth
/// hit; 0.0 when no hit.
pub fn precision(ranked: &[EntityId], truth: &[EntityId]) -> f64 {
    match ranked.iter().position(|e| truth.contains(e)) {
        Some(idx) => 1.0 / (idx + 1) as f64,
        None => 0.0,
    }
}

/// Relaxed precision: `1/r` with `r` the rank of the first entity in the
/// relaxed set — "inversely proportional to the number of false positives
/// seen by the operator before one of the relaxed root causes".
pub fn relaxed_precision(ranked: &[EntityId], relaxed: &[EntityId]) -> f64 {
    precision(ranked, relaxed)
}

/// Accumulates accuracy over scenarios for one scheme.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AccuracyAccumulator {
    /// Scenario count.
    pub scenarios: usize,
    /// Hits within each K of interest (indexed by K).
    hits_at: Vec<usize>,
    /// Sum of per-scenario precisions.
    precision_sum: f64,
    /// Relaxed hits at K = 5.
    relaxed_hits: usize,
    /// Sum of relaxed precisions.
    relaxed_precision_sum: f64,
}

impl AccuracyAccumulator {
    /// New accumulator tracking K = 1..=max_k.
    pub fn new(max_k: usize) -> Self {
        Self {
            hits_at: vec![0; max_k + 1],
            ..Default::default()
        }
    }

    /// Record one scenario's ranking.
    pub fn record(&mut self, ranked: &[EntityId], truth: &[EntityId], relaxed: &[EntityId]) {
        self.scenarios += 1;
        for k in 1..self.hits_at.len() {
            if top_k_hit(ranked, truth, k) {
                self.hits_at[k] += 1;
            }
        }
        self.precision_sum += precision(ranked, truth);
        let relaxed_set: Vec<EntityId> = if relaxed.is_empty() {
            truth.to_vec()
        } else {
            relaxed.to_vec()
        };
        if top_k_hit(ranked, &relaxed_set, 5) {
            self.relaxed_hits += 1;
        }
        self.relaxed_precision_sum += relaxed_precision(ranked, &relaxed_set);
    }

    /// Recall at K.
    pub fn recall_at(&self, k: usize) -> f64 {
        if self.scenarios == 0 {
            return 0.0;
        }
        let k = k.min(self.hits_at.len() - 1);
        self.hits_at[k] as f64 / self.scenarios as f64
    }

    /// Mean precision.
    pub fn precision(&self) -> f64 {
        if self.scenarios == 0 {
            0.0
        } else {
            self.precision_sum / self.scenarios as f64
        }
    }

    /// Relaxed recall at K = 5.
    pub fn relaxed_recall(&self) -> f64 {
        if self.scenarios == 0 {
            0.0
        } else {
            self.relaxed_hits as f64 / self.scenarios as f64
        }
    }

    /// Mean relaxed precision.
    pub fn relaxed_precision(&self) -> f64 {
        if self.scenarios == 0 {
            0.0
        } else {
            self.relaxed_precision_sum / self.scenarios as f64
        }
    }

    /// The top-K recall curve for K = 1..=max_k (the Fig 5c/6b/6c series).
    pub fn recall_curve(&self) -> Vec<(usize, f64)> {
        (1..self.hits_at.len()).map(|k| (k, self.recall_at(k))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(n: u32) -> EntityId {
        EntityId(n)
    }

    #[test]
    fn top_k_hit_respects_k() {
        let ranked = [e(3), e(1), e(2)];
        assert!(!top_k_hit(&ranked, &[e(1)], 1));
        assert!(top_k_hit(&ranked, &[e(1)], 2));
        assert!(top_k_hit(&ranked, &[e(3)], 1));
        assert!(!top_k_hit(&ranked, &[e(9)], 10));
        assert!(!top_k_hit(&[], &[e(1)], 5));
    }

    #[test]
    fn precision_is_reciprocal_rank() {
        let ranked = [e(5), e(6), e(7)];
        assert_eq!(precision(&ranked, &[e(5)]), 1.0);
        assert_eq!(precision(&ranked, &[e(6)]), 0.5);
        assert_eq!(precision(&ranked, &[e(7)]), 1.0 / 3.0);
        assert_eq!(precision(&ranked, &[e(9)]), 0.0);
    }

    #[test]
    fn accumulator_aggregates() {
        let mut acc = AccuracyAccumulator::new(5);
        // Scenario 1: truth at rank 1.
        acc.record(&[e(1), e(2)], &[e(1)], &[]);
        // Scenario 2: truth at rank 3.
        acc.record(&[e(9), e(8), e(1)], &[e(1)], &[]);
        // Scenario 3: miss.
        acc.record(&[e(9)], &[e(1)], &[]);
        assert_eq!(acc.scenarios, 3);
        assert!((acc.recall_at(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((acc.recall_at(3) - 2.0 / 3.0).abs() < 1e-12);
        assert!((acc.recall_at(5) - 2.0 / 3.0).abs() < 1e-12);
        let expected_p = (1.0 + 1.0 / 3.0 + 0.0) / 3.0;
        assert!((acc.precision() - expected_p).abs() < 1e-12);
    }

    #[test]
    fn relaxed_uses_wider_set() {
        let mut acc = AccuracyAccumulator::new(5);
        // Miss on strict truth, hit on a relaxed entity at rank 2.
        acc.record(&[e(9), e(4)], &[e(1)], &[e(1), e(4)]);
        assert_eq!(acc.recall_at(5), 0.0);
        assert_eq!(acc.relaxed_recall(), 1.0);
        assert!((acc.relaxed_precision() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_relaxed_falls_back_to_truth() {
        let mut acc = AccuracyAccumulator::new(5);
        acc.record(&[e(1)], &[e(1)], &[]);
        assert_eq!(acc.relaxed_recall(), 1.0);
    }

    #[test]
    fn recall_curve_is_monotone() {
        let mut acc = AccuracyAccumulator::new(8);
        acc.record(&[e(9), e(1)], &[e(1)], &[]);
        acc.record(&[e(1)], &[e(1)], &[]);
        acc.record(&(0..8).map(e).collect::<Vec<_>>(), &[e(7)], &[]);
        let curve = acc.recall_curve();
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(curve.len(), 8);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let acc = AccuracyAccumulator::new(5);
        assert_eq!(acc.recall_at(5), 0.0);
        assert_eq!(acc.precision(), 0.0);
        assert_eq!(acc.relaxed_recall(), 0.0);
    }
}
