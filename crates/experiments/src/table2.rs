//! Table 2: robustness to degraded/incomplete telemetry (§6.4).
//!
//! The §6.3 contention setup (acyclic, so Sage participates) with the
//! monitoring data corrupted four ways before diagnosis: missing
//! historical values for 25% of entities, a missing association, a
//! missing entity, and a missing metric on the root-cause entity.
//! Reported numbers are recall@5 per scheme per degradation, plus the
//! aggregate and the unchanged-input reference column.

use crate::accuracy::AccuracyAccumulator;
use crate::fig6::{contention_scenario, App};
use crate::schemes::SchemeKind;
use murphy_baselines::{DiagnosisScheme, SchemeContext};
use murphy_core::MurphyConfig;
use murphy_graph::{build_from_seeds, prune_candidates, BuildOptions};
use murphy_sim::scenario::Scenario;
use murphy_telemetry::degrade::{apply, DegradeContext, Degradation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration for the Table 2 run.
#[derive(Debug, Clone, Copy)]
pub struct Table2Config {
    /// Scenarios per degradation column.
    pub scenarios: usize,
    /// Training-window ticks.
    pub n_train: usize,
    /// Trace length.
    pub ticks: u64,
    /// Murphy engine configuration.
    pub murphy: MurphyConfig,
}

impl Table2Config {
    /// Paper-shaped defaults.
    pub fn paper() -> Self {
        Self {
            scenarios: 50,
            n_train: 300,
            ticks: 360,
            murphy: MurphyConfig::paper(),
        }
    }

    /// Reduced scale for tests/CI.
    pub fn fast() -> Self {
        Self {
            scenarios: 3,
            n_train: 150,
            ticks: 240,
            murphy: MurphyConfig::fast(),
        }
    }
}

/// Results: recall@5 per scheme per column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Results {
    /// Column labels (4 degradations + "Unchanged input").
    pub columns: Vec<String>,
    /// `(scheme, recall@5 per column)`.
    pub per_scheme: Vec<(SchemeKind, Vec<f64>)>,
}

impl Table2Results {
    /// Recall row for one scheme.
    pub fn of(&self, kind: SchemeKind) -> &[f64] {
        &self
            .per_scheme
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("scheme present")
            .1
    }

    /// Aggregate (mean over the 4 degradations) per scheme.
    pub fn aggregate(&self, kind: SchemeKind) -> f64 {
        let row = self.of(kind);
        row[..4].iter().sum::<f64>() / 4.0
    }
}

/// Apply one degradation to a scenario, rebuilding the graph afterwards
/// (a missing entity/edge changes reachable structure).
fn degrade_scenario(s: &Scenario, degradation: Degradation, seed: u64) -> Scenario {
    let mut out = s.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let ctx = DegradeContext {
        symptom_entity: s.symptom.entity,
        root_cause_entity: s.ground_truth[0],
        incident_start_tick: s.incident_start_tick,
    };
    apply(&mut out.db, degradation, ctx, &mut rng);
    out.graph = build_from_seeds(&out.db, &[out.symptom.entity], BuildOptions::default());
    out
}

/// Run Table 2.
pub fn run(config: &Table2Config) -> Table2Results {
    let mut columns: Vec<String> = Degradation::TABLE2
        .iter()
        .map(|d| d.label().to_string())
        .collect();
    columns.push("Unchanged input".to_string());

    let mut per_scheme: Vec<(SchemeKind, Vec<f64>)> = SchemeKind::ALL
        .iter()
        .map(|&k| (k, Vec::new()))
        .collect();

    // Degradation columns then the unchanged reference.
    let mut runs: Vec<Option<Degradation>> =
        Degradation::TABLE2.iter().map(|&d| Some(d)).collect();
    runs.push(None);

    for (col, degradation) in runs.into_iter().enumerate() {
        let mut accs: Vec<AccuracyAccumulator> = SchemeKind::ALL
            .iter()
            .map(|_| AccuracyAccumulator::new(5))
            .collect();
        for v in 0..config.scenarios {
            let seed = 3000 + v as u64;
            // social-network: the larger topology (57 entities) gives the
            // degradations room to differentiate the schemes.
            let base = contention_scenario(App::SocialNetwork, seed, config.ticks, 2);
            let scenario = match degradation {
                Some(d) => degrade_scenario(&base, d, seed ^ (col as u64) << 16),
                None => base,
            };
            let candidates =
                prune_candidates(&scenario.db, &scenario.graph, scenario.symptom.entity, 1.0);
            let ctx = SchemeContext {
                db: &scenario.db,
                graph: &scenario.graph,
                symptom: scenario.symptom,
                candidates: &candidates,
                n_train: config.n_train,
            };
            for (i, kind) in SchemeKind::ALL.iter().enumerate() {
                let scheme: Box<dyn DiagnosisScheme> = kind.build(config.murphy);
                let ranked = scheme.diagnose(&ctx);
                accs[i].record(&ranked, &scenario.ground_truth, &scenario.relaxed_truth);
            }
        }
        for (i, (_, row)) in per_scheme.iter_mut().enumerate() {
            row.push(accs[i].recall_at(5));
        }
    }

    Table2Results {
        columns,
        per_scheme,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn murphy_stays_robust_under_degradation() {
        let results = run(&Table2Config::fast());
        assert_eq!(results.columns.len(), 5);
        let murphy = results.of(SchemeKind::Murphy);
        assert_eq!(murphy.len(), 5);
        // Table 2 shape: Murphy's aggregate stays close to its unchanged
        // accuracy (the paper reports a 6-point loss).
        let unchanged = murphy[4];
        let aggregate = results.aggregate(SchemeKind::Murphy);
        assert!(unchanged > 0.5, "unchanged recall = {unchanged}");
        assert!(
            aggregate >= unchanged - 0.45,
            "aggregate {aggregate} vs unchanged {unchanged}"
        );
    }

    #[test]
    fn degradations_do_not_crash_any_scheme() {
        let results = run(&Table2Config {
            scenarios: 1,
            ..Table2Config::fast()
        });
        for (kind, row) in &results.per_scheme {
            assert_eq!(row.len(), 5, "{kind:?} missing columns");
            for &r in row {
                assert!((0.0..=1.0).contains(&r));
            }
        }
    }
}
