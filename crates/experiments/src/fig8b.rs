//! Figure 8b: verifying cyclic effects via Gibbs rounds (§6.6.2, A.2).
//!
//! The appendix experiment: pick applications with a backend ("SQL") VM
//! `Q`, find the flows `F` most correlated with `Q`, take two time points
//! `t1` and `t2` where `Q`'s metrics differ substantially, set the flows'
//! metrics to their `t2` values while everything else stays at `t1`, and
//! ask the resampling algorithm to predict `Q`'s metric. The prediction
//! is "correct" under the (Δ, ε) closeness criterion. Running more Gibbs
//! rounds propagates effects around cycles and raises the number of
//! correctly predicted scenarios — the paper's evidence that cyclic
//! effects are real in production.

use murphy_core::sampler::resample_subgraph;
use murphy_core::training::{train_mrf, TrainingWindow};
use murphy_core::MurphyConfig;
use murphy_graph::{build_from_seeds, BuildOptions, ShortestPathSubgraph};
use murphy_sim::enterprise::{generate, EnterpriseConfig};
use murphy_telemetry::{EntityId, MetricId, MetricKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration for the Figure 8b study.
#[derive(Debug, Clone, Copy)]
pub struct Fig8bConfig {
    /// The enterprise to generate (paper: 24 apps with a SQL backend).
    pub enterprise: EnterpriseConfig,
    /// Time-point pairs (t1, t2) evaluated per application.
    pub trials_per_app: usize,
    /// Flows to perturb per trial (paper: top 5 by correlation).
    pub flows_per_trial: usize,
    /// Gibbs round counts to compare (paper: 1, 2, 4, 8).
    pub rounds: [usize; 4],
    /// Multiplicative closeness bound Δ.
    pub delta: f64,
    /// Additive closeness bound ε (fraction of the metric's max).
    pub epsilon: f64,
    /// Murphy engine configuration (model family, feature budget).
    pub murphy: MurphyConfig,
}

impl Fig8bConfig {
    /// Paper-shaped defaults.
    pub fn paper() -> Self {
        Self {
            enterprise: EnterpriseConfig {
                num_apps: 24,
                ..EnterpriseConfig::small(11)
            },
            trials_per_app: 32,
            flows_per_trial: 5,
            rounds: [1, 2, 4, 8],
            delta: 2.0,
            epsilon: 0.1,
            murphy: MurphyConfig::paper(),
        }
    }

    /// Reduced scale for tests/CI.
    pub fn fast() -> Self {
        Self {
            enterprise: EnterpriseConfig {
                num_apps: 3,
                ..EnterpriseConfig::small(11)
            },
            trials_per_app: 6,
            flows_per_trial: 3,
            rounds: [1, 2, 4, 8],
            delta: 2.0,
            epsilon: 0.1,
            murphy: MurphyConfig::fast(),
        }
    }
}

/// Results: correctly predicted scenario counts per Gibbs round count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8bResults {
    /// `(gibbs_rounds, correct, total)` per configured round count.
    pub per_rounds: Vec<(usize, usize, usize)>,
}

impl Fig8bResults {
    /// Correct count for a round setting.
    pub fn correct(&self, rounds: usize) -> usize {
        self.per_rounds
            .iter()
            .find(|(r, _, _)| *r == rounds)
            .map(|(_, c, _)| *c)
            .unwrap_or(0)
    }
}

/// The (Δ, ε) closeness criterion of appendix A.2 on the predicted vs
/// actual *change* of the metric.
pub fn close_enough(predicted: f64, actual: f64, max_seen: f64, delta: f64, epsilon: f64) -> bool {
    if (predicted - actual).abs() < epsilon * max_seen.abs().max(1e-9) {
        return true;
    }
    if actual == 0.0 {
        return predicted == 0.0;
    }
    let ratio = predicted / actual;
    ratio > 1.0 / delta && ratio < delta
}

/// Run the cyclic-effects study.
pub fn run(config: &Fig8bConfig) -> Fig8bResults {
    let enterprise = generate(&config.enterprise);
    let db = &enterprise.db;
    let ticks = config.enterprise.ticks;
    let mut per_rounds: Vec<(usize, usize, usize)> =
        config.rounds.iter().map(|&r| (r, 0usize, 0usize)).collect();

    for app in &enterprise.apps {
        // Q: the app's backend (db-tier) VM.
        let Some(&q) = app.db.first() else { continue };
        let q_metric = MetricId::new(q, MetricKind::CpuUtil);
        let Some(q_series) = db.series(q_metric) else { continue };
        let q_vals = q_series.window(0, ticks, 0.0);
        let q_max = q_vals.iter().cloned().fold(0.0f64, f64::max);

        // F: top flows by |correlation| with Q.
        let mut flows: Vec<(EntityId, f64)> = app
            .flows
            .iter()
            .filter_map(|&f| {
                let s = db.series(MetricId::new(f, MetricKind::Throughput))?;
                let w = s.window(0, ticks, 0.0);
                Some((f, murphy_stats::pearson(&w, &q_vals).abs()))
            })
            .collect();
        flows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let flows: Vec<EntityId> = flows
            .into_iter()
            .take(config.flows_per_trial)
            .map(|(f, _)| f)
            .collect();
        if flows.is_empty() {
            continue;
        }

        // Graph + trained MRF for the app.
        let seeds = db.application_members(&app.name);
        let graph = build_from_seeds(db, &seeds, BuildOptions::four_hops());
        if !graph.contains(q) {
            continue;
        }
        let window = TrainingWindow { from: 0, to: ticks };
        let mrf = train_mrf(db, &graph, &config.murphy, window, ticks - 1);
        let Some(q_pos) = mrf.index.position(q_metric) else { continue };

        // Trials: pairs (t1, t2) with maximally different Q values.
        let mut rng = StdRng::seed_from_u64(config.murphy.seed ^ q.0 as u64);
        for trial in 0..config.trials_per_app {
            use rand::Rng;
            let t1 = rng.gen_range(0..ticks);
            // Find a t2 with a large |Q(t2) - Q(t1)| among a few probes.
            let t2 = (0..8)
                .map(|_| rng.gen_range(0..ticks))
                .max_by(|&a, &b| {
                    let da = (q_vals[a as usize] - q_vals[t1 as usize]).abs();
                    let db_ = (q_vals[b as usize] - q_vals[t1 as usize]).abs();
                    da.partial_cmp(&db_).unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(t1);
            if t1 == t2 {
                continue;
            }

            // State: everything at t1, flows at t2.
            let mut state: Vec<f64> = mrf
                .index
                .ids()
                .iter()
                .map(|&m| db.value_at(m, t1))
                .collect();
            for &f in &flows {
                for kind in db.metrics_of(f) {
                    if let Some(pos) = mrf.index.position(MetricId::new(f, kind)) {
                        state[pos] = db.value_at(MetricId::new(f, kind), t2);
                    }
                }
            }

            // Resample the union of shortest-path subgraphs flow → Q,
            // with the engine's slack/closure so multi-hop influence
            // (flow → VM → host → VM → Q) actually propagates.
            let flow_nodes: Vec<usize> =
                flows.iter().filter_map(|&f| graph.node(f)).collect();
            let subgraphs: Vec<ShortestPathSubgraph> = flows
                .iter()
                .filter_map(|&f| {
                    let mut sp = ShortestPathSubgraph::compute_with_slack(
                        &graph,
                        f,
                        q,
                        config.murphy.subgraph_slack,
                    )?;
                    // Every perturbed flow is pinned, exactly like the
                    // candidate A in diagnosis: resampling one would drag
                    // its t2 value back toward t1.
                    sp.order.retain(|idx| !flow_nodes.contains(idx));
                    Some(sp)
                })
                .collect();
            if subgraphs.is_empty() {
                continue;
            }

            let actual_change = q_vals[t2 as usize] - q_vals[t1 as usize];
            for (rounds, correct, total) in per_rounds.iter_mut() {
                let mut s = state.clone();
                let mut trial_rng =
                    StdRng::seed_from_u64((trial as u64) << 32 | *rounds as u64);
                for sp in &subgraphs {
                    resample_subgraph(&mrf, &graph, sp, &mut s, *rounds, &mut trial_rng);
                }
                let predicted_change = s[q_pos] - q_vals[t1 as usize];
                *total += 1;
                if close_enough(
                    predicted_change,
                    actual_change,
                    q_max,
                    config.delta,
                    config.epsilon,
                ) {
                    *correct += 1;
                }
            }
        }
    }
    Fig8bResults { per_rounds }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closeness_criterion() {
        // Additive tolerance.
        assert!(close_enough(10.0, 10.5, 100.0, 2.0, 0.1));
        // Multiplicative tolerance.
        assert!(close_enough(30.0, 50.0, 100.0, 2.0, 0.01));
        assert!(!close_enough(10.0, 50.0, 100.0, 2.0, 0.01));
        // Sign flips with large magnitude fail.
        assert!(!close_enough(-40.0, 40.0, 100.0, 2.0, 0.01));
        // Zero actual: small predictions pass via epsilon.
        assert!(close_enough(0.5, 0.0, 100.0, 2.0, 0.1));
    }

    #[test]
    fn more_rounds_do_not_hurt() {
        let results = run(&Fig8bConfig::fast());
        assert_eq!(results.per_rounds.len(), 4);
        let totals: Vec<usize> = results.per_rounds.iter().map(|&(_, _, t)| t).collect();
        assert!(totals[0] > 0, "no trials ran");
        // Every rounds setting evaluates the same trials.
        assert!(totals.windows(2).all(|w| w[0] == w[1]));
        // Fig 8b shape: accuracy at W=4 is at least accuracy at W=1 minus
        // sampling noise.
        let c1 = results.correct(1) as f64;
        let c4 = results.correct(4) as f64;
        assert!(
            c4 >= c1 - (totals[0] as f64) * 0.25,
            "W=4 ({c4}) collapsed vs W=1 ({c1})"
        );
    }
}
