//! Figure 5: performance interference in microservices (§6.1).
//!
//! Client A floods service 1, overwhelming downstream services it shares
//! with service 2; client B's latency on service 2 is the symptom, and the
//! true root cause is client A's RPS load. The paper runs 32 variants of
//! this on the hotel-reservation app and reports top-K recall (5c) and
//! precision/recall plus relaxed variants (5d).
//!
//! Sage methodology: the interference environment is cyclic, which Sage
//! cannot model. Per the paper, Sage instead "only models a single
//! user-facing service and its downstream services" — we give it exactly
//! that: a causal-DAG re-emulation of the same scenario (same seed) with
//! the symptom mapped onto the victim's entry service. The true root
//! cause (client A) is structurally outside that model, so Sage's strict
//! recall is 0 by construction; it can still reach the overwhelmed common
//! containers, giving it partial *relaxed* credit.

use crate::accuracy::AccuracyAccumulator;
use crate::schemes::SchemeKind;
use murphy_baselines::{DiagnosisScheme, SchemeContext};
use murphy_core::{MurphyConfig, Symptom};
use murphy_graph::prune_candidates;
use murphy_sim::scenario::{FaultPlan, Scenario, ScenarioBuilder};
use murphy_telemetry::{EntityKind, MetricKind};
use serde::{Deserialize, Serialize};

/// Configuration for the Figure 5 run.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Config {
    /// Number of interference variants (paper: 32).
    pub variants: usize,
    /// Training-window ticks.
    pub n_train: usize,
    /// Trace length per variant.
    pub ticks: u64,
    /// Murphy engine configuration.
    pub murphy: MurphyConfig,
}

impl Fig5Config {
    /// Paper-shaped defaults.
    pub fn paper() -> Self {
        Self {
            variants: 32,
            n_train: 300,
            ticks: 360,
            murphy: MurphyConfig::paper(),
        }
    }

    /// Reduced scale for tests/CI.
    pub fn fast() -> Self {
        Self {
            variants: 4,
            n_train: 150,
            ticks: 240,
            murphy: MurphyConfig::fast(),
        }
    }
}

/// Per-scheme results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Results {
    /// `(scheme, accumulator)` in legend order.
    pub per_scheme: Vec<(SchemeKind, AccuracyAccumulator)>,
}

impl Fig5Results {
    /// Accumulator for one scheme.
    pub fn of(&self, kind: SchemeKind) -> &AccuracyAccumulator {
        &self
            .per_scheme
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("scheme present")
            .1
    }
}

/// Build the interference scenario for one variant seed. Public so the
/// examples can replay a single variant.
pub fn interference_scenario(seed: u64, ticks: u64) -> Scenario {
    // Vary the flood intensity across variants (the paper varies RPS).
    let intensity = 0.8 + 0.05 * (seed % 16) as f64;
    ScenarioBuilder::hotel_reservation(seed)
        .with_fault(FaultPlan::interference(intensity))
        .with_ticks(ticks)
        .build()
}

/// The Sage view of the same variant: causal edges, symptom on the victim
/// entry service.
fn sage_view(seed: u64, ticks: u64) -> Scenario {
    let intensity = 0.8 + 0.05 * (seed % 16) as f64;
    let mut s = ScenarioBuilder::hotel_reservation(seed)
        .with_fault(FaultPlan::interference(intensity))
        .with_ticks(ticks)
        .with_causal_edges(true)
        .build();
    // Remap the symptom from client B to its entry service (the model
    // Sage is able to build).
    let entry = s
        .db
        .neighbors(s.symptom.entity)
        .into_iter()
        .find(|&e| s.db.entity(e).map(|x| x.kind) == Some(EntityKind::Service));
    if let Some(entry) = entry {
        s.symptom = Symptom::high(entry, MetricKind::Latency);
    }
    s
}

/// Run the Figure 5 experiment.
pub fn run(config: &Fig5Config) -> Fig5Results {
    let mut accs: Vec<(SchemeKind, AccuracyAccumulator)> = SchemeKind::ALL
        .iter()
        .map(|&k| (k, AccuracyAccumulator::new(10)))
        .collect();

    for v in 0..config.variants {
        let seed = 1000 + v as u64;
        let scenario = interference_scenario(seed, config.ticks);
        let sage_scenario = sage_view(seed, config.ticks);

        for (kind, acc) in accs.iter_mut() {
            let s = if *kind == SchemeKind::Sage {
                &sage_scenario
            } else {
                &scenario
            };
            let candidates = prune_candidates(&s.db, &s.graph, s.symptom.entity, 1.0);
            let ctx = SchemeContext {
                db: &s.db,
                graph: &s.graph,
                symptom: s.symptom,
                candidates: &candidates,
                n_train: config.n_train,
            };
            let scheme: Box<dyn DiagnosisScheme> = kind.build(config.murphy);
            let ranked = scheme.diagnose(&ctx);
            // Ground truth / relaxed sets come from the *primary* scenario
            // (entity ids are identical across the two emulations).
            acc.record(&ranked, &scenario.ground_truth, &scenario.relaxed_truth);
        }
    }
    Fig5Results { per_scheme: accs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn murphy_beats_baselines_on_interference() {
        let results = run(&Fig5Config {
            variants: 3,
            ..Fig5Config::fast()
        });
        let murphy = results.of(SchemeKind::Murphy);
        let sage = results.of(SchemeKind::Sage);
        // Headline shape of Fig 5c: Murphy finds the true root cause in
        // the top 5 most of the time; Sage never does (out of model).
        assert!(
            murphy.recall_at(5) >= 0.66,
            "Murphy recall@5 = {}",
            murphy.recall_at(5)
        );
        assert_eq!(sage.recall_at(10), 0.0, "Sage cannot see client A");
        assert!(murphy.recall_at(5) > results.of(SchemeKind::ExplainIt).recall_at(5) - 0.34);
    }

    #[test]
    fn relaxed_metrics_are_at_least_strict() {
        let results = run(&Fig5Config {
            variants: 2,
            ..Fig5Config::fast()
        });
        for (kind, acc) in &results.per_scheme {
            assert!(
                acc.relaxed_recall() >= acc.recall_at(5) - 1e-9,
                "{kind:?}: relaxed must dominate strict"
            );
        }
    }

    #[test]
    fn scenario_ids_match_between_views() {
        // The Sage view re-emulates with the same seed: entity ids of the
        // ground truth must coincide.
        let a = interference_scenario(1001, 240);
        let b = sage_view(1001, 240);
        assert_eq!(a.ground_truth, b.ground_truth);
        assert_ne!(a.symptom.entity, b.symptom.entity); // remapped
    }
}
