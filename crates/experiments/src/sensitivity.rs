//! Sensitivity analysis (§6.8) and design-choice ablations.
//!
//! The paper discusses Murphy's sensitivity to its two main knobs — the
//! Gibbs pass count `W` and the training-window length — and implies the
//! rest of the design through its choices. This module sweeps:
//!
//! * `W` ∈ {1, 2, 4, 8} — accuracy should rise with diminishing returns
//!   (the §6.8 trade-off against runtime),
//! * subgraph slack ∈ {0, 2} — the ablation for this reproduction's
//!   resampling-set extension (DESIGN.md §5): slack 0 is the strict
//!   shortest-path subgraph,
//! * factor model family — ridge vs the alternatives of §6.6.1, this time
//!   measured end-to-end on diagnosis accuracy rather than on prediction
//!   error.

use crate::accuracy::AccuracyAccumulator;
use crate::fig6::{contention_scenario, App};
use murphy_baselines::{DiagnosisScheme, MurphyScheme, SchemeContext};
use murphy_core::MurphyConfig;
use murphy_graph::prune_candidates;
use murphy_learn::ModelKind;
use serde::{Deserialize, Serialize};

/// Configuration for the sensitivity sweeps.
#[derive(Debug, Clone, Copy)]
pub struct SensitivityConfig {
    /// Scenarios per configuration point.
    pub scenarios: usize,
    /// Trace length.
    pub ticks: u64,
    /// Base Murphy configuration (each sweep varies one knob).
    pub murphy: MurphyConfig,
}

impl SensitivityConfig {
    /// Paper-shaped defaults.
    pub fn paper() -> Self {
        Self {
            scenarios: 32,
            ticks: 360,
            murphy: MurphyConfig::paper(),
        }
    }

    /// Reduced scale for tests/CI.
    pub fn fast() -> Self {
        Self {
            scenarios: 3,
            ticks: 240,
            murphy: MurphyConfig::fast(),
        }
    }
}

/// One sweep's results: `(knob value label, recall@5, recall@1)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResults {
    /// Which knob was swept.
    pub knob: String,
    /// Points of the sweep.
    pub points: Vec<(String, f64, f64)>,
}

fn accuracy_with(config: &SensitivityConfig, murphy: MurphyConfig, seed_base: u64) -> (f64, f64) {
    let mut acc = AccuracyAccumulator::new(5);
    for v in 0..config.scenarios {
        let seed = seed_base + v as u64;
        let s = contention_scenario(App::HotelReservation, seed, config.ticks, 2);
        let candidates = prune_candidates(&s.db, &s.graph, s.symptom.entity, 1.0);
        let ranked = MurphyScheme::new(murphy).diagnose(&SchemeContext {
            db: &s.db,
            graph: &s.graph,
            symptom: s.symptom,
            candidates: &candidates,
            n_train: murphy.n_train,
        });
        acc.record(&ranked, &s.ground_truth, &s.relaxed_truth);
    }
    (acc.recall_at(5), acc.recall_at(1))
}

/// Sweep the Gibbs pass count W.
pub fn sweep_gibbs_rounds(config: &SensitivityConfig) -> SweepResults {
    let points = [1usize, 2, 4, 8]
        .iter()
        .map(|&w| {
            let murphy = config.murphy.with_gibbs_rounds(w);
            let (r5, r1) = accuracy_with(config, murphy, 5000);
            (format!("W={w}"), r5, r1)
        })
        .collect();
    SweepResults {
        knob: "gibbs_rounds".to_string(),
        points,
    }
}

/// Ablate the subgraph slack (0 = the strict shortest-path subgraph).
pub fn sweep_subgraph_slack(config: &SensitivityConfig) -> SweepResults {
    let points = [0usize, 1, 2]
        .iter()
        .map(|&slack| {
            let mut murphy = config.murphy;
            murphy.subgraph_slack = slack;
            let (r5, r1) = accuracy_with(config, murphy, 5100);
            (format!("slack={slack}"), r5, r1)
        })
        .collect();
    SweepResults {
        knob: "subgraph_slack".to_string(),
        points,
    }
}

/// Compare factor model families end-to-end.
pub fn sweep_model_family(config: &SensitivityConfig) -> SweepResults {
    let points = ModelKind::ALL
        .iter()
        .map(|&model| {
            let murphy = config.murphy.with_model(model);
            let (r5, r1) = accuracy_with(config, murphy, 5200);
            (model.label().to_string(), r5, r1)
        })
        .collect();
    SweepResults {
        knob: "factor_model".to_string(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gibbs_sweep_has_expected_shape() {
        let results = sweep_gibbs_rounds(&SensitivityConfig::fast());
        assert_eq!(results.points.len(), 4);
        // W=4 at least matches W=1 (more propagation can't hurt recall
        // beyond sampling noise on these scenarios).
        let r = |label: &str| {
            results
                .points
                .iter()
                .find(|(l, _, _)| l == label)
                .map(|&(_, r5, _)| r5)
                .unwrap()
        };
        assert!(r("W=4") + 0.34 >= r("W=1"));
        for (_, r5, r1) in &results.points {
            assert!((0.0..=1.0).contains(r5));
            assert!(r5 >= r1);
        }
    }

    #[test]
    fn slack_ablation_runs() {
        let results = sweep_subgraph_slack(&SensitivityConfig {
            scenarios: 2,
            ..SensitivityConfig::fast()
        });
        assert_eq!(results.points.len(), 3);
        // Slack 2 (the default) at least matches the strict subgraph.
        let strict = results.points[0].1;
        let slack2 = results.points[2].1;
        assert!(slack2 + 0.51 >= strict);
    }

    #[test]
    fn model_sweep_covers_all_families() {
        let results = sweep_model_family(&SensitivityConfig {
            scenarios: 1,
            ..SensitivityConfig::fast()
        });
        assert_eq!(results.points.len(), 4);
        let labels: Vec<&str> = results.points.iter().map(|(l, _, _)| l.as_str()).collect();
        assert!(labels.contains(&"linear regression"));
        assert!(labels.contains(&"neural network"));
    }
}
