//! Uniform construction of the four diagnosis schemes.

use murphy_baselines::{DiagnosisScheme, ExplainIt, MurphyScheme, NetMedic, Sage};
use murphy_core::MurphyConfig;
use serde::{Deserialize, Serialize};

/// The four schemes evaluated throughout §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Murphy (this paper).
    Murphy,
    /// Sage-style causal-DAG counterfactual engine.
    Sage,
    /// NetMedic.
    NetMedic,
    /// ExplainIt.
    ExplainIt,
}

impl SchemeKind {
    /// All four, in the paper's usual legend order.
    pub const ALL: [SchemeKind; 4] = [
        SchemeKind::Murphy,
        SchemeKind::Sage,
        SchemeKind::NetMedic,
        SchemeKind::ExplainIt,
    ];

    /// Display name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Murphy => "Murphy",
            SchemeKind::Sage => "Sage",
            SchemeKind::NetMedic => "NetMedic",
            SchemeKind::ExplainIt => "ExplainIT",
        }
    }

    /// Construct the scheme. `murphy` configures the Murphy engine; the
    /// baselines use their defaults (experiments that calibrate thresholds
    /// construct baselines directly instead).
    pub fn build(self, murphy: MurphyConfig) -> Box<dyn DiagnosisScheme> {
        match self {
            SchemeKind::Murphy => Box::new(MurphyScheme::new(murphy)),
            SchemeKind::Sage => Box::new(Sage::new()),
            SchemeKind::NetMedic => Box::new(NetMedic::new()),
            SchemeKind::ExplainIt => Box::new(ExplainIt::new()),
        }
    }
}

/// All four schemes with a shared Murphy configuration.
pub fn all_schemes(murphy: MurphyConfig) -> Vec<(SchemeKind, Box<dyn DiagnosisScheme>)> {
    SchemeKind::ALL
        .iter()
        .map(|&k| (k, k.build(murphy)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_order() {
        let labels: Vec<&str> = SchemeKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["Murphy", "Sage", "NetMedic", "ExplainIT"]);
    }

    #[test]
    fn build_constructs_every_scheme() {
        let schemes = all_schemes(MurphyConfig::fast());
        assert_eq!(schemes.len(), 4);
        for (kind, scheme) in &schemes {
            assert_eq!(scheme.name(), kind.label());
        }
    }
}
