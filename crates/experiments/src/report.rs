//! Plain-text rendering of experiment outputs in the paper's shapes.
//!
//! The `repro` binary prints these; tests assert on structure so the
//! formats stay stable.

use serde::Serialize;
use std::fmt::Write as _;

/// Render a table: header row + data rows, columns padded to width.
pub fn table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    let _ = writeln!(out, "{}", render_row(&header_cells, &widths));
    let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        let _ = writeln!(out, "{}", render_row(row, &widths));
    }
    out
}

/// Render an `(x, y)` series (one line per point) — the figure data dumps.
pub fn series(title: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(out, "{x_label}\t{y_label}");
    for (x, y) in points {
        let _ = writeln!(out, "{x:.4}\t{y:.4}");
    }
    out
}

/// Format a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Serialize any result structure to pretty JSON (for archiving runs).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).unwrap_or_else(|e| format!("<serialize error: {e}>"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_rows() {
        let out = table(
            "Test",
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "2".into()],
            ],
        );
        assert!(out.contains("== Test =="));
        assert!(out.contains("longer-name"));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5); // title, header, rule, 2 rows
    }

    #[test]
    fn series_renders_points() {
        let out = series("S", "x", "y", &[(1.0, 2.0), (3.0, 4.0)]);
        assert!(out.contains("1.0000\t2.0000"));
        assert!(out.lines().count() == 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.856), "86%");
        assert_eq!(f2(1.234), "1.23");
    }

    #[test]
    fn json_round_trip() {
        #[derive(serde::Serialize)]
        struct S {
            a: u32,
        }
        let s = to_json(&S { a: 5 });
        assert!(s.contains("\"a\": 5"));
    }
}
