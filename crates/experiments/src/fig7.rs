//! Figure 7: Murphy microbenchmarks (§6.5).
//!
//! Three ablations on the contention setup, Murphy only:
//!
//! * **No prior incidents** (§6.5.3) — traces where the diagnosed
//!   incident is the first ever; online training still sees it.
//! * **Offline vs fresh training** (§6.5.1) — training windows that end
//!   *before* the incident vs windows that include it; the paper reports
//!   the single largest effect in the whole evaluation (90% → 15%).
//! * **Training-length sweep** (§6.5.2) — n_train ∈ {128, 256, 512}.

use crate::accuracy::AccuracyAccumulator;
use crate::fig6::{contention_scenario, App};
use murphy_baselines::{DiagnosisScheme, MurphyScheme, SchemeContext};
use murphy_core::diagnose::diagnose_symptom;
use murphy_core::training::{train_mrf, TrainingWindow};
use murphy_core::MurphyConfig;
use murphy_graph::prune_candidates;
use serde::{Deserialize, Serialize};

/// Configuration for the Figure 7 run.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Config {
    /// Scenarios per bar.
    pub scenarios: usize,
    /// Trace length.
    pub ticks: u64,
    /// Murphy engine configuration.
    pub murphy: MurphyConfig,
}

impl Fig7Config {
    /// Paper-shaped defaults (§6.5.3 uses 64 no-prior traces).
    pub fn paper() -> Self {
        Self {
            scenarios: 64,
            ticks: 720,
            murphy: MurphyConfig::paper(),
        }
    }

    /// Reduced scale for tests/CI.
    pub fn fast() -> Self {
        Self {
            scenarios: 3,
            ticks: 300,
            murphy: MurphyConfig::fast(),
        }
    }
}

/// The Figure 7 bars.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Results {
    /// Recall@5 with no prior incidents (and recall@1).
    pub no_prior_incidents: (f64, f64),
    /// Recall@5 when trained offline (window ends before the incident).
    pub trained_offline: f64,
    /// Recall@5 when trained on fresh data (incident included).
    pub fresh_data: f64,
    /// `(n_train, recall@5)` sweep.
    pub n_train_sweep: Vec<(usize, f64)>,
}

/// Run all Figure 7 microbenchmarks.
pub fn run(config: &Fig7Config) -> Fig7Results {
    // --- no prior incidents -------------------------------------------
    let mut acc_none = AccuracyAccumulator::new(5);
    for v in 0..config.scenarios {
        let seed = 4000 + v as u64;
        let s = contention_scenario(App::HotelReservation, seed, config.ticks, 0);
        let candidates = prune_candidates(&s.db, &s.graph, s.symptom.entity, 1.0);
        let ctx = SchemeContext {
            db: &s.db,
            graph: &s.graph,
            symptom: s.symptom,
            candidates: &candidates,
            n_train: config.murphy.n_train,
        };
        let ranked = MurphyScheme::new(config.murphy).diagnose(&ctx);
        acc_none.record(&ranked, &s.ground_truth, &s.relaxed_truth);
    }

    // --- offline vs fresh (with max prior incidents, as in §6.5.1) ----
    let mut acc_offline = AccuracyAccumulator::new(5);
    let mut acc_fresh = AccuracyAccumulator::new(5);
    for v in 0..config.scenarios {
        let seed = 4100 + v as u64;
        let s = contention_scenario(App::HotelReservation, seed, config.ticks, 14);
        let candidates = prune_candidates(&s.db, &s.graph, s.symptom.entity, 1.0);
        for (window, acc) in [
            (
                TrainingWindow::offline(s.incident_start_tick, config.murphy.n_train),
                &mut acc_offline,
            ),
            (
                TrainingWindow::online(&s.db, config.murphy.n_train),
                &mut acc_fresh,
            ),
        ] {
            let mrf = train_mrf(&s.db, &s.graph, &config.murphy, window, s.db.latest_tick());
            let report = diagnose_symptom(&s.db, &mrf, &s.graph, &s.symptom, &config.murphy);
            let ranked: Vec<_> = report.root_causes.iter().map(|r| r.entity).collect();
            let _ = &candidates; // same pruned space via diagnose_symptom
            acc.record(&ranked, &s.ground_truth, &s.relaxed_truth);
        }
    }

    // --- n_train sweep ---------------------------------------------------
    let mut sweep = Vec::new();
    for &n_train in &[128usize, 256, 512] {
        let mut acc = AccuracyAccumulator::new(5);
        for v in 0..config.scenarios {
            let seed = 4200 + v as u64;
            // Trace must be long enough to contain the window.
            let ticks = config.ticks.max(n_train as u64 + 80);
            let s = contention_scenario(App::HotelReservation, seed, ticks, 4);
            let candidates = prune_candidates(&s.db, &s.graph, s.symptom.entity, 1.0);
            let ctx = SchemeContext {
                db: &s.db,
                graph: &s.graph,
                symptom: s.symptom,
                candidates: &candidates,
                n_train,
            };
            let ranked = MurphyScheme::new(config.murphy).diagnose(&ctx);
            acc.record(&ranked, &s.ground_truth, &s.relaxed_truth);
        }
        sweep.push((n_train, acc.recall_at(5)));
    }

    Fig7Results {
        no_prior_incidents: (acc_none.recall_at(5), acc_none.recall_at(1)),
        trained_offline: acc_offline.recall_at(5),
        fresh_data: acc_fresh.recall_at(5),
        n_train_sweep: sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_training_dominates_offline() {
        let results = run(&Fig7Config::fast());
        // The §6.5.1 headline: fresh (incident-inclusive) training is at
        // least as accurate as offline training, and works.
        assert!(results.fresh_data >= results.trained_offline);
        assert!(results.fresh_data > 0.5, "fresh = {}", results.fresh_data);
    }

    #[test]
    fn no_prior_incident_traces_still_diagnose() {
        let results = run(&Fig7Config::fast());
        let (at5, at1) = results.no_prior_incidents;
        assert!(at5 >= at1);
        assert!(at5 > 0.5, "recall@5 with no priors = {at5}");
    }

    #[test]
    fn sweep_has_three_points() {
        let results = run(&Fig7Config {
            scenarios: 2,
            ..Fig7Config::fast()
        });
        let ns: Vec<usize> = results.n_train_sweep.iter().map(|p| p.0).collect();
        assert_eq!(ns, vec![128, 256, 512]);
        for (_, r) in &results.n_train_sweep {
            assert!((0.0..=1.0).contains(r));
        }
    }
}
