//! Reference diagnosis schemes the Murphy paper compares against.
//!
//! All three baselines consume the *same* inputs as Murphy — the
//! monitoring database, the relationship graph, the symptom, and the same
//! pruned candidate space ("for fairness, we provide this pruned search
//! space to all reference schemes", §4.2) — through the common
//! [`scheme::DiagnosisScheme`] trait:
//!
//! * [`explainit`] — ExplainIt: ranks candidates by pairwise correlation
//!   between their metrics and the symptom metric; no topology awareness.
//! * [`netmedic`] — NetMedic: correlation-derived edge weights over the
//!   dependency graph, dampened for "normal"-looking entities, combined
//!   into a geometric-mean path score plus a global-impact term.
//! * [`sage`] — a Sage-style counterfactual engine restricted to a causal
//!   DAG: per-node conditional models on DAG parents, root-cause search
//!   over the symptom's ancestors only. Faithfully inherits Sage's
//!   structural limitation: anything outside the DAG (or any cyclic
//!   environment) is out of scope.
//!
//! A [`scheme::MurphyScheme`] adapter exposes Murphy itself through the
//! same trait so experiment code can iterate over all four uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explainit;
pub mod netmedic;
pub mod sage;
pub mod scheme;

pub use explainit::ExplainIt;
pub use netmedic::NetMedic;
pub use sage::Sage;
pub use scheme::{DiagnosisScheme, MurphyScheme, SchemeContext};
