//! The common scheme interface.
//!
//! Every diagnosis scheme — Murphy and the three baselines — maps the same
//! inputs to a ranked list of root-cause entities, so the experiment
//! harness can run them interchangeably over identical scenarios.

use murphy_core::diagnose::diagnose_with_candidates;
use murphy_core::training::{train_mrf, TrainingWindow};
use murphy_core::{MurphyConfig, Symptom};
use murphy_graph::RelationshipGraph;
use murphy_telemetry::{EntityId, MonitoringDb};

/// Shared inputs handed to every scheme.
#[derive(Clone, Copy)]
pub struct SchemeContext<'a> {
    /// The monitoring database.
    pub db: &'a MonitoringDb,
    /// The relationship graph (schemes that cannot consume cyclic graphs
    /// derive their own restricted view from `db`).
    pub graph: &'a RelationshipGraph,
    /// The problematic symptom to diagnose.
    pub symptom: Symptom,
    /// The pruned candidate space, shared across schemes for fairness.
    pub candidates: &'a [EntityId],
    /// Training-window length in ticks.
    pub n_train: usize,
}

impl<'a> SchemeContext<'a> {
    /// The online training window for this context.
    pub fn window(&self) -> TrainingWindow {
        TrainingWindow::online(self.db, self.n_train)
    }
}

/// A diagnosis scheme: inputs → ranked root-cause entities (best first).
pub trait DiagnosisScheme {
    /// Scheme name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Produce the ranked candidate list. An empty result means the scheme
    /// found nothing — or, for Sage on cyclic input, cannot model the
    /// environment at all.
    fn diagnose(&self, ctx: &SchemeContext<'_>) -> Vec<EntityId>;
}

/// Murphy exposed through the common trait.
pub struct MurphyScheme {
    config: MurphyConfig,
}

impl MurphyScheme {
    /// Wrap a configuration.
    pub fn new(config: MurphyConfig) -> Self {
        Self { config }
    }
}

impl DiagnosisScheme for MurphyScheme {
    fn name(&self) -> &'static str {
        "Murphy"
    }

    fn diagnose(&self, ctx: &SchemeContext<'_>) -> Vec<EntityId> {
        let mut config = self.config;
        config.n_train = ctx.n_train;
        let mrf = train_mrf(
            ctx.db,
            ctx.graph,
            &config,
            ctx.window(),
            ctx.db.latest_tick(),
        );
        let report =
            diagnose_with_candidates(ctx.db, &mrf, ctx.graph, &ctx.symptom, ctx.candidates, &config);
        report.root_causes.into_iter().map(|r| r.entity).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murphy_graph::{build_from_seeds, prune_candidates, BuildOptions};
    use murphy_telemetry::{AssociationKind, EntityKind, MetricKind};

    #[test]
    fn murphy_scheme_matches_core_pipeline() {
        let mut db = MonitoringDb::new(10);
        let driver = db.add_entity(EntityKind::Vm, "driver");
        let victim = db.add_entity(EntityKind::Vm, "victim");
        db.relate(driver, victim, AssociationKind::Related);
        for t in 0..200u64 {
            let spike = if t >= 180 { 60.0 } else { 0.0 };
            let drv = 10.0 + 4.0 * ((t as f64) * 0.3).sin() + spike;
            db.record(driver, MetricKind::CpuUtil, t, drv);
            db.record(victim, MetricKind::CpuUtil, t, (0.9 * drv + 5.0).min(100.0));
        }
        let graph = build_from_seeds(&db, &[victim], BuildOptions::default());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);
        let candidates = prune_candidates(&db, &graph, victim, 1.0);
        let ctx = SchemeContext {
            db: &db,
            graph: &graph,
            symptom,
            candidates: &candidates,
            n_train: 150,
        };
        let scheme = MurphyScheme::new(MurphyConfig::fast());
        assert_eq!(scheme.name(), "Murphy");
        let ranked = scheme.diagnose(&ctx);
        assert!(ranked.contains(&driver));
    }
}
