//! NetMedic-style baseline.
//!
//! Following the paper's summary of NetMedic (§2.3): it "labels edges with
//! weights based on pairwise correlation between neighbors using
//! historical metric values, augmented with heuristics to reduce weights
//! when metric values are roughly normal ... Finally, it ranks root causes
//! based on a geometric-mean of path weights, and a score of the global
//! downstream impact of the candidate root cause."
//!
//! Our implementation:
//!
//! * **Edge weights**: for each directed edge `u → v`, the maximum
//!   |Pearson correlation| between any metric of `u` and any metric of `v`
//!   over the training window.
//! * **Normality dampening**: an edge out of an entity whose current
//!   metrics are all close to their historical means (low z-score) has its
//!   weight scaled down — "ignoring normal influence".
//! * **Path score**: the best geometric mean of edge weights over paths
//!   from candidate to symptom, searched over shortest paths (BFS layers).
//! * **Global impact**: fraction of currently-abnormal entities reachable
//!   from the candidate.
//! * **Rank**: descending `path_score × (1 + impact)`.

use crate::scheme::{DiagnosisScheme, SchemeContext};
use murphy_graph::paths::bfs_distances;
use murphy_graph::RelationshipGraph;
use murphy_stats::{anomaly_score, pearson};
use murphy_telemetry::{EntityId, MetricId, MonitoringDb};
use std::collections::BTreeMap;

/// Tunables for the NetMedic baseline.
#[derive(Debug, Clone, Copy)]
pub struct NetMedicParams {
    /// Entities with every metric under this z-score are "normal"; edges
    /// out of them get dampened.
    pub normal_z: f64,
    /// Multiplier applied to the outgoing edge weights of normal entities.
    pub normal_dampening: f64,
    /// Candidates scoring below this are not reported (the Table 1
    /// calibration knob).
    pub min_score: f64,
}

impl Default for NetMedicParams {
    fn default() -> Self {
        Self {
            normal_z: 1.0,
            normal_dampening: 0.2,
            min_score: 0.0,
        }
    }
}

/// The NetMedic baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetMedic {
    /// Parameters.
    pub params: NetMedicParams,
}

impl NetMedic {
    /// With default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// With a reporting threshold.
    pub fn with_min_score(min_score: f64) -> Self {
        Self {
            params: NetMedicParams {
                min_score,
                ..Default::default()
            },
        }
    }
}

/// Current anomaly z-score of an entity's most anomalous metric against
/// its window history.
fn entity_abnormality(
    db: &MonitoringDb,
    entity: EntityId,
    from: u64,
    to: u64,
) -> f64 {
    db.metrics_of(entity)
        .into_iter()
        .map(|kind| {
            let m = MetricId::new(entity, kind);
            let hist = db
                .series(m)
                .map(|s| s.window_mean_imputed(from, to, kind.default_value(), 8))
                .unwrap_or_default();
            anomaly_score(&hist, db.current_value(m))
        })
        .fold(0.0, f64::max)
}

/// Max |correlation| between any metric of `u` and any metric of `v`.
fn edge_correlation(db: &MonitoringDb, u: EntityId, v: EntityId, from: u64, to: u64) -> f64 {
    let u_series: Vec<Vec<f64>> = db
        .metrics_of(u)
        .into_iter()
        .filter_map(|k| db.series(MetricId::new(u, k)).map(|s| s.window_mean_imputed(from, to, k.default_value(), 8)))
        .collect();
    let v_series: Vec<Vec<f64>> = db
        .metrics_of(v)
        .into_iter()
        .filter_map(|k| db.series(MetricId::new(v, k)).map(|s| s.window_mean_imputed(from, to, k.default_value(), 8)))
        .collect();
    let mut best: f64 = 0.0;
    for us in &u_series {
        for vs in &v_series {
            best = best.max(pearson(us, vs).abs());
        }
    }
    best
}

/// Best geometric-mean-of-edge-weights over shortest paths `src → dst`.
/// Dynamic program over BFS layers: for each node at distance d, keep the
/// best product of weights along any shortest path from src.
fn best_path_score(
    graph: &RelationshipGraph,
    weights: &BTreeMap<(usize, usize), f64>,
    src: usize,
    dst: usize,
) -> Option<f64> {
    let dist = bfs_distances(graph, src);
    if dist[dst] == usize::MAX {
        return None;
    }
    if src == dst {
        return Some(1.0);
    }
    let total = dist[dst];
    // Order nodes by distance; propagate best log-products forward.
    let mut best = vec![f64::NEG_INFINITY; graph.node_count()];
    best[src] = 0.0;
    let mut order: Vec<usize> = (0..graph.node_count())
        .filter(|&v| dist[v] <= total && dist[v] != usize::MAX)
        .collect();
    order.sort_by_key(|&v| dist[v]);
    for &u in &order {
        if best[u] == f64::NEG_INFINITY {
            continue;
        }
        for &v in graph.out_nbrs(u) {
            if dist[v] == dist[u] + 1 && dist[v] <= total {
                let w = weights.get(&(u, v)).copied().unwrap_or(0.0).max(1e-6);
                let cand = best[u] + w.ln();
                if cand > best[v] {
                    best[v] = cand;
                }
            }
        }
    }
    if best[dst] == f64::NEG_INFINITY {
        None
    } else {
        Some((best[dst] / total as f64).exp()) // geometric mean
    }
}

impl DiagnosisScheme for NetMedic {
    fn name(&self) -> &'static str {
        "NetMedic"
    }

    fn diagnose(&self, ctx: &SchemeContext<'_>) -> Vec<EntityId> {
        let window = ctx.window();
        let (from, to) = (window.from, window.to);
        let graph = ctx.graph;

        // Per-entity abnormality (for dampening and global impact).
        let abnormality: Vec<f64> = graph
            .entities()
            .iter()
            .map(|&e| entity_abnormality(ctx.db, e, from, to))
            .collect();

        // Edge weights with normality dampening.
        let mut weights: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        for (u_ent, v_ent) in graph.edges() {
            let u = graph.node(u_ent).expect("edge endpoint in graph");
            let v = graph.node(v_ent).expect("edge endpoint in graph");
            let mut w = edge_correlation(ctx.db, u_ent, v_ent, from, to);
            if abnormality[u] < self.params.normal_z {
                w *= self.params.normal_dampening;
            }
            weights.insert((u, v), w);
        }

        let Some(symptom_idx) = graph.node(ctx.symptom.entity) else {
            return Vec::new();
        };
        let abnormal_total = abnormality
            .iter()
            .filter(|&&z| z >= self.params.normal_z)
            .count()
            .max(1);

        let mut scored: Vec<(EntityId, f64)> = ctx
            .candidates
            .iter()
            .filter_map(|&c| {
                let c_idx = graph.node(c)?;
                let path = best_path_score(graph, &weights, c_idx, symptom_idx)?;
                // Global impact: abnormal entities reachable from c.
                let dist = bfs_distances(graph, c_idx);
                let impacted = (0..graph.node_count())
                    .filter(|&v| dist[v] != usize::MAX && abnormality[v] >= self.params.normal_z)
                    .count();
                let impact = impacted as f64 / abnormal_total as f64;
                Some((c, path * (1.0 + impact)))
            })
            .filter(|&(_, s)| s >= self.params.min_score)
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored.into_iter().map(|(e, _)| e).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murphy_core::Symptom;
    use murphy_graph::{build_from_seeds, BuildOptions};
    use murphy_telemetry::{AssociationKind, EntityKind, MetricKind};

    /// driver (abnormal, correlated) vs bystander (normal, weakly
    /// correlated) both adjacent to the victim.
    fn env() -> (MonitoringDb, EntityId, EntityId, EntityId) {
        let mut db = MonitoringDb::new(10);
        let victim = db.add_entity(EntityKind::Vm, "victim");
        let driver = db.add_entity(EntityKind::Vm, "driver");
        let bystander = db.add_entity(EntityKind::Vm, "bystander");
        db.relate(driver, victim, AssociationKind::Related);
        db.relate(bystander, victim, AssociationKind::Related);
        for t in 0..150u64 {
            let spike = if t >= 130 { 50.0 } else { 0.0 };
            let drv = 15.0 + 6.0 * ((t as f64) * 0.25).sin() + spike;
            db.record(driver, MetricKind::CpuUtil, t, drv);
            db.record(bystander, MetricKind::CpuUtil, t, 12.0 + 0.5 * ((t as f64) * 1.3).cos());
            db.record(victim, MetricKind::CpuUtil, t, (0.9 * drv + 4.0).min(100.0));
        }
        (db, victim, driver, bystander)
    }

    fn ctx<'a>(
        db: &'a MonitoringDb,
        graph: &'a RelationshipGraph,
        victim: EntityId,
        candidates: &'a [EntityId],
    ) -> SchemeContext<'a> {
        SchemeContext {
            db,
            graph,
            symptom: Symptom::high(victim, MetricKind::CpuUtil),
            candidates,
            n_train: 120,
        }
    }

    #[test]
    fn correlated_abnormal_driver_ranks_first() {
        let (db, victim, driver, bystander) = env();
        let graph = build_from_seeds(&db, &[victim], BuildOptions::default());
        let cands = [driver, bystander];
        let ranked = NetMedic::new().diagnose(&ctx(&db, &graph, victim, &cands));
        assert_eq!(ranked.first(), Some(&driver));
    }

    #[test]
    fn min_score_threshold_filters() {
        let (db, victim, driver, bystander) = env();
        let graph = build_from_seeds(&db, &[victim], BuildOptions::default());
        let cands = [driver, bystander];
        let all = NetMedic::new().diagnose(&ctx(&db, &graph, victim, &cands));
        let strict = NetMedic::with_min_score(0.5).diagnose(&ctx(&db, &graph, victim, &cands));
        assert!(strict.len() <= all.len());
        if !strict.is_empty() {
            assert_eq!(strict[0], driver);
        }
    }

    #[test]
    fn unreachable_candidate_not_reported() {
        let (mut db, victim, driver, _) = env();
        let loner = db.add_entity(EntityKind::Vm, "loner");
        for t in 0..150u64 {
            db.record(loner, MetricKind::CpuUtil, t, 80.0);
        }
        let graph = build_from_seeds(&db, &[victim], BuildOptions::default());
        let cands = [driver, loner];
        let ranked = NetMedic::new().diagnose(&ctx(&db, &graph, victim, &cands));
        assert!(!ranked.contains(&loner));
    }

    #[test]
    fn symptom_not_in_graph_yields_empty() {
        let (db, victim, driver, _) = env();
        let graph = build_from_seeds(&db, &[victim], BuildOptions::default());
        let cands = [driver];
        let mut c = ctx(&db, &graph, victim, &cands);
        c.symptom = Symptom::high(EntityId(999), MetricKind::CpuUtil);
        assert!(NetMedic::new().diagnose(&c).is_empty());
    }

    #[test]
    fn geometric_mean_path_scoring() {
        // Two-hop chain a → b → symptom with known weights: score is the
        // geometric mean of the two edge correlations.
        let mut graph = RelationshipGraph::new();
        for i in 0..3 {
            graph.add_node(EntityId(i));
        }
        graph.add_edge(EntityId(0), EntityId(1));
        graph.add_edge(EntityId(1), EntityId(2));
        let mut weights = BTreeMap::new();
        weights.insert((0usize, 1usize), 0.9);
        weights.insert((1usize, 2usize), 0.4);
        let score = best_path_score(&graph, &weights, 0, 2).unwrap();
        assert!((score - (0.9f64 * 0.4).sqrt()).abs() < 1e-9);
        // Self path scores 1.0; unreachable returns None.
        assert_eq!(best_path_score(&graph, &weights, 0, 0), Some(1.0));
        assert!(best_path_score(&graph, &weights, 2, 0).is_none());
    }
}
