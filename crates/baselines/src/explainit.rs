//! ExplainIt-style baseline.
//!
//! Per the paper's description (§2.3): ExplainIt "performs pairwise
//! correlations between metrics of the observed problem and of each
//! candidate root cause". A candidate's score is the strongest absolute
//! correlation between any of its metrics and the symptom metric over the
//! recent window; ranking is by descending score. There is no topology
//! awareness — which is exactly the weakness the paper's evaluation
//! surfaces (correlated-but-unrelated entities become false positives).

use crate::scheme::{DiagnosisScheme, SchemeContext};
use murphy_stats::pearson;
use murphy_telemetry::{EntityId, MetricId};

/// The ExplainIt baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExplainIt {
    /// Minimum |correlation| for a candidate to be reported at all.
    /// 0.0 reports every candidate (maximum recall, minimum precision).
    pub min_correlation: f64,
}

impl ExplainIt {
    /// With the default (report-everything) threshold.
    pub fn new() -> Self {
        Self::default()
    }

    /// With a reporting threshold (used by the Table 1 calibration).
    pub fn with_threshold(min_correlation: f64) -> Self {
        Self { min_correlation }
    }
}

impl DiagnosisScheme for ExplainIt {
    fn name(&self) -> &'static str {
        "ExplainIT"
    }

    fn diagnose(&self, ctx: &SchemeContext<'_>) -> Vec<EntityId> {
        let window = ctx.window();
        let default = ctx.symptom.metric.default_value();
        let symptom_series = match ctx.db.series(ctx.symptom.metric_id()) {
            Some(s) => s.window_mean_imputed(window.from, window.to, default, 8),
            None => return Vec::new(),
        };
        let mut scored: Vec<(EntityId, f64)> = ctx
            .candidates
            .iter()
            .map(|&c| {
                let best = ctx
                    .db
                    .metrics_of(c)
                    .into_iter()
                    .map(|kind| {
                        let series = ctx
                            .db
                            .series(MetricId::new(c, kind))
                            .map(|s| s.window_mean_imputed(window.from, window.to, kind.default_value(), 8))
                            .unwrap_or_default();
                        pearson(&series, &symptom_series).abs()
                    })
                    .fold(0.0, f64::max);
                (c, best)
            })
            .filter(|&(_, s)| s >= self.min_correlation)
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored.into_iter().map(|(e, _)| e).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murphy_core::Symptom;
    use murphy_graph::{build_from_seeds, BuildOptions};
    use murphy_telemetry::{AssociationKind, EntityKind, MetricKind, MonitoringDb};

    /// correlated entity, anti-correlated entity, and noise entity around
    /// a symptomatic service.
    fn env() -> (MonitoringDb, EntityId, Vec<EntityId>) {
        let mut db = MonitoringDb::new(10);
        let svc = db.add_entity(EntityKind::Service, "svc");
        let corr = db.add_entity(EntityKind::Vm, "corr");
        let anti = db.add_entity(EntityKind::Vm, "anti");
        let noise = db.add_entity(EntityKind::Vm, "noise");
        for &e in &[corr, anti, noise] {
            db.relate(svc, e, AssociationKind::Related);
        }
        for t in 0..100u64 {
            let lat = 10.0 + 5.0 * ((t as f64) * 0.2).sin();
            db.record(svc, MetricKind::Latency, t, lat);
            db.record(corr, MetricKind::CpuUtil, t, lat * 2.0);
            db.record(anti, MetricKind::CpuUtil, t, 100.0 - lat * 2.0);
            db.record(noise, MetricKind::CpuUtil, t, ((t * 7919) % 23) as f64);
        }
        (db, svc, vec![corr, anti, noise])
    }

    #[test]
    fn ranks_by_absolute_correlation() {
        let (db, svc, cands) = env();
        let graph = build_from_seeds(&db, &[svc], BuildOptions::default());
        let ctx = SchemeContext {
            db: &db,
            graph: &graph,
            symptom: Symptom::high(svc, MetricKind::Latency),
            candidates: &cands,
            n_train: 100,
        };
        let ranked = ExplainIt::new().diagnose(&ctx);
        assert_eq!(ranked.len(), 3);
        // Both perfectly (anti-)correlated entities precede the noise.
        assert_eq!(ranked[2], cands[2]);
    }

    #[test]
    fn threshold_filters_weak_candidates() {
        let (db, svc, cands) = env();
        let graph = build_from_seeds(&db, &[svc], BuildOptions::default());
        let ctx = SchemeContext {
            db: &db,
            graph: &graph,
            symptom: Symptom::high(svc, MetricKind::Latency),
            candidates: &cands,
            n_train: 100,
        };
        let ranked = ExplainIt::with_threshold(0.9).diagnose(&ctx);
        assert_eq!(ranked.len(), 2); // noise filtered out
    }

    #[test]
    fn missing_symptom_series_yields_empty() {
        let (db, svc, cands) = env();
        let graph = build_from_seeds(&db, &[svc], BuildOptions::default());
        let ctx = SchemeContext {
            db: &db,
            graph: &graph,
            symptom: Symptom::high(svc, MetricKind::ErrorRate), // never recorded
            candidates: &cands,
            n_train: 100,
        };
        assert!(ExplainIt::new().diagnose(&ctx).is_empty());
    }

    #[test]
    fn no_candidates_yields_empty() {
        let (db, svc, _) = env();
        let graph = build_from_seeds(&db, &[svc], BuildOptions::default());
        let ctx = SchemeContext {
            db: &db,
            graph: &graph,
            symptom: Symptom::high(svc, MetricKind::Latency),
            candidates: &[],
            n_train: 100,
        };
        assert!(ExplainIt::new().diagnose(&ctx).is_empty());
    }
}
