//! Sage-style causal-DAG counterfactual baseline.
//!
//! Sage (Gan et al., ASPLOS 2021) performs counterfactual root-cause
//! analysis over a *known causal DAG* — the microservice call graph — with
//! a learned generative model per node. The Murphy paper's evaluation
//! hinges on two structural properties of that design, both of which this
//! reimplementation preserves:
//!
//! 1. **DAG-only.** The model is built exclusively from associations with
//!    a *known* causal direction (caller→callee edges and the like). If
//!    that directed view contains a cycle, Sage is inapplicable and
//!    reports nothing — matching "Sage is incapable of working in this
//!    environment" (§6.2).
//! 2. **Model scope.** Candidates are searched only among the symptom
//!    entity's *ancestors* in the DAG. A root cause outside that cone
//!    (e.g. a sibling service sharing a backend, §6.1) "falls outside its
//!    model, preventing Sage from catching it".
//!
//! The per-node generative model is a conditional regressor on DAG-parent
//! metrics (the same ridge family Murphy uses, replacing Sage's CVAE; the
//! counterfactual logic — intervene at the candidate, propagate in
//! topological order, compare the symptom — is the same shape).

use crate::scheme::{DiagnosisScheme, SchemeContext};
use murphy_learn::{select_top_features, ModelKind, TrainedModel};
use murphy_stats::Summary;
use murphy_telemetry::{
    Directionality, EntityId, MetricId, MonitoringDb,
};
use std::collections::BTreeMap;

/// The Sage-style baseline.
#[derive(Debug, Clone, Copy)]
pub struct Sage {
    /// Feature budget per node model.
    pub feature_budget: usize,
    /// Counterfactual offset in historical standard deviations.
    pub counterfactual_sigmas: f64,
    /// Minimum relief (in symptom historical std) to report a candidate.
    pub min_relief_sigmas: f64,
}

impl Default for Sage {
    fn default() -> Self {
        Self {
            feature_budget: 10,
            counterfactual_sigmas: 2.0,
            min_relief_sigmas: 0.25,
        }
    }
}

impl Sage {
    /// With default parameters.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The directed causal view: adjacency from known-direction associations.
struct CausalDag {
    /// entity → children (entities it causally influences).
    children: BTreeMap<EntityId, Vec<EntityId>>,
    /// entity → parents.
    parents: BTreeMap<EntityId, Vec<EntityId>>,
    /// All entities that appear in any directed association.
    nodes: Vec<EntityId>,
}

impl CausalDag {
    /// Build from the database's *directed* associations only. Undirected
    /// (Both) associations carry no causal knowledge and are excluded —
    /// this is precisely Sage's input requirement.
    fn build(db: &MonitoringDb) -> Self {
        let mut children: BTreeMap<EntityId, Vec<EntityId>> = BTreeMap::new();
        let mut parents: BTreeMap<EntityId, Vec<EntityId>> = BTreeMap::new();
        let mut nodes: Vec<EntityId> = Vec::new();
        for assoc in db.associations() {
            let (from, to) = match assoc.direction {
                Directionality::AToB => (assoc.a, assoc.b),
                Directionality::BToA => (assoc.b, assoc.a),
                Directionality::Both => continue,
            };
            children.entry(from).or_default().push(to);
            parents.entry(to).or_default().push(from);
            nodes.push(from);
            nodes.push(to);
        }
        nodes.sort();
        nodes.dedup();
        Self {
            children,
            parents,
            nodes,
        }
    }

    /// Topological order, or `None` when the directed view has a cycle.
    fn topological_order(&self) -> Option<Vec<EntityId>> {
        let mut in_deg: BTreeMap<EntityId, usize> = self
            .nodes
            .iter()
            .map(|&n| (n, self.parents.get(&n).map(|p| p.len()).unwrap_or(0)))
            .collect();
        let mut queue: Vec<EntityId> = in_deg
            .iter()
            .filter(|&(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(n) = queue.pop() {
            order.push(n);
            for &c in self.children.get(&n).map(|v| v.as_slice()).unwrap_or(&[]) {
                let d = in_deg.get_mut(&c).expect("child is a node");
                *d -= 1;
                if *d == 0 {
                    queue.push(c);
                }
            }
        }
        if order.len() == self.nodes.len() {
            Some(order)
        } else {
            None // cycle
        }
    }

    /// Ancestors of `target` (entities with a directed path to it).
    fn ancestors(&self, target: EntityId) -> Vec<EntityId> {
        let mut seen = vec![target];
        let mut stack = vec![target];
        while let Some(n) = stack.pop() {
            for &p in self.parents.get(&n).map(|v| v.as_slice()).unwrap_or(&[]) {
                if !seen.contains(&p) {
                    seen.push(p);
                    stack.push(p);
                }
            }
        }
        seen.retain(|&e| e != target);
        seen
    }
}

impl DiagnosisScheme for Sage {
    fn name(&self) -> &'static str {
        "Sage"
    }

    fn diagnose(&self, ctx: &SchemeContext<'_>) -> Vec<EntityId> {
        let dag = CausalDag::build(ctx.db);
        // Structural gates: a usable topological order and the symptom in
        // the model.
        let Some(topo) = dag.topological_order() else {
            return Vec::new(); // cyclic causal view: Sage can't model this
        };
        if !dag.nodes.contains(&ctx.symptom.entity) {
            return Vec::new();
        }
        let window = ctx.window();
        let (from, to) = (window.from, window.to);
        let len = (to - from) as usize;
        if len == 0 {
            return Vec::new();
        }

        // Index all metrics of DAG nodes; extract training columns.
        let mut metric_ids: Vec<MetricId> = Vec::new();
        for &e in &dag.nodes {
            for kind in ctx.db.metrics_of(e) {
                metric_ids.push(MetricId::new(e, kind));
            }
        }
        let positions: BTreeMap<MetricId, usize> = metric_ids
            .iter()
            .enumerate()
            .map(|(i, &m)| (m, i))
            .collect();
        let columns: Vec<Vec<f64>> = metric_ids
            .iter()
            .map(|&m| {
                ctx.db
                    .series(m)
                    .map(|s| s.window_mean_imputed(from, to, m.kind.default_value(), 8))
                    .unwrap_or_else(|| vec![m.kind.default_value(); len])
            })
            .collect();
        let history: Vec<Summary> = columns.iter().map(|c| Summary::of(c)).collect();
        let current: Vec<f64> = metric_ids.iter().map(|&m| ctx.db.current_value(m)).collect();

        // Per-metric model on DAG-parent metrics.
        let mut models: Vec<Option<(Vec<usize>, TrainedModel)>> = Vec::with_capacity(metric_ids.len());
        for (i, m) in metric_ids.iter().enumerate() {
            let mut parent_positions: Vec<usize> = Vec::new();
            if let Some(ps) = dag.parents.get(&m.entity) {
                for &p in ps {
                    for k in ctx.db.metrics_of(p) {
                        if let Some(&pos) = positions.get(&MetricId::new(p, k)) {
                            parent_positions.push(pos);
                        }
                    }
                }
            }
            if parent_positions.is_empty() {
                models.push(None);
                continue;
            }
            let cand_cols: Vec<&[f64]> =
                parent_positions.iter().map(|&p| columns[p].as_slice()).collect();
            let chosen = select_top_features(&cand_cols, &columns[i], self.feature_budget);
            let feats: Vec<usize> = chosen.iter().map(|&c| parent_positions[c]).collect();
            let rows: Vec<Vec<f64>> = (0..len)
                .map(|t| feats.iter().map(|&p| columns[p][t]).collect())
                .collect();
            match TrainedModel::fit(ModelKind::Ridge, &rows, &columns[i], 0) {
                Ok(model) => models.push(Some((feats, model))),
                Err(_) => models.push(None),
            }
        }

        // Deterministic propagation in topological order; metric values of
        // node e are recomputed from its parents' (already updated) values.
        let propagate = |intervened: EntityId, values: &mut Vec<f64>| {
            for &node in &topo {
                if node == intervened {
                    continue; // pinned
                }
                for kind in ctx.db.metrics_of(node) {
                    let Some(&pos) = positions.get(&MetricId::new(node, kind)) else {
                        continue;
                    };
                    if let Some((feats, model)) = &models[pos] {
                        let x: Vec<f64> = feats.iter().map(|&p| values[p]).collect();
                        values[pos] = kind.clamp(model.predict(&x));
                    }
                }
            }
        };

        let Some(&symptom_pos) = positions.get(&ctx.symptom.metric_id()) else {
            return Vec::new();
        };
        let symptom_std = history[symptom_pos].std_dev_floored(1e-6);

        // Candidate scope: ancestors ∩ provided candidate space.
        let ancestors = dag.ancestors(ctx.symptom.entity);
        let mut scored: Vec<(EntityId, f64)> = Vec::new();
        for &c in ctx.candidates {
            if !ancestors.contains(&c) {
                continue; // outside the model
            }
            // Counterfactual: move each of c's metrics toward its
            // historical mean by `counterfactual_sigmas`.
            let mut cf = current.clone();
            for kind in ctx.db.metrics_of(c) {
                if let Some(&p) = positions.get(&MetricId::new(c, kind)) {
                    let h = &history[p];
                    let dir = if cf[p] >= h.mean { -1.0 } else { 1.0 };
                    cf[p] = kind.clamp(cf[p] + dir * self.counterfactual_sigmas * h.std_dev_floored(1e-6));
                }
            }
            let mut factual = current.clone();
            propagate(c, &mut cf);
            propagate(c, &mut factual);
            let relief = if ctx.symptom.is_high() {
                factual[symptom_pos] - cf[symptom_pos]
            } else {
                cf[symptom_pos] - factual[symptom_pos]
            };
            if relief >= self.min_relief_sigmas * symptom_std {
                scored.push((c, relief));
            }
        }
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored.into_iter().map(|(e, _)| e).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murphy_core::Symptom;
    use murphy_graph::{build_from_seeds, BuildOptions};
    use murphy_telemetry::{AssociationKind, EntityKind, MetricKind};

    /// DAG: faulty → middle → frontend, all causal (directed) edges.
    /// The fault spikes `faulty`'s CPU at the tail, raising frontend latency.
    fn dag_env() -> (MonitoringDb, EntityId, EntityId, EntityId) {
        let mut db = MonitoringDb::new(10);
        let frontend = db.add_entity(EntityKind::Service, "frontend");
        let middle = db.add_entity(EntityKind::Service, "middle");
        let faulty = db.add_entity(EntityKind::Container, "faulty");
        // Influence flows faulty → middle → frontend.
        db.relate_directed(faulty, middle, AssociationKind::ServiceOnContainer);
        db.relate_directed(middle, frontend, AssociationKind::ServiceCall);
        for t in 0..200u64 {
            let spike = if t >= 180 { 55.0 } else { 0.0 };
            let cpu = 15.0 + 5.0 * ((t as f64) * 0.33).sin() + spike;
            db.record(faulty, MetricKind::CpuUtil, t, cpu);
            let mid_lat = 5.0 + 0.3 * cpu;
            db.record(middle, MetricKind::Latency, t, mid_lat);
            db.record(frontend, MetricKind::Latency, t, mid_lat + 3.0);
        }
        (db, frontend, middle, faulty)
    }

    fn run(db: &MonitoringDb, frontend: EntityId, candidates: &[EntityId]) -> Vec<EntityId> {
        let graph = build_from_seeds(db, &[frontend], BuildOptions::default());
        let ctx = SchemeContext {
            db,
            graph: &graph,
            symptom: Symptom::high(frontend, MetricKind::Latency),
            candidates,
            n_train: 150,
        };
        Sage::new().diagnose(&ctx)
    }

    #[test]
    fn finds_ancestor_root_cause_on_a_dag() {
        let (db, frontend, middle, faulty) = dag_env();
        let ranked = run(&db, frontend, &[faulty, middle]);
        assert!(ranked.contains(&faulty), "ranked = {ranked:?}");
    }

    #[test]
    fn out_of_model_candidate_is_invisible() {
        // A sibling entity related to the frontend only through an
        // *undirected* association is outside Sage's causal view.
        let (mut db, frontend, middle, faulty) = dag_env();
        let sibling = db.add_entity(EntityKind::Vm, "sibling");
        db.relate(sibling, frontend, AssociationKind::Related);
        for t in 0..200u64 {
            db.record(sibling, MetricKind::CpuUtil, t, if t >= 180 { 90.0 } else { 10.0 });
        }
        let ranked = run(&db, frontend, &[faulty, middle, sibling]);
        assert!(!ranked.contains(&sibling), "sibling is outside the DAG");
    }

    #[test]
    fn cyclic_causal_view_disables_sage() {
        let (mut db, frontend, middle, faulty) = dag_env();
        // Add a directed back-edge creating a causal cycle.
        db.relate_directed(frontend, faulty, AssociationKind::ServiceCall);
        let ranked = run(&db, frontend, &[faulty, middle]);
        assert!(ranked.is_empty(), "Sage must refuse cyclic causal input");
    }

    #[test]
    fn symptom_outside_dag_yields_empty() {
        let (mut db, _, _, faulty) = dag_env();
        let orphan = db.add_entity(EntityKind::Service, "orphan");
        for t in 0..200u64 {
            db.record(orphan, MetricKind::Latency, t, 100.0);
        }
        let ranked = run(&db, orphan, &[faulty]);
        assert!(ranked.is_empty());
    }

    #[test]
    fn dag_utilities() {
        let (db, frontend, middle, faulty) = dag_env();
        let dag = CausalDag::build(&db);
        let topo = dag.topological_order().expect("acyclic");
        let pos = |e: EntityId| topo.iter().position(|&x| x == e).unwrap();
        assert!(pos(faulty) < pos(middle));
        assert!(pos(middle) < pos(frontend));
        let mut anc = dag.ancestors(frontend);
        anc.sort();
        assert_eq!(anc, vec![middle, faulty].into_iter().collect::<Vec<_>>().tap_sorted());
    }

    trait TapSorted {
        fn tap_sorted(self) -> Self;
    }
    impl TapSorted for Vec<EntityId> {
        fn tap_sorted(mut self) -> Self {
            self.sort();
            self
        }
    }
}
