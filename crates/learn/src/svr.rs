//! Linear ε-insensitive support vector regression.
//!
//! One of the four candidate factor families of §6.6.1 ("SVM" in Figure
//! 8a). We train a linear SVR in the primal with stochastic subgradient
//! descent on the regularized ε-insensitive loss — simple and deterministic
//! (fixed sample order with a decaying step), which is all the reproduction
//! needs: the study's point is comparing model *families*, not maximizing
//! each family's tuning.

use crate::linalg::dot;
use crate::model::{validate, FitError, Regressor};
use serde::{Deserialize, Serialize};

/// Training hyperparameters for [`LinearSvr`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvrParams {
    /// Width of the no-penalty tube around the target (in standardized
    /// target units).
    pub epsilon: f64,
    /// Regularization strength (weight-decay coefficient).
    pub lambda: f64,
    /// Number of passes over the data.
    pub epochs: usize,
    /// Initial learning rate (decays as 1/(1 + t·decay)).
    pub learning_rate: f64,
}

impl Default for SvrParams {
    fn default() -> Self {
        Self {
            epsilon: 0.05,
            lambda: 1e-4,
            epochs: 60,
            learning_rate: 0.05,
        }
    }
}

/// A fitted linear SVR.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvr {
    feature_means: Vec<f64>,
    feature_stds: Vec<f64>,
    target_mean: f64,
    target_std: f64,
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvr {
    /// Fit with the given hyperparameters.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], params: &SvrParams) -> Result<Self, FitError> {
        validate(xs, ys)?;
        let n = xs.len();
        let d = xs[0].len();

        // Standardize both sides.
        let (feature_means, feature_stds) = standardize_stats(xs, d);
        let target_mean = ys.iter().sum::<f64>() / n as f64;
        let target_std = {
            let v = ys.iter().map(|&y| (y - target_mean).powi(2)).sum::<f64>() / n as f64;
            let s = v.sqrt();
            if s < 1e-9 {
                1.0
            } else {
                s
            }
        };
        let std_x: Vec<Vec<f64>> = xs
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(j, &v)| (v - feature_means[j]) / feature_stds[j])
                    .collect()
            })
            .collect();
        let std_y: Vec<f64> = ys.iter().map(|&y| (y - target_mean) / target_std).collect();

        let mut weights = vec![0.0; d];
        let mut bias = 0.0;
        let mut t = 0usize;
        for _epoch in 0..params.epochs {
            for (x, &y) in std_x.iter().zip(&std_y) {
                t += 1;
                let lr = params.learning_rate / (1.0 + 0.001 * t as f64);
                let pred = dot(&weights, x) + bias;
                let err = pred - y;
                // Subgradient of the ε-insensitive loss.
                let g = if err > params.epsilon {
                    1.0
                } else if err < -params.epsilon {
                    -1.0
                } else {
                    0.0
                };
                for (w, &xi) in weights.iter_mut().zip(x) {
                    *w -= lr * (g * xi + params.lambda * *w);
                }
                bias -= lr * g;
            }
        }

        Ok(Self {
            feature_means,
            feature_stds,
            target_mean,
            target_std,
            weights,
            bias,
        })
    }
}

pub(crate) fn standardize_stats(xs: &[Vec<f64>], d: usize) -> (Vec<f64>, Vec<f64>) {
    let n = xs.len();
    let mut means = vec![0.0; d];
    for row in xs {
        for (m, &v) in means.iter_mut().zip(row) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n as f64;
    }
    let mut stds = vec![0.0; d];
    for row in xs {
        for j in 0..d {
            let dlt = row[j] - means[j];
            stds[j] += dlt * dlt;
        }
    }
    for s in &mut stds {
        *s = (*s / n as f64).sqrt();
        if *s < 1e-9 {
            *s = 1.0;
        }
    }
    (means, stds)
}

impl Regressor for LinearSvr {
    fn predict(&self, x: &[f64]) -> f64 {
        // Standardize-and-dot inline, preserving the accumulation order of
        // the allocating `dot(&weights, &std)` formulation it replaces.
        let mut acc = 0.0;
        for (j, &v) in x.iter().enumerate() {
            acc += self.weights[j] * ((v - self.feature_means[j]) / self.feature_stds[j]);
        }
        (acc + self.bias) * self.target_std + self.target_mean
    }

    fn num_features(&self) -> usize {
        self.weights.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_linear_data_approximately() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 * 0.1]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 4.0 * r[0] - 1.0).collect();
        let svr = LinearSvr::fit(&xs, &ys, &SvrParams::default()).unwrap();
        // Mid-range predictions within ~15% of the target scale.
        let scale = 40.0;
        for &x in &[1.0, 5.0, 9.0] {
            let pred = svr.predict(&[x]);
            let truth = 4.0 * x - 1.0;
            assert!(
                (pred - truth).abs() < 0.15 * scale,
                "x={x}: pred {pred} vs {truth}"
            );
        }
    }

    #[test]
    fn constant_target_predicts_constant() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys = vec![7.0; 20];
        let svr = LinearSvr::fit(&xs, &ys, &SvrParams::default()).unwrap();
        assert!((svr.predict(&[10.0]) - 7.0).abs() < 0.5);
    }

    #[test]
    fn epsilon_tube_ignores_small_noise() {
        // With a wide tube the fit should not chase small wiggles.
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..50)
            .map(|i| 2.0 * i as f64 + if i % 2 == 0 { 0.01 } else { -0.01 })
            .collect();
        let params = SvrParams {
            epsilon: 0.5,
            ..Default::default()
        };
        let svr = LinearSvr::fit(&xs, &ys, &params).unwrap();
        let pred_mid = svr.predict(&[25.0]);
        assert!((pred_mid - 50.0).abs() < 5.0, "pred {pred_mid}");
    }

    #[test]
    fn deterministic() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 6) as f64, (i % 4) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0] - r[1]).collect();
        let a = LinearSvr::fit(&xs, &ys, &SvrParams::default()).unwrap();
        let b = LinearSvr::fit(&xs, &ys, &SvrParams::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_errors() {
        assert!(LinearSvr::fit(&[], &[], &SvrParams::default()).is_err());
    }
}
