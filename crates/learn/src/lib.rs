//! Learning substrate for the Murphy reproduction.
//!
//! Murphy's factors `P_v(v | in_nbrs(v))` relate an entity's metrics in a
//! time slice to the metrics of its incoming neighbors in the same slice
//! (§4.2). The paper evaluates four candidate model families for this
//! sub-task on a production data set (§6.6.1, Figure 8a) — ridge linear
//! regression, Gaussian mixture models, SVMs, and small neural networks —
//! and finds ridge regression best. All four are implemented here, from
//! scratch:
//!
//! * [`linalg`] — small dense matrices, Cholesky factorization and solves,
//! * [`ridge`] — ridge regression (Murphy's production choice),
//! * [`gmm`] — diagonal-covariance Gaussian mixture fitted by EM with
//!   conditional-expectation prediction,
//! * [`svr`] — linear ε-insensitive support vector regression via SGD,
//! * [`mlp`] — a small multilayer perceptron (≤3 layers, 5 neurons each,
//!   matching the paper's footnote 10) trained by backprop,
//! * [`features`] — top-B neighbor-metric selection by absolute Pearson
//!   correlation (B = 10, the "one in ten rule" of §4.2),
//! * [`model`] — the [`model::Regressor`] abstraction, [`model::ModelKind`]
//!   factory, and the [`model::TrainedModel`] (regressor + residual noise)
//!   the MRF samples from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod features;
pub mod gmm;
pub mod linalg;
pub mod mlp;
pub mod model;
pub mod ridge;
pub mod svr;

pub use features::select_top_features;
pub use gmm::GaussianMixture;
pub use linalg::Matrix;
pub use mlp::Mlp;
pub use model::{FitError, ModelKind, Regressor, TrainedModel};
pub use ridge::Ridge;
pub use svr::LinearSvr;
