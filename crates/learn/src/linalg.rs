//! Small dense linear algebra.
//!
//! Just enough for the learning substrate: row-major matrices, products,
//! and a Cholesky factorization for the symmetric positive-definite
//! normal-equation systems of ridge regression. Matrices here are tiny
//! (feature counts are capped at B = 10 by feature selection), so clarity
//! beats blocking/SIMD tricks.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from row slices; all rows must share a length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map(|x| x.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `selfᵀ · self` — the Gram matrix (cols × cols).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += self.get(r, i) * self.get(r, j);
                }
                g.set(i, j, s);
                g.set(j, i, s);
            }
        }
        g
    }

    /// `selfᵀ · y` for a vector `y` of length `rows`.
    pub fn t_mul_vec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let yr = y[r];
            for c in 0..self.cols {
                out[c] += self.get(r, c) * yr;
            }
        }
        out
    }

    /// `self · x` for a vector `x` of length `cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| dot(self.row(r), x))
            .collect()
    }

    /// Add `lambda` to every diagonal element in place (ridge shift).
    pub fn add_diagonal(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            let v = self.get(i, i);
            self.set(i, i, v + lambda);
        }
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Cholesky factorization of a symmetric positive-definite matrix.
///
/// Returns the lower-triangular factor `L` with `A = L·Lᵀ`, or `None` if
/// `A` is not (numerically) positive definite.
pub fn cholesky(a: &Matrix) -> Option<Matrix> {
    let n = a.rows();
    if a.cols() != n {
        return None;
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Some(l)
}

/// Solve `A·x = b` for SPD `A` via Cholesky (forward + backward
/// substitution). Returns `None` when `A` is not positive definite.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let l = cholesky(a)?;
    let n = l.rows();
    if b.len() != n {
        return None;
    }
    // Forward solve L·y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l.get(i, k) * y[k];
        }
        y[i] = s / l.get(i, i);
    }
    // Backward solve Lᵀ·x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in (i + 1)..n {
            s -= l.get(k, i) * x[k];
        }
        x[i] = s / l.get(i, i);
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_vec_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn from_rows_and_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn gram_matrix() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let g = m.gram();
        // [[1,3],[2,4]]·[[1,2],[3,4]] = [[10,14],[14,20]]
        assert_eq!(g.get(0, 0), 10.0);
        assert_eq!(g.get(0, 1), 14.0);
        assert_eq!(g.get(1, 0), 14.0);
        assert_eq!(g.get(1, 1), 20.0);
    }

    #[test]
    fn transpose_vec_product() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = m.t_mul_vec(&[1.0, 1.0]);
        assert_eq!(v, vec![4.0, 6.0]);
        let w = m.mul_vec(&[1.0, 1.0]);
        assert_eq!(w, vec![3.0, 7.0]);
    }

    #[test]
    fn cholesky_known_factor() {
        // A = [[4,2],[2,3]] = L·Lᵀ with L = [[2,0],[1,√2]].
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let l = cholesky(&a).unwrap();
        assert!((l.get(0, 0) - 2.0).abs() < 1e-12);
        assert!((l.get(1, 0) - 1.0).abs() < 1e-12);
        assert!((l.get(1, 1) - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(l.get(0, 1), 0.0);
    }

    #[test]
    fn cholesky_rejects_non_pd() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // indefinite
        assert!(cholesky(&a).is_none());
        let z = Matrix::zeros(2, 2);
        assert!(cholesky(&z).is_none());
        let rect = Matrix::zeros(2, 3);
        assert!(cholesky(&rect).is_none());
    }

    #[test]
    fn solve_spd_round_trip() {
        let a = Matrix::from_rows(&[
            vec![6.0, 2.0, 1.0],
            vec![2.0, 5.0, 2.0],
            vec![1.0, 2.0, 4.0],
        ]);
        let x_true = [1.0, -2.0, 3.0];
        let b = a.mul_vec(&x_true);
        let x = solve_spd(&a, &b).unwrap();
        assert_vec_close(&x, &x_true, 1e-10);
    }

    #[test]
    fn solve_rejects_bad_dims() {
        let a = Matrix::identity(3);
        assert!(solve_spd(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn add_diagonal_shifts() {
        let mut m = Matrix::zeros(2, 2);
        m.add_diagonal(0.5);
        assert_eq!(m.get(0, 0), 0.5);
        assert_eq!(m.get(1, 1), 0.5);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
