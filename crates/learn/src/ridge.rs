//! Ridge regression.
//!
//! Murphy's production deployment uses ridge regression ("a form of robust
//! linear regression") for its factors, chosen after the model-selection
//! study of §6.6.1. We fit by solving the regularized normal equations
//! `(XᵀX + λI)·w = Xᵀy` with Cholesky, over standardized features and a
//! centered target — standardization makes one λ meaningful across metrics
//! with wildly different scales (CPU %, MB, sessions).
//!
//! Prediction does **not** re-standardize per call. At fit time the
//! standardization is folded into the parameters — `w'_j = w_j / σ_j` and
//! `b' = b − Σ_j μ_j·w'_j` — so the hot path is a single multiply-add
//! loop over raw features:
//!
//! ```text
//! ŷ = b' + Σ_j x_j · w'_j
//! ```
//!
//! Algebraically identical to standardize-then-dot; numerically it
//! differs by ordinary rounding (≲1 ulp per term) except where the folded
//! terms are exactly zero (constant features, single-sample fits), where
//! it is bit-identical — `crates/learn/tests/ridge_parity.rs` pins both
//! claims. The standardized parameters are retained for inspection and
//! for the [`Ridge::predict_standardized`] reference path.

use crate::linalg::{solve_spd, Matrix};
use crate::model::{validate, validate_flat, FitError, Regressor};
use serde::{Deserialize, Serialize};

/// A fitted ridge regression model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ridge {
    /// Per-feature means used for standardization.
    feature_means: Vec<f64>,
    /// Per-feature standard deviations (floored).
    feature_stds: Vec<f64>,
    /// Weights in standardized space.
    weights: Vec<f64>,
    /// Target mean (intercept in standardized space).
    intercept: f64,
    /// Pre-divided weights `w_j / σ_j` over **raw** features.
    fused_weights: Vec<f64>,
    /// Intercept with the feature means folded in:
    /// `intercept − Σ_j μ_j · fused_weights_j`.
    fused_intercept: f64,
}

impl Ridge {
    /// Default regularization strength.
    pub const DEFAULT_LAMBDA: f64 = 1.0;

    /// Fit on rows `xs` and targets `ys` with regularization `lambda`.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Result<Self, FitError> {
        validate(xs, ys)?;
        Self::fit_rows(xs.iter().map(Vec::as_slice), xs[0].len(), ys, lambda)
    }

    /// Fit from a row-major flat buffer of `ys.len()` rows × `width`
    /// features. Runs the same operations in the same order as
    /// [`Ridge::fit`] on the equivalent nested rows, so the fitted model
    /// is bit-identical (pinned by `crates/learn/tests/flat_parity.rs`).
    pub fn fit_flat(flat: &[f64], width: usize, ys: &[f64], lambda: f64) -> Result<Self, FitError> {
        validate_flat(flat, width, ys)?;
        if width == 0 {
            // `chunks_exact(0)` panics; a zero-feature fit is just the
            // target mean over `ys.len()` empty rows.
            const EMPTY: &[f64] = &[];
            return Self::fit_rows(std::iter::repeat_n(EMPTY, ys.len()), 0, ys, lambda);
        }
        Self::fit_rows(flat.chunks_exact(width), width, ys, lambda)
    }

    /// The shared fit over any clonable row iterator — both entry points
    /// feed this, so there is exactly one numeric path to keep bit-stable.
    fn fit_rows<'a, I>(rows: I, d: usize, ys: &[f64], lambda: f64) -> Result<Self, FitError>
    where
        I: Iterator<Item = &'a [f64]> + Clone,
    {
        let n = ys.len();

        // Standardize features; center target.
        let mut feature_means = vec![0.0; d];
        for row in rows.clone() {
            for (m, &v) in feature_means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut feature_means {
            *m /= n as f64;
        }
        let mut feature_stds = vec![0.0; d];
        for row in rows.clone() {
            for j in 0..d {
                let dlt = row[j] - feature_means[j];
                feature_stds[j] += dlt * dlt;
            }
        }
        for s in &mut feature_stds {
            *s = (*s / n as f64).sqrt();
            if *s < 1e-9 {
                *s = 1.0; // constant feature: zero after centering
            }
        }
        let intercept = ys.iter().sum::<f64>() / n as f64;

        let std_rows: Vec<Vec<f64>> = rows
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(j, &v)| (v - feature_means[j]) / feature_stds[j])
                    .collect()
            })
            .collect();
        let x = Matrix::from_rows(&std_rows);
        let yc: Vec<f64> = ys.iter().map(|&y| y - intercept).collect();

        let mut gram = x.gram();
        gram.add_diagonal(lambda.max(1e-12));
        let xty = x.t_mul_vec(&yc);
        let weights = solve_spd(&gram, &xty)
            .ok_or(FitError::Numeric("ridge normal equations not positive definite"))?;

        // Fold the standardization into the parameters once, at fit time.
        let fused_weights: Vec<f64> = weights
            .iter()
            .zip(&feature_stds)
            .map(|(&w, &s)| w / s)
            .collect();
        let mut fused_intercept = intercept;
        for (&m, &fw) in feature_means.iter().zip(&fused_weights) {
            fused_intercept -= m * fw;
        }

        Ok(Self {
            feature_means,
            feature_stds,
            weights,
            intercept,
            fused_weights,
            fused_intercept,
        })
    }

    /// Weights in standardized feature space (for inspection/tests).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Intercept (the target mean).
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Per-feature standardization means (for inspection/tests).
    pub fn feature_means(&self) -> &[f64] {
        &self.feature_means
    }

    /// Per-feature standardization deviations, floored (for
    /// inspection/tests).
    pub fn feature_stds(&self) -> &[f64] {
        &self.feature_stds
    }

    /// Pre-divided weights over raw features (`w_j / σ_j`).
    pub fn fused_weights(&self) -> &[f64] {
        &self.fused_weights
    }

    /// Intercept with the feature means folded in.
    pub fn fused_intercept(&self) -> f64 {
        self.fused_intercept
    }

    /// The legacy standardize-then-dot formulation, kept as the reference
    /// implementation for the fused hot path (`ridge_parity.rs` compares
    /// the two).
    pub fn predict_standardized(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.weights.len());
        let mut acc = 0.0;
        for (j, &v) in x.iter().enumerate() {
            acc += (v - self.feature_means[j]) / self.feature_stds[j] * self.weights[j];
        }
        self.intercept + acc
    }
}

impl Regressor for Ridge {
    fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.fused_weights.len());
        // One multiply-add per feature over raw values — no subtraction or
        // division in the loop. Plain `acc + v * w` (not `f64::mul_add`):
        // without compile-time FMA codegen, `mul_add` lowers to a slow
        // libm call and changes rounding.
        let mut acc = self.fused_intercept;
        for (&v, &w) in x.iter().zip(&self.fused_weights) {
            acc += v * w;
        }
        acc
    }

    fn predict_indexed(&self, state: &[f64], positions: &[usize], _scratch: &mut Vec<f64>) -> f64 {
        debug_assert_eq!(positions.len(), self.fused_weights.len());
        // Same operation sequence as `predict` on a gathered buffer, so
        // the gather-free path is bit-identical to gather-then-predict.
        let mut acc = self.fused_intercept;
        for (&p, &w) in positions.iter().zip(&self.fused_weights) {
            acc += state[p] * w;
        }
        acc
    }

    fn num_features(&self) -> usize {
        self.fused_weights.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_linear_relationship() {
        // y = 3x1 - 2x2 + 5 with no noise; small lambda ≈ OLS.
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, ((i * 7) % 13) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 5.0).collect();
        let model = Ridge::fit(&xs, &ys, 1e-9).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            assert!((model.predict(x) - y).abs() < 1e-4);
        }
        // Extrapolation stays linear.
        assert!((model.predict(&[100.0, 0.0]) - 305.0).abs() < 1e-2);
    }

    #[test]
    fn regularization_shrinks_weights() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 2.0 * r[0]).collect();
        let loose = Ridge::fit(&xs, &ys, 1e-6).unwrap();
        let tight = Ridge::fit(&xs, &ys, 1000.0).unwrap();
        assert!(tight.weights()[0].abs() < loose.weights()[0].abs());
        // Heavy shrinkage regresses towards the mean prediction.
        let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
        assert!((tight.predict(&[0.0]) - mean_y).abs() < (loose.predict(&[0.0]) - mean_y).abs());
    }

    #[test]
    fn constant_feature_is_harmless() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 7.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0] * 1.5 + 2.0).collect();
        let model = Ridge::fit(&xs, &ys, 1e-6).unwrap();
        assert!((model.predict(&[10.0, 7.0]) - 17.0).abs() < 1e-6);
        // The constant column carries ~zero weight.
        assert!(model.weights()[1].abs() < 1e-9);
    }

    #[test]
    fn zero_feature_dimension_predicts_mean() {
        let xs: Vec<Vec<f64>> = vec![vec![]; 10];
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let model = Ridge::fit(&xs, &ys, 1.0).unwrap();
        assert!((model.predict(&[]) - 4.5).abs() < 1e-12);
        assert_eq!(model.num_features(), 0);
    }

    #[test]
    fn errors_on_empty_input() {
        assert!(Ridge::fit(&[], &[], 1.0).is_err());
    }

    #[test]
    fn robust_to_feature_scale() {
        // Same relationship, one feature in units 1e6 times larger: with
        // standardization both fits should predict equally well.
        let xs_small: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let xs_big: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 * 1e6]).collect();
        let ys: Vec<f64> = (0..40).map(|i| 2.0 * i as f64 + 1.0).collect();
        let small = Ridge::fit(&xs_small, &ys, 1.0).unwrap();
        let big = Ridge::fit(&xs_big, &ys, 1.0).unwrap();
        let e_small = (small.predict(&[20.0]) - 41.0).abs();
        let e_big = (big.predict(&[20.0e6]) - 41.0).abs();
        assert!((e_small - e_big).abs() < 1e-6);
    }
}
