//! The prediction-model abstraction.
//!
//! A [`Regressor`] predicts one target metric value from a feature vector
//! of neighbor-metric values in the same time slice. A [`TrainedModel`]
//! bundles a regressor with the residual standard deviation estimated on
//! the training data — which is what makes the factor a *distribution*
//! `P_v(v | in_nbrs(v))` the Gibbs sampler can draw from, not just a point
//! predictor.

use crate::gmm::GaussianMixture;
use crate::mlp::Mlp;
use crate::ridge::Ridge;
use crate::svr::LinearSvr;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error fitting a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// No training rows were provided.
    EmptyTrainingSet,
    /// Rows have inconsistent or zero feature dimension mismatching `y`.
    DimensionMismatch,
    /// The underlying numeric routine failed to converge / factorize.
    Numeric(&'static str),
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::EmptyTrainingSet => write!(f, "empty training set"),
            FitError::DimensionMismatch => write!(f, "feature/target dimension mismatch"),
            FitError::Numeric(msg) => write!(f, "numeric failure: {msg}"),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted regression model: features → predicted target.
pub trait Regressor: Send + Sync {
    /// Predict the target for one feature vector.
    fn predict(&self, x: &[f64]) -> f64;

    /// Predict from a dense state vector and the positions of this
    /// model's features within it, without materializing the feature
    /// vector when the model can avoid it.
    ///
    /// The default gathers into `scratch` and calls [`Regressor::predict`]
    /// — bit-identical to a caller-side gather. Linear models override
    /// with a direct indexed dot product (same operation sequence, so
    /// still bit-identical) and never touch `scratch`.
    fn predict_indexed(&self, state: &[f64], positions: &[usize], scratch: &mut Vec<f64>) -> f64 {
        scratch.clear();
        scratch.extend(positions.iter().map(|&p| state[p]));
        self.predict(scratch)
    }

    /// Number of features the model expects.
    fn num_features(&self) -> usize;
}

/// Which model family to use for the factors (§6.6.1 candidates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Ridge linear regression — the paper's production choice.
    Ridge,
    /// Diagonal-covariance Gaussian mixture (EM).
    Gmm,
    /// Linear ε-insensitive SVR (SGD).
    Svr,
    /// Small neural network (≤3 layers, 5 neurons each).
    Mlp,
}

impl ModelKind {
    /// All candidates, in the Figure 8a legend order.
    pub const ALL: [ModelKind; 4] = [ModelKind::Ridge, ModelKind::Gmm, ModelKind::Svr, ModelKind::Mlp];

    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Ridge => "linear regression",
            ModelKind::Gmm => "GMM",
            ModelKind::Svr => "SVM",
            ModelKind::Mlp => "neural network",
        }
    }

    /// Fit a model of this kind. `xs` are training rows (one feature vector
    /// per time slice), `ys` the per-slice targets.
    pub fn fit(self, xs: &[Vec<f64>], ys: &[f64], seed: u64) -> Result<Box<dyn Regressor>, FitError> {
        validate(xs, ys)?;
        match self {
            ModelKind::Ridge => Ok(Box::new(Ridge::fit(xs, ys, Ridge::DEFAULT_LAMBDA)?)),
            ModelKind::Gmm => Ok(Box::new(GaussianMixture::fit(xs, ys, 3, seed)?)),
            ModelKind::Svr => Ok(Box::new(LinearSvr::fit(xs, ys, &Default::default())?)),
            ModelKind::Mlp => Ok(Box::new(Mlp::fit(xs, ys, &Default::default(), seed)?)),
        }
    }

    /// [`ModelKind::fit`] from a row-major flat buffer of `ys.len()` rows ×
    /// `width` features. Ridge (the default family, and the hot path) fits
    /// straight off the buffer; the other families materialize rows once.
    /// Either way the fitted model is bit-identical to `fit` on the
    /// equivalent nested rows.
    pub fn fit_flat(
        self,
        flat: &[f64],
        width: usize,
        ys: &[f64],
        seed: u64,
    ) -> Result<Box<dyn Regressor>, FitError> {
        validate_flat(flat, width, ys)?;
        match self {
            ModelKind::Ridge => Ok(Box::new(Ridge::fit_flat(flat, width, ys, Ridge::DEFAULT_LAMBDA)?)),
            other => {
                let rows: Vec<Vec<f64>> = if width == 0 {
                    vec![Vec::new(); ys.len()]
                } else {
                    flat.chunks_exact(width).map(<[f64]>::to_vec).collect()
                };
                other.fit(&rows, ys, seed)
            }
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

pub(crate) fn validate_flat(flat: &[f64], width: usize, ys: &[f64]) -> Result<(), FitError> {
    if ys.is_empty() {
        return Err(FitError::EmptyTrainingSet);
    }
    if flat.len() != width * ys.len() {
        return Err(FitError::DimensionMismatch);
    }
    Ok(())
}

pub(crate) fn validate(xs: &[Vec<f64>], ys: &[f64]) -> Result<(), FitError> {
    if xs.is_empty() || ys.is_empty() {
        return Err(FitError::EmptyTrainingSet);
    }
    if xs.len() != ys.len() {
        return Err(FitError::DimensionMismatch);
    }
    let d = xs[0].len();
    if xs.iter().any(|r| r.len() != d) {
        return Err(FitError::DimensionMismatch);
    }
    Ok(())
}

/// A fitted factor: regressor + residual noise scale.
///
/// `residual_std` is the standard deviation of the training residuals; the
/// Gibbs sampler adds `N(0, residual_std²)` noise when resampling a metric
/// so that the factor behaves as a conditional distribution.
pub struct TrainedModel {
    regressor: Box<dyn Regressor>,
    /// Residual standard deviation on the training data.
    pub residual_std: f64,
    /// Training mean absolute error (for model-selection studies).
    pub train_mae: f64,
}

impl TrainedModel {
    /// Fit a model of `kind` and estimate its residual scale.
    pub fn fit(kind: ModelKind, xs: &[Vec<f64>], ys: &[f64], seed: u64) -> Result<Self, FitError> {
        let regressor = kind.fit(xs, ys, seed)?;
        let mut sq = 0.0;
        let mut abs = 0.0;
        for (x, &y) in xs.iter().zip(ys) {
            let e = regressor.predict(x) - y;
            sq += e * e;
            abs += e.abs();
        }
        let n = xs.len() as f64;
        Ok(Self {
            regressor,
            residual_std: (sq / n).sqrt(),
            train_mae: abs / n,
        })
    }

    /// [`TrainedModel::fit`] from a row-major flat buffer (see
    /// [`ModelKind::fit_flat`]). The residual accumulation visits rows in
    /// the same order with the same operations, so the result — regressor,
    /// `residual_std`, and `train_mae` — is bit-identical to the
    /// nested-rows path.
    pub fn fit_flat(
        kind: ModelKind,
        flat: &[f64],
        width: usize,
        ys: &[f64],
        seed: u64,
    ) -> Result<Self, FitError> {
        let regressor = kind.fit_flat(flat, width, ys, seed)?;
        let mut sq = 0.0;
        let mut abs = 0.0;
        if width == 0 {
            for &y in ys {
                let e = regressor.predict(&[]) - y;
                sq += e * e;
                abs += e.abs();
            }
        } else {
            for (x, &y) in flat.chunks_exact(width).zip(ys) {
                let e = regressor.predict(x) - y;
                sq += e * e;
                abs += e.abs();
            }
        }
        let n = ys.len() as f64;
        Ok(Self {
            regressor,
            residual_std: (sq / n).sqrt(),
            train_mae: abs / n,
        })
    }

    /// Point prediction.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.regressor.predict(x)
    }

    /// Point prediction straight from a dense state vector and feature
    /// positions (see [`Regressor::predict_indexed`]).
    pub fn predict_indexed(&self, state: &[f64], positions: &[usize], scratch: &mut Vec<f64>) -> f64 {
        self.regressor.predict_indexed(state, positions, scratch)
    }

    /// Draw one sample from `N(predict(x), residual_std²)`.
    pub fn sample<R: Rng>(&self, x: &[f64], rng: &mut R) -> f64 {
        self.predict(x) + gaussian(rng) * self.residual_std
    }

    /// [`TrainedModel::sample`] from a dense state vector and feature
    /// positions. Consumes the RNG identically to `sample` on a gathered
    /// buffer, so draws are bit-identical for the same RNG state.
    pub fn sample_indexed<R: Rng>(
        &self,
        state: &[f64],
        positions: &[usize],
        scratch: &mut Vec<f64>,
        rng: &mut R,
    ) -> f64 {
        self.predict_indexed(state, positions, scratch) + gaussian(rng) * self.residual_std
    }

    /// Feature count.
    pub fn num_features(&self) -> usize {
        self.regressor.num_features()
    }
}

impl fmt::Debug for TrainedModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrainedModel")
            .field("num_features", &self.num_features())
            .field("residual_std", &self.residual_std)
            .field("train_mae", &self.train_mae)
            .finish()
    }
}

/// Standard normal sample via Box–Muller (avoids a rand_distr dependency).
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn linear_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![i as f64 * 0.1, (i % 7) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| 2.0 * r[0] - 0.5 * r[1] + 1.0).collect();
        (xs, ys)
    }

    #[test]
    fn every_kind_fits_linear_data() {
        let (xs, ys) = linear_data();
        for kind in ModelKind::ALL {
            let model = TrainedModel::fit(kind, &xs, &ys, 7).unwrap();
            assert_eq!(model.num_features(), 2);
            assert!(
                model.train_mae.is_finite(),
                "{kind}: non-finite training error"
            );
        }
    }

    #[test]
    fn ridge_nails_linear_data() {
        let (xs, ys) = linear_data();
        let model = TrainedModel::fit(ModelKind::Ridge, &xs, &ys, 0).unwrap();
        // DEFAULT_LAMBDA shrinks slightly; the fit is near-exact, not exact.
        assert!(model.train_mae < 0.2, "mae = {}", model.train_mae);
        assert!(model.residual_std < 0.3);
        let pred = model.predict(&[1.0, 2.0]);
        assert!((pred - (2.0 - 1.0 + 1.0)).abs() < 0.2, "pred = {pred}");
    }

    #[test]
    fn validation_errors() {
        assert_eq!(validate(&[], &[]), Err(FitError::EmptyTrainingSet));
        assert_eq!(
            validate(&[vec![1.0]], &[1.0, 2.0]),
            Err(FitError::DimensionMismatch)
        );
        assert_eq!(
            validate(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]),
            Err(FitError::DimensionMismatch)
        );
    }

    #[test]
    fn sampling_centers_on_prediction() {
        let (xs, ys) = linear_data();
        let model = TrainedModel::fit(ModelKind::Ridge, &xs, &ys, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let x = [2.0, 3.0];
        let mean_pred = model.predict(&x);
        let n = 2000;
        let avg: f64 = (0..n).map(|_| model.sample(&x, &mut rng)).sum::<f64>() / n as f64;
        assert!(
            (avg - mean_pred).abs() < 0.1 + 3.0 * model.residual_std,
            "avg {avg} vs pred {mean_pred}"
        );
    }

    #[test]
    fn gaussian_has_unit_scale() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn labels_match_figure_8a_legend() {
        let labels: Vec<&str> = ModelKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["linear regression", "GMM", "SVM", "neural network"]);
    }
}
