//! Gaussian mixture model with conditional-expectation prediction.
//!
//! One of the four candidate factor families of §6.6.1. We fit a
//! diagonal-covariance mixture over the *joint* space (features ++ target)
//! with expectation–maximization, then predict the target for a feature
//! vector as the responsibility-weighted average of the components' target
//! means — i.e. `E[y | x]` under the fitted mixture.

use crate::model::{validate, FitError, Regressor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Variance floor to keep components from collapsing onto single points.
const VAR_FLOOR: f64 = 1e-6;

/// A fitted diagonal-covariance Gaussian mixture regressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianMixture {
    /// Mixture weights (sum to 1).
    weights: Vec<f64>,
    /// Component means over the joint space; last coordinate is the target.
    means: Vec<Vec<f64>>,
    /// Component diagonal variances over the joint space.
    variances: Vec<Vec<f64>>,
    num_features: usize,
}

impl GaussianMixture {
    /// Fit with `k` components (capped by sample count) via EM.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], k: usize, seed: u64) -> Result<Self, FitError> {
        validate(xs, ys)?;
        let n = xs.len();
        let d = xs[0].len();
        let joint_dim = d + 1;
        let k = k.clamp(1, n);

        // Joint data rows.
        let data: Vec<Vec<f64>> = xs
            .iter()
            .zip(ys)
            .map(|(x, &y)| {
                let mut row = x.clone();
                row.push(y);
                row
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(seed);
        let global_var: Vec<f64> = (0..joint_dim)
            .map(|j| {
                let mean = data.iter().map(|r| r[j]).sum::<f64>() / n as f64;
                let var = data.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / n as f64;
                var.max(VAR_FLOOR)
            })
            .collect();
        // Init: farthest-point means in variance-normalized coordinates.
        // A random init can put every mean in one cluster and leave EM at a
        // merged local optimum; spreading means apart avoids that.
        let norm_dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .zip(&global_var)
                .map(|((x, y), v)| (x - y) * (x - y) / v)
                .sum()
        };
        let mut means: Vec<Vec<f64>> = vec![data[rng.gen_range(0..n)].clone()];
        while means.len() < k {
            let far = data
                .iter()
                .max_by(|a, b| {
                    let da: f64 = means.iter().map(|m| norm_dist(a, m)).fold(f64::INFINITY, f64::min);
                    let db: f64 = means.iter().map(|m| norm_dist(b, m)).fold(f64::INFINITY, f64::min);
                    da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("data non-empty");
            means.push(far.clone());
        }
        let mut variances: Vec<Vec<f64>> = vec![global_var.clone(); k];
        let mut weights = vec![1.0 / k as f64; k];

        let mut resp = vec![vec![0.0; k]; n];
        let mut prev_ll = f64::NEG_INFINITY;
        for _iter in 0..100 {
            // E-step: responsibilities via log-sum-exp.
            let mut ll = 0.0;
            for (i, row) in data.iter().enumerate() {
                let logp: Vec<f64> = (0..k)
                    .map(|c| weights[c].max(1e-300).ln() + log_diag_gauss(row, &means[c], &variances[c]))
                    .collect();
                let max = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let denom: f64 = logp.iter().map(|&lp| (lp - max).exp()).sum();
                ll += max + denom.ln();
                for c in 0..k {
                    resp[i][c] = (logp[c] - max).exp() / denom;
                }
            }
            // M-step.
            for c in 0..k {
                let nc: f64 = resp.iter().map(|r| r[c]).sum();
                if nc < 1e-9 {
                    // Dead component: reinitialize on a random point.
                    means[c] = data[rng.gen_range(0..n)].clone();
                    variances[c] = global_var.clone();
                    weights[c] = 1.0 / n as f64;
                    continue;
                }
                weights[c] = nc / n as f64;
                for j in 0..joint_dim {
                    let m = data.iter().zip(&resp).map(|(r, rs)| rs[c] * r[j]).sum::<f64>() / nc;
                    means[c][j] = m;
                }
                for j in 0..joint_dim {
                    let v = data
                        .iter()
                        .zip(&resp)
                        .map(|(r, rs)| rs[c] * (r[j] - means[c][j]).powi(2))
                        .sum::<f64>()
                        / nc;
                    variances[c][j] = v.max(VAR_FLOOR);
                }
            }
            // Renormalize weights (dead-component resets can unbalance them).
            let wsum: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= wsum;
            }
            if (ll - prev_ll).abs() < 1e-6 * (1.0 + ll.abs()) {
                break;
            }
            prev_ll = ll;
        }

        Ok(Self {
            weights,
            means,
            variances,
            num_features: d,
        })
    }

    /// Number of mixture components.
    pub fn num_components(&self) -> usize {
        self.weights.len()
    }
}

/// Log-density of a diagonal Gaussian at `x` (over the first
/// `mean.len().min(x.len())` coordinates — used for both joint and
/// feature-marginal evaluation).
fn log_diag_gauss(x: &[f64], mean: &[f64], var: &[f64]) -> f64 {
    let dim = x.len().min(mean.len());
    let mut lp = 0.0;
    for j in 0..dim {
        let d = x[j] - mean[j];
        lp += -0.5 * ((2.0 * std::f64::consts::PI * var[j]).ln() + d * d / var[j]);
    }
    lp
}

impl Regressor for GaussianMixture {
    fn predict(&self, x: &[f64]) -> f64 {
        // Responsibilities from the feature marginal (first d coords).
        // Two passes over the handful of components — one for the
        // log-sum-exp shift, one for the weighted mean — so the sampler's
        // hot path performs no per-call allocation.
        let logp = |c: usize| {
            self.weights[c].max(1e-300).ln()
                + log_diag_gauss(x, &self.means[c][..self.num_features], &self.variances[c][..self.num_features])
        };
        let mut max = f64::NEG_INFINITY;
        for c in 0..self.weights.len() {
            max = max.max(logp(c));
        }
        if !max.is_finite() {
            // All components infinitely unlikely: fall back to the global mean.
            let total: f64 = self.weights.iter().sum();
            return self
                .weights
                .iter()
                .zip(&self.means)
                .map(|(w, m)| w * m[self.num_features])
                .sum::<f64>()
                / total;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for c in 0..self.weights.len() {
            let r = (logp(c) - max).exp();
            num += r * self.means[c][self.num_features];
            den += r;
        }
        num / den
    }

    fn num_features(&self) -> usize {
        self.num_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component_predicts_conditional_mean() {
        // Single cluster: prediction ≈ mean of y everywhere.
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 5) as f64]).collect();
        let ys: Vec<f64> = vec![10.0; 40];
        let gmm = GaussianMixture::fit(&xs, &ys, 1, 0).unwrap();
        assert!((gmm.predict(&[2.0]) - 10.0).abs() < 1e-6);
        assert_eq!(gmm.num_components(), 1);
    }

    #[test]
    fn two_clusters_are_separated() {
        // Cluster A: x≈0 → y≈0. Cluster B: x≈10 → y≈100.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..50 {
            xs.push(vec![0.0 + 0.01 * (i % 5) as f64]);
            ys.push(0.0 + 0.01 * (i % 3) as f64);
            xs.push(vec![10.0 + 0.01 * (i % 5) as f64]);
            ys.push(100.0 + 0.01 * (i % 3) as f64);
        }
        let gmm = GaussianMixture::fit(&xs, &ys, 2, 1).unwrap();
        assert!(gmm.predict(&[0.0]) < 20.0, "got {}", gmm.predict(&[0.0]));
        assert!(gmm.predict(&[10.0]) > 80.0, "got {}", gmm.predict(&[10.0]));
    }

    #[test]
    fn k_capped_by_sample_count() {
        let xs = vec![vec![1.0], vec![2.0]];
        let ys = vec![1.0, 2.0];
        let gmm = GaussianMixture::fit(&xs, &ys, 10, 0).unwrap();
        assert!(gmm.num_components() <= 2);
    }

    #[test]
    fn far_query_falls_back_gracefully() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.1]).collect();
        let ys: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let gmm = GaussianMixture::fit(&xs, &ys, 2, 3).unwrap();
        let pred = gmm.predict(&[1e9]);
        assert!(pred.is_finite());
    }

    #[test]
    fn deterministic_under_seed() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 7) as f64, (i % 3) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0] + r[1]).collect();
        let a = GaussianMixture::fit(&xs, &ys, 3, 42).unwrap();
        let b = GaussianMixture::fit(&xs, &ys, 3, 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_errors() {
        assert!(GaussianMixture::fit(&[], &[], 2, 0).is_err());
    }
}
