//! Feature selection for factor training.
//!
//! §4.2 "Model training": using many features on a few hundred training
//! points risks overfitting, so — guided by the "one in ten" rule of thumb
//! for regression — Murphy picks the top B = 10 neighbor metrics by their
//! correlation with the entity's target metric. The paper also tried B = 5
//! and B = 20 and found training error within 3% of B = 10.

use murphy_stats::pearson;

/// The paper's default feature budget.
pub const DEFAULT_B: usize = 10;

/// Select the indices of the top-`b` feature columns by absolute Pearson
/// correlation with `target`.
///
/// `columns[i]` is the i-th candidate feature's training series; `target`
/// is the entity metric's training series. Columns may be owned vectors or
/// borrowed slices (`&[f64]`) — callers with a shared column store can pass
/// views without cloning each series. Ties break toward the lower index for
/// determinism. Features with zero correlation (including constant columns)
/// are still eligible but sort last, so they are only chosen when fewer
/// than `b` informative features exist.
pub fn select_top_features<C: AsRef<[f64]>>(columns: &[C], target: &[f64], b: usize) -> Vec<usize> {
    let mut scored: Vec<(usize, f64)> = columns
        .iter()
        .enumerate()
        .map(|(i, col)| (i, pearson(col.as_ref(), target).abs()))
        .collect();
    // Sort by descending |corr|, ascending index on ties.
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    let mut out: Vec<usize> = scored.into_iter().take(b).map(|(i, _)| i).collect();
    out.sort_unstable(); // stable column order for reproducible matrices
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target() -> Vec<f64> {
        (0..50).map(|i| i as f64).collect()
    }

    #[test]
    fn picks_most_correlated() {
        let t = target();
        let perfect: Vec<f64> = t.iter().map(|x| 2.0 * x).collect();
        let noisy: Vec<f64> = t.iter().map(|x| x + ((x * 13.7).sin() * 20.0)).collect();
        let unrelated: Vec<f64> = (0..50).map(|i| ((i * 7919) % 31) as f64).collect();
        let cols = vec![unrelated, noisy, perfect];
        let sel = select_top_features(&cols, &t, 1);
        assert_eq!(sel, vec![2]);
        let sel2 = select_top_features(&cols, &t, 2);
        assert_eq!(sel2, vec![1, 2]);
    }

    #[test]
    fn b_larger_than_columns_returns_all() {
        let t = target();
        let cols = vec![t.clone(), t.clone()];
        let sel = select_top_features(&cols, &t, 10);
        assert_eq!(sel, vec![0, 1]);
    }

    #[test]
    fn result_is_sorted_by_index() {
        let t = target();
        let cols: Vec<Vec<f64>> = (0..5)
            .map(|k| t.iter().map(|x| x * (k + 1) as f64).collect())
            .collect();
        let sel = select_top_features(&cols, &t, 3);
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        assert_eq!(sel, sorted);
    }

    #[test]
    fn anticorrelated_counts_as_correlated() {
        let t = target();
        let anti: Vec<f64> = t.iter().map(|x| -x).collect();
        let flat: Vec<f64> = vec![1.0; 50];
        let cols = vec![flat, anti];
        let sel = select_top_features(&cols, &t, 1);
        assert_eq!(sel, vec![1]);
    }

    #[test]
    fn empty_columns() {
        let t = target();
        assert!(select_top_features::<Vec<f64>>(&[], &t, 5).is_empty());
    }

    #[test]
    fn zero_budget() {
        let t = target();
        let cols = vec![t.clone()];
        assert!(select_top_features(&cols, &t, 0).is_empty());
    }
}
