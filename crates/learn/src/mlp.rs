//! A small multilayer perceptron.
//!
//! The fourth candidate factor family of §6.6.1. The paper's footnote 10:
//! "We tried small neural networks up to 3 layers, with 5 neurons each."
//! We implement exactly that — up to three tanh hidden layers of five
//! neurons, trained by plain backpropagation SGD on standardized data.
//! The paper found these *underperform* on a few hundred training points;
//! the reproduction's Figure 8a confirms the same (the point of including
//! them is the comparison, not the accuracy).

use crate::model::{validate, FitError, Regressor};
use crate::svr::standardize_stats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Training hyperparameters for [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlpParams {
    /// Number of hidden layers (1..=3, clamped).
    pub hidden_layers: usize,
    /// Neurons per hidden layer (the paper uses 5).
    pub hidden_units: usize,
    /// Passes over the training data.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
}

impl Default for MlpParams {
    fn default() -> Self {
        Self {
            hidden_layers: 2,
            hidden_units: 5,
            epochs: 200,
            learning_rate: 0.01,
        }
    }
}

/// One dense layer: `out = act(W·in + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Layer {
    /// Row-major weights: `weights[o * input_dim + i]`.
    weights: Vec<f64>,
    biases: Vec<f64>,
    input_dim: usize,
    output_dim: usize,
    /// tanh for hidden layers, identity for the output layer.
    tanh: bool,
}

impl Layer {
    fn new<R: Rng>(input_dim: usize, output_dim: usize, tanh: bool, rng: &mut R) -> Self {
        // Xavier-ish uniform init.
        let scale = (6.0 / (input_dim + output_dim).max(1) as f64).sqrt();
        Self {
            weights: (0..input_dim * output_dim)
                .map(|_| rng.gen_range(-scale..=scale))
                .collect(),
            biases: vec![0.0; output_dim],
            input_dim,
            output_dim,
            tanh,
        }
    }

    fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.output_dim];
        for o in 0..self.output_dim {
            let mut s = self.biases[o];
            let row = &self.weights[o * self.input_dim..(o + 1) * self.input_dim];
            for (w, &x) in row.iter().zip(input) {
                s += w * x;
            }
            out[o] = if self.tanh { s.tanh() } else { s };
        }
        out
    }
}

/// A fitted small MLP regressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
    feature_means: Vec<f64>,
    feature_stds: Vec<f64>,
    target_mean: f64,
    target_std: f64,
    num_features: usize,
}

impl Mlp {
    /// Fit by SGD backprop.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], params: &MlpParams, seed: u64) -> Result<Self, FitError> {
        validate(xs, ys)?;
        let n = xs.len();
        let d = xs[0].len();
        let hidden_layers = params.hidden_layers.clamp(1, 3);
        let units = params.hidden_units.max(1);

        let (feature_means, feature_stds) = standardize_stats(xs, d);
        let target_mean = ys.iter().sum::<f64>() / n as f64;
        let target_std = {
            let v = ys.iter().map(|&y| (y - target_mean).powi(2)).sum::<f64>() / n as f64;
            let s = v.sqrt();
            if s < 1e-9 {
                1.0
            } else {
                s
            }
        };
        let std_x: Vec<Vec<f64>> = xs
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(j, &v)| (v - feature_means[j]) / feature_stds[j])
                    .collect()
            })
            .collect();
        let std_y: Vec<f64> = ys.iter().map(|&y| (y - target_mean) / target_std).collect();

        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(hidden_layers + 1);
        let mut in_dim = d.max(1); // degenerate zero-feature nets still need a shape
        for _ in 0..hidden_layers {
            layers.push(Layer::new(in_dim, units, true, &mut rng));
            in_dim = units;
        }
        layers.push(Layer::new(in_dim, 1, false, &mut rng));

        // SGD backprop. For d == 0 we feed a constant 0 input.
        let zero_input = vec![0.0];
        for _epoch in 0..params.epochs {
            for (x, &y) in std_x.iter().zip(&std_y) {
                let input: &[f64] = if d == 0 { &zero_input } else { x };
                // Forward pass, keeping activations.
                let mut activations: Vec<Vec<f64>> = vec![input.to_vec()];
                for layer in &layers {
                    let out = layer.forward(activations.last().expect("non-empty"));
                    activations.push(out);
                }
                let pred = activations.last().expect("output layer")[0];
                // Backward pass: dL/dout for squared loss.
                let mut delta = vec![pred - y];
                for li in (0..layers.len()).rev() {
                    let input_act = activations[li].clone();
                    let output_act = &activations[li + 1];
                    let layer = &mut layers[li];
                    // If tanh, fold activation derivative into delta.
                    if layer.tanh {
                        for (dl, &a) in delta.iter_mut().zip(output_act) {
                            *dl *= 1.0 - a * a;
                        }
                    }
                    // Gradient step + compute delta for the previous layer.
                    let mut prev_delta = vec![0.0; layer.input_dim];
                    for o in 0..layer.output_dim {
                        let g = delta[o];
                        let row =
                            &mut layer.weights[o * layer.input_dim..(o + 1) * layer.input_dim];
                        for (i, w) in row.iter_mut().enumerate() {
                            prev_delta[i] += *w * g;
                            *w -= params.learning_rate * g * input_act[i];
                        }
                        layer.biases[o] -= params.learning_rate * g;
                    }
                    delta = prev_delta;
                }
            }
        }

        Ok(Self {
            layers,
            feature_means,
            feature_stds,
            target_mean,
            target_std,
            num_features: d,
        })
    }
}

impl Regressor for Mlp {
    fn predict(&self, x: &[f64]) -> f64 {
        let std: Vec<f64> = if self.num_features == 0 {
            vec![0.0]
        } else {
            x.iter()
                .enumerate()
                .map(|(j, &v)| (v - self.feature_means[j]) / self.feature_stds[j])
                .collect()
        };
        let mut act = std;
        for layer in &self.layers {
            act = layer.forward(&act);
        }
        act[0] * self.target_std + self.target_mean
    }

    fn num_features(&self) -> usize {
        self.num_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_function() {
        let xs: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 * 0.05]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 3.0 * r[0] + 1.0).collect();
        let mlp = Mlp::fit(&xs, &ys, &MlpParams::default(), 7).unwrap();
        for &x in &[0.5, 1.5, 3.0] {
            let pred = mlp.predict(&[x]);
            let truth = 3.0 * x + 1.0;
            assert!((pred - truth).abs() < 1.0, "x={x}: {pred} vs {truth}");
        }
    }

    #[test]
    fn learns_mild_nonlinearity() {
        // y = x^2 on [0, 2]: a tanh net should beat a constant predictor.
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 * 0.02]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0] * r[0]).collect();
        let mlp = Mlp::fit(&xs, &ys, &MlpParams { epochs: 500, ..Default::default() }, 3).unwrap();
        let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
        let mlp_mse: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, &y)| (mlp.predict(x) - y).powi(2))
            .sum::<f64>()
            / ys.len() as f64;
        let const_mse: f64 =
            ys.iter().map(|&y| (mean_y - y).powi(2)).sum::<f64>() / ys.len() as f64;
        assert!(mlp_mse < const_mse * 0.5, "mlp {mlp_mse} vs const {const_mse}");
    }

    #[test]
    fn respects_layer_cap() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let params = MlpParams {
            hidden_layers: 99,
            epochs: 1,
            ..Default::default()
        };
        let mlp = Mlp::fit(&xs, &ys, &params, 0).unwrap();
        // 3 hidden (clamped) + 1 output.
        assert_eq!(mlp.layers.len(), 4);
    }

    #[test]
    fn deterministic_under_seed() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![(i % 4) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0] * 2.0).collect();
        let a = Mlp::fit(&xs, &ys, &MlpParams::default(), 5).unwrap();
        let b = Mlp::fit(&xs, &ys, &MlpParams::default(), 5).unwrap();
        assert_eq!(a.predict(&[2.0]), b.predict(&[2.0]));
        let c = Mlp::fit(&xs, &ys, &MlpParams::default(), 6).unwrap();
        // Different seed almost surely differs (weights init differs).
        assert_ne!(a.predict(&[2.0]).to_bits(), c.predict(&[2.0]).to_bits());
    }

    #[test]
    fn zero_features_predicts_mean() {
        let xs: Vec<Vec<f64>> = vec![vec![]; 20];
        let ys: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mlp = Mlp::fit(&xs, &ys, &MlpParams { epochs: 400, ..Default::default() }, 0).unwrap();
        assert!((mlp.predict(&[]) - 9.5).abs() < 2.0);
    }

    #[test]
    fn empty_input_errors() {
        assert!(Mlp::fit(&[], &[], &MlpParams::default(), 0).is_err());
    }
}
