//! Property-based tests for the learning substrate.

use murphy_learn::{
    select_top_features, GaussianMixture, Matrix, ModelKind, Regressor, Ridge, TrainedModel,
};
use proptest::prelude::*;

fn training_set() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    // y = w·x + b + noise with random w, b over random inputs.
    (
        2usize..4,
        12usize..40,
        proptest::collection::vec(-3.0f64..3.0, 4),
        -10.0f64..10.0,
    )
        .prop_flat_map(|(d, n, w, b)| {
            proptest::collection::vec(
                proptest::collection::vec(-50.0f64..50.0, d..=d),
                n..=n,
            )
            .prop_map(move |xs| {
                let ys: Vec<f64> = xs
                    .iter()
                    .map(|row| {
                        row.iter()
                            .zip(&w)
                            .map(|(x, wi)| x * wi)
                            .sum::<f64>()
                            + b
                    })
                    .collect();
                (xs, ys)
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ridge_training_error_is_finite_and_small_on_linear_data((xs, ys) in training_set()) {
        let model = TrainedModel::fit(ModelKind::Ridge, &xs, &ys, 1).unwrap();
        prop_assert!(model.train_mae.is_finite());
        // Ridge with λ=1 on standardized exact-linear data is near-exact.
        let scale = ys.iter().map(|y| y.abs()).fold(1.0, f64::max);
        prop_assert!(model.train_mae <= 0.15 * scale, "mae {} scale {}", model.train_mae, scale);
    }

    #[test]
    fn ridge_prediction_is_translation_equivariant((xs, ys) in training_set(), shift in -100.0f64..100.0) {
        // Shifting every target shifts every prediction by the same amount.
        let m1 = Ridge::fit(&xs, &ys, 1.0).unwrap();
        let shifted: Vec<f64> = ys.iter().map(|y| y + shift).collect();
        let m2 = Ridge::fit(&xs, &shifted, 1.0).unwrap();
        let x = &xs[0];
        let d = m2.predict(x) - m1.predict(x);
        prop_assert!((d - shift).abs() < 1e-6 * (1.0 + shift.abs()), "delta {d} vs shift {shift}");
    }

    #[test]
    fn every_model_family_is_total((xs, ys) in training_set()) {
        for kind in ModelKind::ALL {
            let model = TrainedModel::fit(kind, &xs, &ys, 3).unwrap();
            let pred = model.predict(&xs[0]);
            prop_assert!(pred.is_finite(), "{kind}: non-finite prediction");
            prop_assert!(model.residual_std.is_finite() && model.residual_std >= 0.0);
        }
    }

    #[test]
    fn gmm_prediction_within_target_hull((xs, ys) in training_set()) {
        let gmm = GaussianMixture::fit(&xs, &ys, 2, 5).unwrap();
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let margin = (hi - lo).abs() * 0.5 + 1.0;
        for x in xs.iter().take(5) {
            let p = gmm.predict(x);
            prop_assert!(p >= lo - margin && p <= hi + margin,
                "GMM prediction {p} far outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn feature_selection_returns_valid_unique_sorted(
        cols in proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, 16), 0..12),
        b in 0usize..15,
    ) {
        let target: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let sel = select_top_features(&cols, &target, b);
        prop_assert!(sel.len() <= b.min(cols.len()));
        for &i in &sel { prop_assert!(i < cols.len()); }
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted, sel);
    }

    #[test]
    fn spd_solve_round_trips(diag in proptest::collection::vec(0.5f64..10.0, 2..6),
                             x_true in proptest::collection::vec(-10.0f64..10.0, 6)) {
        // Diagonally dominant symmetric matrices are SPD.
        let n = diag.len();
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    a.set(i, j, diag[i] + n as f64);
                } else {
                    a.set(i, j, 1.0);
                }
            }
        }
        let x: Vec<f64> = x_true[..n].to_vec();
        let b = a.mul_vec(&x);
        let solved = murphy_learn::linalg::solve_spd(&a, &b).unwrap();
        for (u, v) in solved.iter().zip(&x) {
            prop_assert!((u - v).abs() < 1e-8 * (1.0 + v.abs()));
        }
    }
}
