//! Flat-buffer fit parity: `TrainedModel::fit_flat` on a row-major buffer
//! must be **bit-identical** to `TrainedModel::fit` on the equivalent
//! nested rows, for every model family. The MRF trainer assembles its
//! training matrices into one reused flat buffer per worker; these tests
//! are what make that purely an allocation optimization.

use murphy_learn::{ModelKind, Ridge, TrainedModel};

/// Deterministic pseudo-random-ish training data with mild nonlinearity
/// so no family fits it exactly.
fn data(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| ((i * 7 + j * 13) % 23) as f64 * 0.5 + ((i + j) % 5) as f64)
                .collect()
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let lin: f64 = r.iter().enumerate().map(|(j, &v)| (j as f64 + 1.0) * 0.3 * v).sum();
            lin + ((i % 11) as f64 * 0.7).sin()
        })
        .collect();
    let flat: Vec<f64> = xs.iter().flatten().copied().collect();
    (xs, ys, flat)
}

fn assert_models_bit_identical(nested: &TrainedModel, flat: &TrainedModel, probes: &[Vec<f64>]) {
    assert_eq!(nested.residual_std.to_bits(), flat.residual_std.to_bits());
    assert_eq!(nested.train_mae.to_bits(), flat.train_mae.to_bits());
    assert_eq!(nested.num_features(), flat.num_features());
    for p in probes {
        assert_eq!(
            nested.predict(p).to_bits(),
            flat.predict(p).to_bits(),
            "prediction differs at probe {p:?}"
        );
    }
}

#[test]
fn every_family_is_bit_identical_on_flat_input() {
    let (xs, ys, flat) = data(60, 4);
    let probes: Vec<Vec<f64>> = vec![
        vec![0.0, 0.0, 0.0, 0.0],
        vec![1.5, -2.0, 3.25, 0.125],
        xs[17].clone(),
    ];
    for kind in ModelKind::ALL {
        let nested = TrainedModel::fit(kind, &xs, &ys, 42).unwrap();
        let flat_fit = TrainedModel::fit_flat(kind, &flat, 4, &ys, 42).unwrap();
        assert_models_bit_identical(&nested, &flat_fit, &probes);
    }
}

#[test]
fn ridge_parameters_are_bit_identical() {
    let (xs, ys, flat) = data(50, 3);
    let nested = Ridge::fit(&xs, &ys, Ridge::DEFAULT_LAMBDA).unwrap();
    let flat_fit = Ridge::fit_flat(&flat, 3, &ys, Ridge::DEFAULT_LAMBDA).unwrap();
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(nested.weights()), bits(flat_fit.weights()));
    assert_eq!(bits(nested.fused_weights()), bits(flat_fit.fused_weights()));
    assert_eq!(bits(nested.feature_means()), bits(flat_fit.feature_means()));
    assert_eq!(bits(nested.feature_stds()), bits(flat_fit.feature_stds()));
    assert_eq!(nested.intercept().to_bits(), flat_fit.intercept().to_bits());
    assert_eq!(
        nested.fused_intercept().to_bits(),
        flat_fit.fused_intercept().to_bits()
    );
}

#[test]
fn zero_width_fit_matches_nested_empty_rows() {
    let ys: Vec<f64> = (0..12).map(|i| i as f64 * 1.25).collect();
    let nested_rows: Vec<Vec<f64>> = vec![Vec::new(); ys.len()];
    for kind in [ModelKind::Ridge, ModelKind::Svr] {
        let nested = TrainedModel::fit(kind, &nested_rows, &ys, 7).unwrap();
        let flat = TrainedModel::fit_flat(kind, &[], 0, &ys, 7).unwrap();
        assert_models_bit_identical(&nested, &flat, &[Vec::new()]);
    }
}

#[test]
fn flat_validation_errors() {
    // Empty target set.
    assert!(TrainedModel::fit_flat(ModelKind::Ridge, &[], 2, &[], 0).is_err());
    // Buffer length not a multiple of width × rows.
    assert!(TrainedModel::fit_flat(ModelKind::Ridge, &[1.0, 2.0, 3.0], 2, &[1.0, 2.0], 0).is_err());
}
