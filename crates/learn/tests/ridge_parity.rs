//! Parity tests for the fused ridge hot path.
//!
//! At fit time the feature standardization is folded into the parameters
//! (`w'_j = w_j/σ_j`, `b' = b − Σ μ_j·w'_j`) so prediction is one
//! multiply-add loop over raw features. These tests pin the relationship
//! between the fused path and the legacy standardize-then-dot reference
//! ([`Ridge::predict_standardized`]):
//!
//! * **bit-identical** wherever every folded term is exactly zero —
//!   all-constant features, single-sample fits, zero feature dimension —
//!   because both formulations then reduce to the bare intercept;
//! * **tightly agreeing** (≲1e-12 relative) on general random inputs,
//!   where the two summation orders legitimately round differently;
//! * **insensitive, bitwise, to constant-feature values** at predict
//!   time: a zero fused weight annihilates its coordinate exactly;
//! * **deterministic**: refitting the same data reproduces every
//!   parameter bit-for-bit;
//! * `predict_indexed` (the gather-free factor path) bit-identical to
//!   gather-then-`predict`.

use murphy_learn::{Regressor, Ridge};
use proptest::prelude::*;

/// y = 2.5·x0 − 1.25·x1 + 4 over a deterministic grid.
fn linear_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|i| vec![i as f64 * 0.25, ((i * 11) % 17) as f64])
        .collect();
    let ys: Vec<f64> = xs.iter().map(|r| 2.5 * r[0] - 1.25 * r[1] + 4.0).collect();
    (xs, ys)
}

#[test]
fn all_constant_features_predict_the_intercept_bitwise() {
    // Every standardized column is exactly zero, so every weight solves
    // to exactly 0.0 and both formulations collapse to the intercept.
    let xs: Vec<Vec<f64>> = vec![vec![7.0, -3.5, 0.0]; 25];
    let ys: Vec<f64> = (0..25).map(|i| 10.0 + (i % 5) as f64).collect();
    let model = Ridge::fit(&xs, &ys, Ridge::DEFAULT_LAMBDA).unwrap();

    assert!(model.fused_weights().iter().all(|&w| w == 0.0), "{:?}", model.fused_weights());
    for x in [vec![7.0, -3.5, 0.0], vec![1e6, 0.0, -42.0], vec![0.0, 0.0, 0.0]] {
        let fused = model.predict(&x);
        let standardized = model.predict_standardized(&x);
        assert_eq!(fused.to_bits(), standardized.to_bits(), "x = {x:?}");
        assert_eq!(fused.to_bits(), model.intercept().to_bits(), "x = {x:?}");
    }
}

#[test]
fn single_sample_fit_predicts_its_target_bitwise() {
    // One sample: every centered column is exactly zero — same collapse.
    let model = Ridge::fit(&[vec![1.5, -2.0]], &[42.5], Ridge::DEFAULT_LAMBDA).unwrap();
    for x in [vec![1.5, -2.0], vec![100.0, 100.0], vec![-7.0, 0.25]] {
        assert_eq!(model.predict(&x).to_bits(), 42.5f64.to_bits(), "x = {x:?}");
        assert_eq!(
            model.predict(&x).to_bits(),
            model.predict_standardized(&x).to_bits(),
            "x = {x:?}"
        );
    }
}

#[test]
fn zero_feature_dimension_predicts_the_mean_bitwise() {
    let xs: Vec<Vec<f64>> = vec![vec![]; 8];
    let ys: Vec<f64> = (0..8).map(|i| i as f64).collect();
    let model = Ridge::fit(&xs, &ys, 1.0).unwrap();
    assert_eq!(model.predict(&[]).to_bits(), model.intercept().to_bits());
    assert_eq!(
        model.predict(&[]).to_bits(),
        model.predict_standardized(&[]).to_bits()
    );
}

#[test]
fn constant_coordinate_value_never_changes_the_fused_prediction() {
    // Column 1 is constant (weight exactly 0): its value at predict time
    // must be annihilated exactly, whatever it is.
    let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, 7.0]).collect();
    let ys: Vec<f64> = xs.iter().map(|r| 1.5 * r[0] + 2.0).collect();
    let model = Ridge::fit(&xs, &ys, Ridge::DEFAULT_LAMBDA).unwrap();
    assert_eq!(model.fused_weights()[1], 0.0);

    let base = model.predict(&[12.0, 7.0]);
    for c in [0.0, -7.0, 1e9, f64::MIN_POSITIVE] {
        assert_eq!(
            model.predict(&[12.0, c]).to_bits(),
            base.to_bits(),
            "constant coordinate {c} leaked into the prediction"
        );
    }
}

#[test]
fn refitting_reproduces_every_parameter_bitwise() {
    let (xs, ys) = linear_data(40);
    let a = Ridge::fit(&xs, &ys, Ridge::DEFAULT_LAMBDA).unwrap();
    let b = Ridge::fit(&xs, &ys, Ridge::DEFAULT_LAMBDA).unwrap();
    assert_eq!(a, b, "fit is not deterministic");
    for (wa, wb) in a.fused_weights().iter().zip(b.fused_weights()) {
        assert_eq!(wa.to_bits(), wb.to_bits());
    }
    assert_eq!(a.fused_intercept().to_bits(), b.fused_intercept().to_bits());
    // The fused weights are the standardized weights divided once by the
    // (floored) stds — a single rounding each, reproducible bitwise.
    for ((w, s), fw) in a.weights().iter().zip(a.feature_stds()).zip(a.fused_weights()) {
        assert_eq!((w / s).to_bits(), fw.to_bits());
    }
}

#[test]
fn predict_indexed_is_bit_identical_to_gather_then_predict() {
    let (xs, ys) = linear_data(40);
    let model = Ridge::fit(&xs, &ys, Ridge::DEFAULT_LAMBDA).unwrap();
    // A dense state with this model's features scattered at positions
    // 5 and 2 (out of order, as factor feature maps can be).
    let state = vec![9.0, -1.0, 13.75, 0.5, 88.0, 3.25, 7.0];
    let positions = [5usize, 2];
    let gathered: Vec<f64> = positions.iter().map(|&p| state[p]).collect();
    let mut scratch = Vec::new();
    assert_eq!(
        model.predict_indexed(&state, &positions, &mut scratch).to_bits(),
        model.predict(&gathered).to_bits()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On general data the fused and standardized formulations differ
    /// only by summation-order rounding: ≲1e-12 relative.
    #[test]
    fn fused_tracks_standardized_on_random_inputs(
        slope in -5.0f64..5.0,
        offset in -50.0f64..50.0,
        noise_scale in 0.0f64..0.5,
        q0 in -100.0f64..100.0,
        q1 in -100.0f64..100.0,
    ) {
        let xs: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![i as f64 * 0.5, ((i * 13) % 23) as f64 - 11.0])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, r)| {
                slope * r[0] - 0.75 * r[1] + offset
                    + noise_scale * ((i as f64) * 1.7).sin()
            })
            .collect();
        let model = Ridge::fit(&xs, &ys, Ridge::DEFAULT_LAMBDA).unwrap();
        let query = [q0, q1];
        let fused = model.predict(&query);
        let standardized = model.predict_standardized(&query);
        let tolerance = 1e-12 * (1.0 + standardized.abs().max(fused.abs()));
        prop_assert!(
            (fused - standardized).abs() <= tolerance,
            "fused {} vs standardized {} (diff {:e})",
            fused,
            standardized,
            (fused - standardized).abs()
        );
    }

    /// The gather-free indexed path is bit-identical to gather-then-dot
    /// for arbitrary scatter positions.
    #[test]
    fn predict_indexed_parity_on_random_states(
        seed in any::<u64>(),
        scale in 0.5f64..50.0,
    ) {
        let state: Vec<f64> = (0..10)
            .map(|i| ((seed >> (i * 8 % 64)) & 0xff) as f64 * scale / 255.0 - scale / 2.0)
            .collect();
        let (xs, ys) = linear_data(30);
        let model = Ridge::fit(&xs, &ys, Ridge::DEFAULT_LAMBDA).unwrap();
        let p0 = (seed as usize) % state.len();
        let p1 = (seed as usize / 7) % state.len();
        let positions = [p0, p1];
        let gathered: Vec<f64> = positions.iter().map(|&p| state[p]).collect();
        let mut scratch = Vec::new();
        prop_assert_eq!(
            model.predict_indexed(&state, &positions, &mut scratch).to_bits(),
            model.predict(&gathered).to_bits()
        );
    }
}
