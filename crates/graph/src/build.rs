//! Relationship-graph construction (§4.1).
//!
//! Murphy queries the monitoring database for a seed set `S` of entities
//! relevant to the problem — all members of an affected application, or a
//! single problematic entity — then expands `S = neighbors(S)` recursively.
//! If the graph would become intractably large, expansion is stopped after
//! a few iterations (the hop limit).
//!
//! Each discovered association expands to directed edges per its
//! [`Directionality`](murphy_telemetry::Directionality): both ways when the
//! direction is unknown (the conservative default that creates cycles), a
//! single edge when a causal direction is known.

use crate::graph::RelationshipGraph;
use murphy_telemetry::{EntityId, MonitoringDb};
use std::collections::BTreeSet;

/// Options for graph construction.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Maximum hops away from the seed set to expand. `None` means expand
    /// until the reachable set is exhausted. The enterprise incident data
    /// set uses 4 (§5.1.1).
    pub max_hops: Option<usize>,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self { max_hops: None }
    }
}

impl BuildOptions {
    /// The paper's enterprise setting: entities up to four hops away.
    pub fn four_hops() -> Self {
        Self { max_hops: Some(4) }
    }
}

/// Build the relationship graph from a seed set of entities.
///
/// Unknown seed entities are ignored. The result contains every entity
/// within `max_hops` of a seed (by undirected association adjacency), and
/// all directed edges among those entities.
pub fn build_from_seeds(
    db: &MonitoringDb,
    seeds: &[EntityId],
    options: BuildOptions,
) -> RelationshipGraph {
    let mut graph = RelationshipGraph::new();
    let mut visited: BTreeSet<EntityId> = BTreeSet::new();
    let mut frontier: Vec<EntityId> = seeds
        .iter()
        .copied()
        .filter(|&e| db.entity(e).is_some())
        .collect();
    frontier.sort();
    frontier.dedup();
    for &e in &frontier {
        visited.insert(e);
        graph.add_node(e);
    }

    let mut hops = 0usize;
    while !frontier.is_empty() {
        if let Some(max) = options.max_hops {
            if hops >= max {
                break;
            }
        }
        let mut next: Vec<EntityId> = Vec::new();
        for &e in &frontier {
            for n in db.neighbors(e) {
                if visited.insert(n) {
                    graph.add_node(n);
                    next.push(n);
                }
            }
        }
        frontier = next;
        hops += 1;
    }

    // Materialize directed edges among included nodes.
    for assoc in db.associations() {
        if graph.contains(assoc.a) && graph.contains(assoc.b) {
            for (from, to) in assoc.directed_edges() {
                graph.add_edge(from, to);
            }
        }
    }
    graph
}

/// Build the graph seeded by an application's members (§4.1: "if the input
/// to Murphy is an affected application A, then S is the set of all
/// entities that the system considers to be members of A").
pub fn build_from_application(
    db: &MonitoringDb,
    app: &str,
    options: BuildOptions,
) -> RelationshipGraph {
    build_from_seeds(db, &db.application_members(app), options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use murphy_telemetry::{AssociationKind, EntityKind};

    /// Chain: vm0 -- vm1 -- vm2 -- vm3 -- vm4, plus a directed call
    /// vm0 → vm4 recorded as a ServiceCall.
    fn chain_db() -> (MonitoringDb, Vec<EntityId>) {
        let mut db = MonitoringDb::new(10);
        let vms: Vec<EntityId> = (0..5)
            .map(|i| db.add_entity(EntityKind::Vm, format!("vm{i}")))
            .collect();
        for w in vms.windows(2) {
            db.relate(w[0], w[1], AssociationKind::Related);
        }
        db.relate_directed(vms[0], vms[4], AssociationKind::ServiceCall);
        (db, vms)
    }

    #[test]
    fn full_expansion_reaches_everything() {
        let (db, vms) = chain_db();
        let g = build_from_seeds(&db, &[vms[0]], BuildOptions::default());
        assert_eq!(g.node_count(), 5);
        // 4 undirected associations -> 8 directed edges, + 1 directed call.
        assert_eq!(g.edge_count(), 9);
        assert!(g.has_edge(vms[0], vms[4]));
        assert!(!g.has_edge(vms[4], vms[0]));
    }

    #[test]
    fn hop_limit_stops_expansion() {
        let (db, vms) = chain_db();
        let g = build_from_seeds(&db, &[vms[0]], BuildOptions { max_hops: Some(2) });
        // vm0 (seed) + vm1 (hop 1) + vm2 (hop 2); note vm4 is 1 hop via the
        // directed call association (associations define adjacency).
        assert!(g.contains(vms[0]));
        assert!(g.contains(vms[1]));
        assert!(g.contains(vms[2]));
        assert!(g.contains(vms[4])); // adjacent to vm0 through ServiceCall
        assert!(!g.contains(vms[3]) || g.node_count() <= 5);
    }

    #[test]
    fn one_hop_is_seed_plus_neighbors() {
        let (db, vms) = chain_db();
        let g = build_from_seeds(&db, &[vms[2]], BuildOptions { max_hops: Some(1) });
        assert_eq!(g.node_count(), 3); // vm1, vm2, vm3
        assert!(g.contains(vms[1]) && g.contains(vms[2]) && g.contains(vms[3]));
    }

    #[test]
    fn zero_hops_is_seeds_only() {
        let (db, vms) = chain_db();
        let g = build_from_seeds(&db, &[vms[1], vms[3]], BuildOptions { max_hops: Some(0) });
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0); // vm1 and vm3 are not directly associated
    }

    #[test]
    fn unknown_seeds_ignored() {
        let (db, _) = chain_db();
        let g = build_from_seeds(&db, &[EntityId(99)], BuildOptions::default());
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn duplicate_seeds_collapse() {
        let (db, vms) = chain_db();
        let g = build_from_seeds(
            &db,
            &[vms[0], vms[0], vms[0]],
            BuildOptions { max_hops: Some(0) },
        );
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn application_seeding() {
        let (mut db, vms) = chain_db();
        db.tag_application("shop", vms[1]);
        db.tag_application("shop", vms[2]);
        let g = build_from_application(&db, "shop", BuildOptions { max_hops: Some(0) });
        assert_eq!(g.node_count(), 2);
        // Edges among seed members are included even with 0 hops.
        assert!(g.has_edge(vms[1], vms[2]));
        assert!(g.has_edge(vms[2], vms[1]));
        let empty = build_from_application(&db, "nope", BuildOptions::default());
        assert_eq!(empty.node_count(), 0);
    }

    #[test]
    fn directed_association_gives_one_edge() {
        let mut db = MonitoringDb::new(10);
        let a = db.add_entity(EntityKind::Service, "caller");
        let b = db.add_entity(EntityKind::Service, "callee");
        db.relate_directed(a, b, AssociationKind::ServiceCall);
        let g = build_from_seeds(&db, &[a], BuildOptions::default());
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        assert_eq!(g.edge_count(), 1);
    }
}
