//! Cycle statistics.
//!
//! §2.2 of the paper reports that across its 13-incident data set the
//! relationship graph had, on average, over 2000 cycles of length 2 and
//! over 4000 of length 3, and that every affected-application VM was in at
//! least one cycle. These statistics are reproduced by [`CycleStats`] and
//! used both in reports and to sanity-check the simulators (cycles must be
//! the common case, or the evaluation environment is unrealistically
//! DAG-like).

use crate::graph::{NodeIdx, RelationshipGraph};
use serde::{Deserialize, Serialize};

/// Counts of short directed cycles in a relationship graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleStats {
    /// Directed 2-cycles (pairs `u⇄v`), counted once per pair.
    pub len2: usize,
    /// Directed 3-cycles (`u→v→w→u`), counted once per cycle.
    pub len3: usize,
}

impl CycleStats {
    /// Count 2- and 3-cycles.
    ///
    /// 2-cycles: unordered pairs with edges both ways. 3-cycles: directed
    /// triangles, each counted once (not once per rotation).
    pub fn count(graph: &RelationshipGraph) -> CycleStats {
        let n = graph.node_count();
        let mut len2 = 0usize;
        for u in 0..n {
            for &v in graph.out_nbrs(u) {
                if v > u && graph.out_nbrs(v).contains(&u) {
                    len2 += 1;
                }
            }
        }
        // Count directed triangles u→v→w→u once each: enumerate with u as
        // the smallest index and divide rotations out by construction.
        let mut len3 = 0usize;
        for u in 0..n {
            for &v in graph.out_nbrs(u) {
                if v <= u {
                    continue;
                }
                for &w in graph.out_nbrs(v) {
                    if w <= u || w == v {
                        continue;
                    }
                    if graph.out_nbrs(w).contains(&u) {
                        len3 += 1;
                    }
                }
            }
        }
        CycleStats { len2, len3 }
    }
}

/// Whether a node lies on at least one directed cycle (of any length).
///
/// A node is on a cycle iff it can reach itself through at least one edge;
/// we run a BFS from each of the node's successors back to it.
pub fn on_cycle(graph: &RelationshipGraph, node: NodeIdx) -> bool {
    use std::collections::VecDeque;
    let n = graph.node_count();
    if node >= n {
        return false;
    }
    let mut seen = vec![false; n];
    let mut queue: VecDeque<NodeIdx> = graph.out_nbrs(node).iter().copied().collect();
    for &s in graph.out_nbrs(node) {
        seen[s] = true;
    }
    while let Some(u) = queue.pop_front() {
        if u == node {
            return true;
        }
        for &v in graph.out_nbrs(u) {
            if v == node {
                return true;
            }
            if !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    false
}

/// Fraction of the graph's nodes that lie on at least one directed cycle.
pub fn fraction_on_cycles(graph: &RelationshipGraph) -> f64 {
    let n = graph.node_count();
    if n == 0 {
        return 0.0;
    }
    let on = (0..n).filter(|&v| on_cycle(graph, v)).count();
    on as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use murphy_telemetry::EntityId;

    fn e(n: u32) -> EntityId {
        EntityId(n)
    }

    fn bidir_pair() -> RelationshipGraph {
        let mut g = RelationshipGraph::new();
        g.add_node(e(0));
        g.add_node(e(1));
        g.add_edge(e(0), e(1));
        g.add_edge(e(1), e(0));
        g
    }

    #[test]
    fn two_cycle_counted_once() {
        let g = bidir_pair();
        let stats = CycleStats::count(&g);
        assert_eq!(stats.len2, 1);
        assert_eq!(stats.len3, 0);
    }

    #[test]
    fn directed_triangle_counted_once() {
        let mut g = RelationshipGraph::new();
        for i in 0..3 {
            g.add_node(e(i));
        }
        g.add_edge(e(0), e(1));
        g.add_edge(e(1), e(2));
        g.add_edge(e(2), e(0));
        let stats = CycleStats::count(&g);
        assert_eq!(stats.len2, 0);
        assert_eq!(stats.len3, 1);
    }

    #[test]
    fn bidirectional_triangle_has_two_directed_triangles() {
        // A fully bidirectional triangle contains the cycle in both
        // orientations plus three 2-cycles.
        let mut g = RelationshipGraph::new();
        for i in 0..3 {
            g.add_node(e(i));
        }
        for &(x, y) in &[(0u32, 1u32), (1, 2), (2, 0)] {
            g.add_edge(e(x), e(y));
            g.add_edge(e(y), e(x));
        }
        let stats = CycleStats::count(&g);
        assert_eq!(stats.len2, 3);
        assert_eq!(stats.len3, 2);
    }

    #[test]
    fn dag_has_no_cycles() {
        let mut g = RelationshipGraph::new();
        for i in 0..4 {
            g.add_node(e(i));
        }
        g.add_edge(e(0), e(1));
        g.add_edge(e(0), e(2));
        g.add_edge(e(1), e(3));
        g.add_edge(e(2), e(3));
        let stats = CycleStats::count(&g);
        assert_eq!(stats, CycleStats { len2: 0, len3: 0 });
        assert_eq!(fraction_on_cycles(&g), 0.0);
        for v in 0..4 {
            assert!(!on_cycle(&g, v));
        }
    }

    #[test]
    fn on_cycle_detects_long_cycles() {
        // 0 → 1 → 2 → 3 → 0, plus pendant 4.
        let mut g = RelationshipGraph::new();
        for i in 0..5 {
            g.add_node(e(i));
        }
        g.add_edge(e(0), e(1));
        g.add_edge(e(1), e(2));
        g.add_edge(e(2), e(3));
        g.add_edge(e(3), e(0));
        g.add_edge(e(0), e(4));
        for v in 0..4 {
            assert!(on_cycle(&g, v), "node {v} should be on the 4-cycle");
        }
        assert!(!on_cycle(&g, 4));
        assert!((fraction_on_cycles(&g) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = RelationshipGraph::new();
        assert_eq!(CycleStats::count(&g), CycleStats { len2: 0, len3: 0 });
        assert_eq!(fraction_on_cycles(&g), 0.0);
    }
}
