//! The relationship graph structure.
//!
//! A [`RelationshipGraph`] holds a subset of a monitoring database's
//! entities with dense local indices (`NodeIdx`) and directed adjacency
//! in both directions. Edges come from expanding associations per §4.1:
//! an association with unknown direction contributes edges both ways.

use murphy_telemetry::EntityId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Dense local node index within one graph.
pub type NodeIdx = usize;

/// Directed relationship graph over a set of entities.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RelationshipGraph {
    nodes: Vec<EntityId>,
    index: BTreeMap<EntityId, NodeIdx>,
    out_nbrs: Vec<Vec<NodeIdx>>,
    in_nbrs: Vec<Vec<NodeIdx>>,
}

impl RelationshipGraph {
    /// New empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node (idempotent); returns its local index.
    pub fn add_node(&mut self, entity: EntityId) -> NodeIdx {
        if let Some(&idx) = self.index.get(&entity) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(entity);
        self.index.insert(entity, idx);
        self.out_nbrs.push(Vec::new());
        self.in_nbrs.push(Vec::new());
        idx
    }

    /// Add a directed edge `from → to` between existing nodes.
    /// Duplicate edges and self-loops are ignored (associations may repeat
    /// in metadata; a self-loop carries no influence information).
    pub fn add_edge(&mut self, from: EntityId, to: EntityId) {
        let (Some(&f), Some(&t)) = (self.index.get(&from), self.index.get(&to)) else {
            return;
        };
        if f == t || self.out_nbrs[f].contains(&t) {
            return;
        }
        self.out_nbrs[f].push(t);
        self.in_nbrs[t].push(f);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.out_nbrs.iter().map(|v| v.len()).sum()
    }

    /// Entity at a local index.
    pub fn entity(&self, idx: NodeIdx) -> EntityId {
        self.nodes[idx]
    }

    /// Local index of an entity, if present.
    pub fn node(&self, entity: EntityId) -> Option<NodeIdx> {
        self.index.get(&entity).copied()
    }

    /// True when the entity is in the graph.
    pub fn contains(&self, entity: EntityId) -> bool {
        self.index.contains_key(&entity)
    }

    /// All entities, in insertion order.
    pub fn entities(&self) -> &[EntityId] {
        &self.nodes
    }

    /// Outgoing neighbors of a node.
    pub fn out_nbrs(&self, idx: NodeIdx) -> &[NodeIdx] {
        &self.out_nbrs[idx]
    }

    /// Incoming neighbors of a node — the `in_nbrs(v)` of the paper's
    /// factor definition `P_v(v | in_nbrs(v))`.
    pub fn in_nbrs(&self, idx: NodeIdx) -> &[NodeIdx] {
        &self.in_nbrs[idx]
    }

    /// Incoming neighbor entities of an entity.
    pub fn in_nbr_entities(&self, entity: EntityId) -> Vec<EntityId> {
        match self.node(entity) {
            Some(idx) => self.in_nbrs[idx].iter().map(|&i| self.nodes[i]).collect(),
            None => Vec::new(),
        }
    }

    /// True when the directed edge `from → to` exists.
    pub fn has_edge(&self, from: EntityId, to: EntityId) -> bool {
        match (self.node(from), self.node(to)) {
            (Some(f), Some(t)) => self.out_nbrs[f].contains(&t),
            _ => false,
        }
    }

    /// Iterate all directed edges as `(from, to)` entity pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EntityId, EntityId)> + '_ {
        self.out_nbrs.iter().enumerate().flat_map(move |(f, outs)| {
            outs.iter().map(move |&t| (self.nodes[f], self.nodes[t]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(n: u32) -> EntityId {
        EntityId(n)
    }

    #[test]
    fn add_node_is_idempotent() {
        let mut g = RelationshipGraph::new();
        let a = g.add_node(e(5));
        let b = g.add_node(e(5));
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn edges_and_adjacency() {
        let mut g = RelationshipGraph::new();
        g.add_node(e(1));
        g.add_node(e(2));
        g.add_node(e(3));
        g.add_edge(e(1), e(2));
        g.add_edge(e(2), e(1));
        g.add_edge(e(2), e(3));
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(e(1), e(2)));
        assert!(g.has_edge(e(2), e(1)));
        assert!(!g.has_edge(e(3), e(2)));
        assert_eq!(g.in_nbr_entities(e(3)), vec![e(2)]);
        assert_eq!(g.in_nbr_entities(e(1)), vec![e(2)]);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = RelationshipGraph::new();
        g.add_node(e(1));
        g.add_node(e(2));
        g.add_edge(e(1), e(2));
        g.add_edge(e(1), e(2));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = RelationshipGraph::new();
        g.add_node(e(1));
        g.add_edge(e(1), e(1));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn edges_to_unknown_nodes_ignored() {
        let mut g = RelationshipGraph::new();
        g.add_node(e(1));
        g.add_edge(e(1), e(9));
        g.add_edge(e(9), e(1));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn edge_iteration() {
        let mut g = RelationshipGraph::new();
        for i in 1..=3 {
            g.add_node(e(i));
        }
        g.add_edge(e(1), e(2));
        g.add_edge(e(2), e(3));
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(e(1), e(2)), (e(2), e(3))]);
    }

    #[test]
    fn absent_entity_queries() {
        let g = RelationshipGraph::new();
        assert_eq!(g.node(e(1)), None);
        assert!(!g.contains(e(1)));
        assert!(g.in_nbr_entities(e(1)).is_empty());
    }
}
