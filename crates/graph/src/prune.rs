//! Candidate-space pruning (§4.2).
//!
//! Murphy limits the set of potential root-cause entities via a breadth
//! first search starting from the problematic entity, exploring neighbor
//! entities that have metrics above very conservative thresholds and
//! pruning out the rest. This reduces running time and improves precision.
//! The paper provides the same pruned search space to every reference
//! scheme for fairness — so this module is shared by `murphy-core` and
//! `murphy-baselines`.

use crate::graph::RelationshipGraph;
use murphy_stats::Summary;
use murphy_telemetry::{EntityId, MetricId, MonitoringDb};
use std::collections::{BTreeSet, VecDeque};

/// Z-score above which a metric counts as hot relative to its own history
/// even when below the absolute threshold.
pub const HOT_Z: f64 = 3.0;

/// Is any current metric of `entity` "hot"?
///
/// Two criteria, either suffices:
///
/// * **absolute** — the current value exceeds the metric kind's
///   conservative threshold
///   ([`MetricKind::threshold`](murphy_telemetry::MetricKind::threshold))
///   scaled by `threshold_scale` (1.0 = the paper's defaults);
/// * **relative** — the current value is more than [`HOT_Z`] standard
///   deviations from the metric's *older* history (the first half of the
///   stored series, so an ongoing incident doesn't inflate the reference).
///   This is how operator thresholds behave for metrics without a
///   universal scale, e.g. service latency.
pub fn entity_is_hot(db: &MonitoringDb, entity: EntityId, threshold_scale: f64) -> bool {
    db.metrics_of(entity).into_iter().any(|kind| {
        let metric = MetricId::new(entity, kind);
        let value = db.current_value(metric);
        if value > kind.threshold() * threshold_scale {
            return true;
        }
        let Some(series) = db.series(metric) else {
            return false;
        };
        let values = series.values();
        let reference = Summary::of(&values[..values.len() / 2]);
        if reference.count < 8 {
            return false;
        }
        let z = (value - reference.mean).abs() / reference.std_dev_floored(1e-9);
        z > HOT_Z * threshold_scale.max(0.1)
    })
}

/// BFS candidate pruning.
///
/// Starting from `symptom_entity`, explore neighbors whose metrics exceed
/// conservative thresholds; an entity that is not "hot" is not expanded
/// *through*, and is not reported as a candidate. The symptom entity is
/// always explored (its metrics are problematic by definition) but is not
/// itself returned as a candidate.
///
/// Returns candidates in BFS discovery order.
pub fn prune_candidates(
    db: &MonitoringDb,
    graph: &RelationshipGraph,
    symptom_entity: EntityId,
    threshold_scale: f64,
) -> Vec<EntityId> {
    let Some(start) = graph.node(symptom_entity) else {
        return Vec::new();
    };
    let mut visited: BTreeSet<usize> = BTreeSet::new();
    let mut candidates = Vec::new();
    let mut queue = VecDeque::from([start]);
    visited.insert(start);
    while let Some(u) = queue.pop_front() {
        let entity = graph.entity(u);
        let hot = entity == symptom_entity || entity_is_hot(db, entity, threshold_scale);
        if !hot {
            continue; // pruned: neither a candidate nor expanded through
        }
        if entity != symptom_entity {
            candidates.push(entity);
        }
        // Explore both edge directions: influence may flow either way
        // through the loose associations.
        for &v in graph.out_nbrs(u).iter().chain(graph.in_nbrs(u)) {
            if visited.insert(v) {
                queue.push_back(v);
            }
        }
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_from_seeds, BuildOptions};
    use murphy_telemetry::{AssociationKind, EntityKind, MetricKind};

    /// Chain svc -- vm1 -- vm2 -- vm3 with controllable CPU levels.
    fn chain(cpu: [f64; 3]) -> (MonitoringDb, RelationshipGraph, EntityId, [EntityId; 3]) {
        let mut db = MonitoringDb::new(10);
        let svc = db.add_entity(EntityKind::Service, "svc");
        let vms: Vec<EntityId> = (0..3)
            .map(|i| db.add_entity(EntityKind::Vm, format!("vm{i}")))
            .collect();
        db.relate(svc, vms[0], AssociationKind::Related);
        db.relate(vms[0], vms[1], AssociationKind::Related);
        db.relate(vms[1], vms[2], AssociationKind::Related);
        db.record(svc, MetricKind::Latency, 0, 500.0);
        for (i, &c) in cpu.iter().enumerate() {
            db.record(vms[i], MetricKind::CpuUtil, 0, c);
        }
        let graph = build_from_seeds(&db, &[svc], BuildOptions::default());
        (db, graph, svc, [vms[0], vms[1], vms[2]])
    }

    #[test]
    fn hot_chain_is_fully_explored() {
        let (db, graph, svc, vms) = chain([90.0, 80.0, 70.0]);
        let c = prune_candidates(&db, &graph, svc, 1.0);
        assert_eq!(c, vec![vms[0], vms[1], vms[2]]);
    }

    #[test]
    fn cold_entity_blocks_expansion() {
        // vm1 is cold (CPU 5% < 25%): vm2 behind it is unreachable.
        let (db, graph, svc, vms) = chain([90.0, 5.0, 95.0]);
        let c = prune_candidates(&db, &graph, svc, 1.0);
        assert_eq!(c, vec![vms[0]]);
    }

    #[test]
    fn symptom_itself_is_not_a_candidate() {
        let (db, graph, svc, _) = chain([90.0, 90.0, 90.0]);
        let c = prune_candidates(&db, &graph, svc, 1.0);
        assert!(!c.contains(&svc));
    }

    #[test]
    fn threshold_scale_tightens_or_loosens() {
        let (db, graph, svc, vms) = chain([30.0, 30.0, 30.0]);
        // Default: 30% > 25% — everything qualifies.
        assert_eq!(prune_candidates(&db, &graph, svc, 1.0).len(), 3);
        // Scale 2.0: threshold 50% — nothing qualifies.
        assert!(prune_candidates(&db, &graph, svc, 2.0).is_empty());
        // Scale 0.1: threshold 2.5% — everything qualifies.
        assert_eq!(prune_candidates(&db, &graph, svc, 0.1), vec![vms[0], vms[1], vms[2]]);
    }

    #[test]
    fn symptom_not_in_graph_returns_empty() {
        let (db, graph, _, _) = chain([90.0, 90.0, 90.0]);
        assert!(prune_candidates(&db, &graph, EntityId(99), 1.0).is_empty());
    }

    #[test]
    fn entity_is_hot_checks_any_metric() {
        let mut db = MonitoringDb::new(10);
        let vm = db.add_entity(EntityKind::Vm, "vm");
        db.record(vm, MetricKind::CpuUtil, 0, 10.0); // below 25
        db.record(vm, MetricKind::DropRate, 0, 0.5); // above 0.1
        assert!(entity_is_hot(&db, vm, 1.0));
        let cold = db.add_entity(EntityKind::Vm, "cold");
        db.record(cold, MetricKind::CpuUtil, 0, 1.0);
        assert!(!entity_is_hot(&db, cold, 1.0));
        // No metrics at all: not hot.
        let bare = db.add_entity(EntityKind::Vm, "bare");
        assert!(!entity_is_hot(&db, bare, 1.0));
    }
}
