//! Relationship graph for the Murphy reproduction (§4.1 of the paper).
//!
//! The relationship graph models *loose* associations between entities:
//! directed edges in both directions by default (the platform usually
//! cannot discern influence direction), a single directed edge where the
//! direction is known (e.g. caller → callee), and — critically — **cycles
//! as the common case** (§2.2).
//!
//! * [`graph`] — the [`graph::RelationshipGraph`] structure: dense local
//!   node indexing, in/out adjacency, degree queries.
//! * [`build`] — construction by recursive neighborhood expansion from a
//!   seed set `S` (an affected application's entities or one problematic
//!   entity), with an optional hop limit for intractably large graphs.
//! * [`paths`] — BFS distances and the *shortest-path subgraph* `T(A→D)`
//!   that the adapted Gibbs sampler resamples, ordered by increasing
//!   distance from the candidate root cause.
//! * [`cycles`] — cycle statistics (length-2 and length-3 counts, per-node
//!   cycle membership) used to reproduce the §2.2 measurements.
//! * [`prune`] — the conservative-threshold BFS that narrows the root-cause
//!   search space (§4.2), shared by Murphy and all baselines for fairness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod cycles;
pub mod graph;
pub mod paths;
pub mod prune;

pub use build::{build_from_seeds, BuildOptions};
pub use cycles::CycleStats;
pub use graph::{NodeIdx, RelationshipGraph};
pub use paths::{ShortestPathSubgraph, SymptomDistances};
pub use prune::prune_candidates;
