//! BFS distances and the shortest-path subgraph.
//!
//! The adapted Gibbs sampler (§4.2) does not resample the full graph: it
//! resamples only "the entities in the shortest path subgraph from A to D",
//! ordered by increasing distance from A. A node v belongs to that
//! subgraph exactly when `dist(A→v) + dist(v→D) == dist(A→D)` in the
//! directed relationship graph.

use crate::graph::{NodeIdx, RelationshipGraph};
use murphy_telemetry::EntityId;
use std::collections::VecDeque;

/// BFS distances (hop counts) from a source along outgoing edges.
/// Unreachable nodes get `usize::MAX`.
pub fn bfs_distances(graph: &RelationshipGraph, source: NodeIdx) -> Vec<usize> {
    bfs_with(graph, source, |g, n| g.out_nbrs(n))
}

/// BFS distances *to* a target, i.e. along incoming edges reversed.
pub fn bfs_distances_rev(graph: &RelationshipGraph, target: NodeIdx) -> Vec<usize> {
    bfs_with(graph, target, |g, n| g.in_nbrs(n))
}

fn bfs_with<'g, F>(graph: &'g RelationshipGraph, source: NodeIdx, nbrs: F) -> Vec<usize>
where
    F: Fn(&'g RelationshipGraph, NodeIdx) -> &'g [NodeIdx],
{
    let n = graph.node_count();
    let mut dist = vec![usize::MAX; n];
    if source >= n {
        return dist;
    }
    dist[source] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        for &v in nbrs(graph, u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Reverse BFS distances to one fixed target entity, shared across every
/// candidate evaluated against the same symptom.
///
/// [`ShortestPathSubgraph::compute_with_slack`] runs two BFS traversals per
/// candidate: forward from the candidate `A` and reverse from the target
/// `D`. The reverse half depends only on `D` — for a symptom with hundreds
/// of surviving candidates it is recomputed identically hundreds of times.
/// Computing it once per symptom yields, for free, the distance
/// `dist(A→D)` of *every* candidate at once (`dist_to[A]`), and lets
/// [`ShortestPathSubgraph::compute_with_slack_from`] build each
/// per-candidate subgraph with a single forward traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymptomDistances {
    target: NodeIdx,
    dist_to: Vec<usize>,
}

impl SymptomDistances {
    /// One reverse BFS from `to`. Returns `None` when the entity is not in
    /// the graph.
    pub fn compute(graph: &RelationshipGraph, to: EntityId) -> Option<Self> {
        let target = graph.node(to)?;
        Some(Self {
            dist_to: bfs_distances_rev(graph, target),
            target,
        })
    }

    /// The target's local node index.
    pub fn target(&self) -> NodeIdx {
        self.target
    }

    /// `dist(v→target)` for every local node index (`usize::MAX` when the
    /// target is unreachable from `v`).
    pub fn dist_to(&self) -> &[usize] {
        &self.dist_to
    }

    /// `dist(from→target)` in hops, without any per-candidate traversal.
    /// `None` when `from` is not in the graph or cannot reach the target.
    pub fn distance_from(&self, graph: &RelationshipGraph, from: EntityId) -> Option<usize> {
        let a = graph.node(from)?;
        match self.dist_to[a] {
            usize::MAX => None,
            d => Some(d),
        }
    }
}

/// The shortest-path subgraph `T(A→D)` with its resampling order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortestPathSubgraph {
    /// Nodes on some shortest path from A to D, ordered by increasing
    /// distance from A (ties broken by node index for determinism).
    /// Excludes A itself (whose value is pinned to the counterfactual)
    /// and includes D last.
    pub order: Vec<NodeIdx>,
    /// Distance from A to D in hops.
    pub distance: usize,
}

impl ShortestPathSubgraph {
    /// Compute `T(A→D)`. Returns `None` when D is unreachable from A —
    /// in that case the candidate A cannot influence D through the graph
    /// and Murphy skips it.
    pub fn compute(
        graph: &RelationshipGraph,
        from: EntityId,
        to: EntityId,
    ) -> Option<ShortestPathSubgraph> {
        Self::compute_with_slack(graph, from, to, 0)
    }

    /// Compute `T(A→D)` with slack: include every node on an A→D walk of
    /// length at most `dist(A,D) + slack`, i.e. nodes v with
    /// `dist(A→v) + dist(v→D) ≤ dist(A→D) + slack`.
    ///
    /// Slack 0 is the strict shortest-path subgraph. Murphy uses a small
    /// positive slack by default: influence frequently makes short
    /// "detours" through an adjacent entity — a service's congestion
    /// signal passes through its container (service → container →
    /// service), one hop off every shortest path — and those detour nodes
    /// must be resampled for the counterfactual to propagate.
    pub fn compute_with_slack(
        graph: &RelationshipGraph,
        from: EntityId,
        to: EntityId,
        slack: usize,
    ) -> Option<ShortestPathSubgraph> {
        let rev = SymptomDistances::compute(graph, to)?;
        Self::compute_with_slack_from(graph, from, &rev, slack)
    }

    /// [`Self::compute_with_slack`] with the reverse-BFS half precomputed:
    /// `rev` carries `dist(·→D)` for every node, so only the forward BFS
    /// from the candidate runs per call. Produces exactly the subgraph
    /// `compute_with_slack(graph, from, D, slack)` would — callers
    /// evaluating many candidates against one symptom share one
    /// [`SymptomDistances`] and halve the traversal work.
    pub fn compute_with_slack_from(
        graph: &RelationshipGraph,
        from: EntityId,
        rev: &SymptomDistances,
        slack: usize,
    ) -> Option<ShortestPathSubgraph> {
        let a = graph.node(from)?;
        let d = rev.target();
        if a == d {
            return Some(ShortestPathSubgraph {
                order: vec![d],
                distance: 0,
            });
        }
        // Unreachable either way: no forward BFS needed when the reverse
        // distances already rule the candidate out.
        if rev.dist_to[a] == usize::MAX {
            return None;
        }
        let dist_a = bfs_distances(graph, a);
        if dist_a[d] == usize::MAX {
            return None;
        }
        let dist_to_d = rev.dist_to();
        let total = dist_a[d];
        let mut members: Vec<NodeIdx> = (0..graph.node_count())
            .filter(|&v| {
                v != a
                    && v != d
                    && dist_a[v] != usize::MAX
                    && dist_to_d[v] != usize::MAX
                    && dist_a[v] + dist_to_d[v] <= total + slack
            })
            .collect();
        // Close the set under on-walk in-neighbors: to propagate the
        // counterfactual through a member, the member's *inputs* must be
        // resampled too when they themselves sit on an A→D walk. This
        // captures the ubiquitous one-hop detours (service → container →
        // service) that a pure path criterion misses at every hop.
        let mut closure: Vec<NodeIdx> = Vec::new();
        let in_members = |set: &[NodeIdx], v: NodeIdx| set.contains(&v);
        let mut closure_sources = members.clone();
        closure_sources.push(d); // the target's own inputs matter most
        for &v in &closure_sources {
            for &w in graph.in_nbrs(v) {
                if w != a
                    && w != d
                    && dist_a[w] != usize::MAX
                    && dist_to_d[w] != usize::MAX
                    && !in_members(&members, w)
                    && !in_members(&closure, w)
                {
                    closure.push(w);
                }
            }
        }
        members.extend(closure);
        members.sort_by_key(|&v| (dist_a[v], v));
        // The target is always resampled last so the final read reflects
        // the freshest upstream values.
        members.push(d);
        Some(ShortestPathSubgraph {
            order: members,
            distance: total,
        })
    }

    /// Entities of the subgraph in resampling order.
    pub fn entities<'g>(&self, graph: &'g RelationshipGraph) -> Vec<EntityId> {
        self.order.iter().map(|&i| graph.entity(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(n: u32) -> EntityId {
        EntityId(n)
    }

    /// The toy graph of Figure 3: A–B, B–C, B–E, C–D, E–D, all
    /// bidirectional.
    fn figure3_graph() -> RelationshipGraph {
        let mut g = RelationshipGraph::new();
        for i in 0..5 {
            g.add_node(e(i)); // 0=A 1=B 2=C 3=D 4=E
        }
        for &(x, y) in &[(0u32, 1u32), (1, 2), (1, 4), (2, 3), (4, 3)] {
            g.add_edge(e(x), e(y));
            g.add_edge(e(y), e(x));
        }
        g
    }

    #[test]
    fn bfs_distances_on_figure3() {
        let g = figure3_graph();
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2]);
    }

    #[test]
    fn reverse_bfs_matches_forward_on_symmetric_graph() {
        let g = figure3_graph();
        let fwd = bfs_distances(&g, 3);
        let rev = bfs_distances_rev(&g, 3);
        assert_eq!(fwd, rev);
    }

    #[test]
    fn shortest_path_subgraph_figure3() {
        // From A (0) to D (3): shortest paths are A-B-C-D and A-B-E-D.
        // Subgraph = {B, C, E, D}, ordered by distance from A: B, then C
        // and E (tied at 2), then D.
        let g = figure3_graph();
        let sp = ShortestPathSubgraph::compute(&g, e(0), e(3)).unwrap();
        assert_eq!(sp.distance, 3);
        assert_eq!(sp.order, vec![1, 2, 4, 3]);
        assert_eq!(sp.entities(&g), vec![e(1), e(2), e(4), e(3)]);
    }

    #[test]
    fn off_walk_nodes_are_excluded() {
        let mut g = figure3_graph();
        // Add a pendant node F reachable from C but with no edge back:
        // F lies on no A→D walk and must not be resampled.
        g.add_node(e(5));
        g.add_edge(e(2), e(5));
        let sp = ShortestPathSubgraph::compute(&g, e(0), e(3)).unwrap();
        assert!(!sp.order.contains(&5));
    }

    #[test]
    fn on_walk_inputs_are_closed_over() {
        let mut g = figure3_graph();
        // A bidirectional pendant F on C *is* an input of a member and
        // lies on an A→D walk (A..C→F→C..D), so the closure includes it:
        // C's factor reads F, and the counterfactual must refresh F too.
        g.add_node(e(5));
        g.add_edge(e(2), e(5));
        g.add_edge(e(5), e(2));
        let sp = ShortestPathSubgraph::compute(&g, e(0), e(3)).unwrap();
        assert!(sp.order.contains(&5));
        // The strict member set is still there and D is still last.
        for member in [1usize, 2, 4] {
            assert!(sp.order.contains(&member));
        }
        assert_eq!(*sp.order.last().unwrap(), 3);
    }

    #[test]
    fn unreachable_target_is_none() {
        let mut g = RelationshipGraph::new();
        g.add_node(e(0));
        g.add_node(e(1));
        // Only edge 1 → 0; 0 cannot reach 1.
        g.add_edge(e(1), e(0));
        assert!(ShortestPathSubgraph::compute(&g, e(0), e(1)).is_none());
    }

    #[test]
    fn directed_shortest_paths_respect_orientation() {
        // 0 → 1 → 2 and a long way back 2 → 0.
        let mut g = RelationshipGraph::new();
        for i in 0..3 {
            g.add_node(e(i));
        }
        g.add_edge(e(0), e(1));
        g.add_edge(e(1), e(2));
        g.add_edge(e(2), e(0));
        let sp = ShortestPathSubgraph::compute(&g, e(0), e(2)).unwrap();
        assert_eq!(sp.distance, 2);
        assert_eq!(sp.order, vec![1, 2]);
        // And 2 → 0 directly.
        let sp = ShortestPathSubgraph::compute(&g, e(2), e(0)).unwrap();
        assert_eq!(sp.distance, 1);
        assert_eq!(sp.order, vec![0]);
    }

    #[test]
    fn same_source_and_target() {
        let g = figure3_graph();
        let sp = ShortestPathSubgraph::compute(&g, e(2), e(2)).unwrap();
        assert_eq!(sp.distance, 0);
        assert_eq!(sp.order, vec![2]);
    }

    #[test]
    fn missing_entities_yield_none() {
        let g = figure3_graph();
        assert!(ShortestPathSubgraph::compute(&g, e(0), e(99)).is_none());
        assert!(ShortestPathSubgraph::compute(&g, e(99), e(0)).is_none());
    }
}
