//! `murphy` — command-line performance diagnosis.
//!
//! ```text
//! murphy emulate  --app hotel|social --fault cpu|mem|disk|interference
//!                 [--seed N] [--ticks N] [--causal] --out trace.json
//! murphy info     trace.json
//! murphy diagnose trace.json [--fast|--paper] [--top K] [--explain]
//!                 [--batch] [--scheme murphy|sage|netmedic|explainit]
//! ```
//!
//! `emulate` generates a fault scenario with the built-in emulators and
//! writes it as a JSON trace; `info` summarizes a trace (entities, cycle
//! statistics, symptom); `diagnose` runs a diagnosis scheme on it and
//! prints the ranked root causes, marking the trace's recorded ground
//! truth where present. `--batch` widens diagnosis to every
//! threshold-exceeding metric in the trace and diagnoses them all in one
//! shared-memoization pass.

use murphy_baselines::{DiagnosisScheme, SchemeContext};
use murphy_core::explain::explain_chain;
use murphy_core::{Murphy, MurphyConfig, Symptom};
use murphy_experiments::schemes::SchemeKind;
use murphy_graph::{prune_candidates, CycleStats};
use murphy_sim::faults::FaultKind;
use murphy_sim::scenario::{FaultPlan, Scenario, ScenarioBuilder};
use murphy_sim::traces;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match command {
        "emulate" => cmd_emulate(rest),
        "info" => cmd_info(rest),
        "diagnose" => cmd_diagnose(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}

const USAGE: &str = "\
murphy — performance diagnosis (SIGCOMM 2023 reproduction)

  murphy emulate  --app hotel|social --fault cpu|mem|disk|interference
                  [--seed N] [--ticks N] [--causal] --out trace.json
  murphy info     trace.json
  murphy diagnose trace.json [--fast|--paper] [--top K] [--explain]
                  [--batch] [--scheme murphy|sage|netmedic|explainit]";

/// Pull the value following a `--flag`, removing both from `args`.
fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let idx = args.iter().position(|a| a == flag)?;
    if idx + 1 >= args.len() {
        return None;
    }
    let value = args.remove(idx + 1);
    args.remove(idx);
    Some(value)
}

/// Pull a boolean `--flag`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(idx) = args.iter().position(|a| a == flag) {
        args.remove(idx);
        true
    } else {
        false
    }
}

fn cmd_emulate(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let app = take_value(&mut args, "--app").unwrap_or_else(|| "hotel".into());
    let fault = take_value(&mut args, "--fault").unwrap_or_else(|| "cpu".into());
    let seed: u64 = take_value(&mut args, "--seed")
        .map(|s| s.parse().map_err(|_| "invalid --seed"))
        .transpose()?
        .unwrap_or(7);
    let ticks: u64 = take_value(&mut args, "--ticks")
        .map(|s| s.parse().map_err(|_| "invalid --ticks"))
        .transpose()?
        .unwrap_or(300);
    let causal = take_flag(&mut args, "--causal");
    let out = PathBuf::from(
        take_value(&mut args, "--out").ok_or("missing --out <file>")?,
    );
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }

    let builder = match app.as_str() {
        "hotel" => ScenarioBuilder::hotel_reservation(seed),
        "social" => ScenarioBuilder::social_network(seed),
        other => return Err(format!("unknown app '{other}' (hotel|social)")),
    };
    let plan = match fault.as_str() {
        "cpu" => FaultPlan::contention(FaultKind::Cpu, 1.4),
        "mem" => FaultPlan::contention(FaultKind::Mem, 1.4),
        "disk" => FaultPlan::contention(FaultKind::Disk, 1.4),
        "interference" => FaultPlan::interference(1.2),
        other => return Err(format!("unknown fault '{other}'")),
    };
    let scenario = builder
        .with_fault(plan)
        .with_ticks(ticks)
        .with_causal_edges(causal)
        .build();
    traces::save(&scenario, &out).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "wrote {} ({} entities, symptom: {} {})",
        out.display(),
        scenario.db.entity_count(),
        scenario
            .db
            .entity(scenario.symptom.entity)
            .map(|e| e.describe())
            .unwrap_or_default(),
        scenario.symptom.metric,
    );
    Ok(())
}

fn load_trace(args: &[String]) -> Result<(Scenario, Vec<String>), String> {
    let mut args = args.to_vec();
    let path_idx = args
        .iter()
        .position(|a| !a.starts_with("--"))
        .ok_or("missing trace file argument")?;
    let path = PathBuf::from(args.remove(path_idx));
    let scenario =
        traces::load(&path).map_err(|e| format!("loading {}: {e}", path.display()))?;
    Ok((scenario, args))
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let (scenario, rest) = load_trace(args)?;
    if !rest.is_empty() {
        return Err(format!("unexpected arguments: {rest:?}"));
    }
    println!("trace: {}", scenario.name);
    println!("entities: {}", scenario.db.entity_count());
    println!("shards: {}", scenario.db.shard_count());
    println!(
        "graph: {} nodes, {} directed edges",
        scenario.graph.node_count(),
        scenario.graph.edge_count()
    );
    let cycles = CycleStats::count(&scenario.graph);
    println!("cycles: {} len-2, {} len-3", cycles.len2, cycles.len3);
    println!(
        "symptom: {} {} = {:.2} (incident from tick {})",
        scenario
            .db
            .entity(scenario.symptom.entity)
            .map(|e| e.describe())
            .unwrap_or_default(),
        scenario.symptom.metric,
        scenario.db.current_value(scenario.symptom.metric_id()),
        scenario.incident_start_tick
    );
    for t in &scenario.ground_truth {
        println!(
            "ground truth: {}",
            scenario.db.entity(*t).map(|e| e.describe()).unwrap_or_default()
        );
    }
    Ok(())
}

fn cmd_diagnose(args: &[String]) -> Result<(), String> {
    let (scenario, mut rest) = load_trace(args)?;
    let paper = take_flag(&mut rest, "--paper");
    let _fast = take_flag(&mut rest, "--fast");
    let explain = take_flag(&mut rest, "--explain");
    let top: usize = take_value(&mut rest, "--top")
        .map(|s| s.parse().map_err(|_| "invalid --top"))
        .transpose()?
        .unwrap_or(5);
    let batch = take_flag(&mut rest, "--batch");
    let scheme_word =
        take_value(&mut rest, "--scheme").unwrap_or_else(|| "murphy".into());
    if !rest.is_empty() {
        return Err(format!("unexpected arguments: {rest:?}"));
    }
    let config = if paper {
        MurphyConfig::paper()
    } else {
        MurphyConfig::fast()
    };

    if batch {
        if scheme_word != "murphy" {
            return Err("--batch is only supported with --scheme murphy".into());
        }
        return cmd_diagnose_batch(&scenario, config, top, explain);
    }

    let ranked: Vec<murphy_telemetry::EntityId> = if scheme_word == "murphy" {
        // Full pipeline with explanations available.
        let murphy = Murphy::new(config);
        let report = murphy.diagnose(&scenario.db, &scenario.graph, &scenario.symptom);
        println!(
            "evaluated {} candidates ({} pruned, {} capped)",
            report.candidates_evaluated, report.candidates_pruned, report.candidates_capped
        );
        println!(
            "plan cache: plans_built={} plans_reused={}",
            report.plans_built, report.plans_reused
        );
        println!(
            "train cache: refit {} / reused {}",
            report.factors_refit, report.factors_reused
        );
        report.root_causes.iter().map(|r| r.entity).collect()
    } else {
        let kind = match scheme_word.as_str() {
            "sage" => SchemeKind::Sage,
            "netmedic" => SchemeKind::NetMedic,
            "explainit" => SchemeKind::ExplainIt,
            other => return Err(format!("unknown scheme '{other}'")),
        };
        let candidates =
            prune_candidates(&scenario.db, &scenario.graph, scenario.symptom.entity, 1.0);
        let scheme: Box<dyn DiagnosisScheme> = kind.build(config);
        scheme.diagnose(&SchemeContext {
            db: &scenario.db,
            graph: &scenario.graph,
            symptom: scenario.symptom,
            candidates: &candidates,
            n_train: config.n_train,
        })
    };

    if ranked.is_empty() {
        println!("no root causes reported");
        return Ok(());
    }
    print_ranked(&scenario, &scenario.symptom, &ranked, top, explain, &config);
    Ok(())
}

/// Diagnose every threshold-exceeding symptom in the trace in one batch:
/// the model is trained once and per-symptom setup is shared.
fn cmd_diagnose_batch(
    scenario: &Scenario,
    config: MurphyConfig,
    top: usize,
    explain: bool,
) -> Result<(), String> {
    let symptoms = discover_symptoms(scenario, &config);
    let murphy = Murphy::new(config);
    let reports = murphy.diagnose_batch(&scenario.db, &scenario.graph, &symptoms);
    println!("diagnosing {} symptoms in one batch", symptoms.len());
    for (symptom, report) in symptoms.iter().zip(&reports) {
        println!(
            "\nsymptom: {} {} — evaluated {} candidates ({} pruned, {} capped)",
            scenario
                .db
                .entity(symptom.entity)
                .map(|e| e.describe())
                .unwrap_or_default(),
            symptom.metric,
            report.candidates_evaluated,
            report.candidates_pruned,
            report.candidates_capped,
        );
        println!(
            "plan cache: plans_built={} plans_reused={}",
            report.plans_built, report.plans_reused
        );
        println!(
            "train cache: refit {} / reused {}",
            report.factors_refit, report.factors_reused
        );
        if report.root_causes.is_empty() {
            println!("no root causes reported");
            continue;
        }
        let ranked: Vec<murphy_telemetry::EntityId> =
            report.root_causes.iter().map(|r| r.entity).collect();
        print_ranked(scenario, symptom, &ranked, top, explain, murphy.config());
    }
    Ok(())
}

/// The trace's recorded symptom plus every `(entity, metric)` in the
/// graph whose current value exceeds its conservative threshold — the
/// Appendix A.1 automatic mode, widened to the whole trace.
fn discover_symptoms(scenario: &Scenario, config: &MurphyConfig) -> Vec<Symptom> {
    let mut out = vec![scenario.symptom];
    for &e in scenario.graph.entities() {
        for kind in scenario.db.metrics_of(e) {
            let value = scenario
                .db
                .current_value(murphy_telemetry::MetricId::new(e, kind));
            if value > kind.threshold() * config.threshold_scale {
                let symptom = Symptom::high(e, kind);
                if !out.contains(&symptom) {
                    out.push(symptom);
                }
            }
        }
    }
    out
}

/// Print a ranked root-cause list, marking ground truth and optionally
/// rendering the explanation chain toward `symptom`.
fn print_ranked(
    scenario: &Scenario,
    symptom: &Symptom,
    ranked: &[murphy_telemetry::EntityId],
    top: usize,
    explain: bool,
    config: &MurphyConfig,
) {
    for (i, entity) in ranked.iter().take(top).enumerate() {
        let name = scenario
            .db
            .entity(*entity)
            .map(|e| e.describe())
            .unwrap_or_default();
        let marker = if scenario.ground_truth.contains(entity) {
            "  <-- ground truth"
        } else {
            ""
        };
        println!("{}. {}{}", i + 1, name, marker);
        if explain {
            if let Some(chain) = explain_chain(
                &scenario.db,
                &scenario.graph,
                *entity,
                symptom.entity,
                config.threshold_scale,
            ) {
                for line in chain.render().lines() {
                    println!("   {line}");
                }
            }
        }
    }
}
