//! End-to-end tests of the `murphy` binary: emulate → info → diagnose.

use std::path::PathBuf;
use std::process::Command;

fn murphy_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_murphy"))
}

fn temp_trace(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("murphy-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn emulate_info_diagnose_round_trip() {
    let trace = temp_trace("roundtrip.json");
    let out = murphy_bin()
        .args(["emulate", "--app", "hotel", "--fault", "cpu", "--seed", "3", "--ticks", "220"])
        .args(["--out", trace.to_str().unwrap()])
        .output()
        .expect("run emulate");
    assert!(out.status.success(), "emulate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(trace.exists());

    let out = murphy_bin()
        .arg("info")
        .arg(&trace)
        .output()
        .expect("run info");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("entities:"), "{text}");
    assert!(text.contains("shards:"), "{text}");
    assert!(text.contains("symptom:"), "{text}");
    assert!(text.contains("ground truth:"), "{text}");

    let out = murphy_bin()
        .args(["diagnose"])
        .arg(&trace)
        .args(["--top", "5"])
        .output()
        .expect("run diagnose");
    assert!(out.status.success(), "diagnose failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1. "), "no ranked output: {text}");
    // The CPU-contention scenario is reliably diagnosed at this seed.
    assert!(text.contains("ground truth"), "ground truth unmarked: {text}");
    // Cache observability: the plan-interner counters are reported.
    assert!(text.contains("plans_built="), "no plan cache stats: {text}");
    assert!(text.contains("plans_reused="), "no plan cache stats: {text}");
    // ...and the training-cache counters. A one-shot diagnose trains once
    // on a fresh cache, so everything is a refit.
    assert!(text.contains("train cache: refit "), "no train cache stats: {text}");

    std::fs::remove_file(&trace).ok();
}

#[test]
fn diagnose_with_baseline_scheme() {
    let trace = temp_trace("baseline.json");
    let status = murphy_bin()
        .args(["emulate", "--app", "hotel", "--fault", "mem", "--seed", "5", "--ticks", "200", "--causal"])
        .args(["--out", trace.to_str().unwrap()])
        .status()
        .expect("run emulate");
    assert!(status.success());

    for scheme in ["netmedic", "explainit", "sage"] {
        let out = murphy_bin()
            .arg("diagnose")
            .arg(&trace)
            .args(["--scheme", scheme])
            .output()
            .expect("run diagnose");
        assert!(out.status.success(), "{scheme} failed: {}", String::from_utf8_lossy(&out.stderr));
    }
    std::fs::remove_file(&trace).ok();
}

#[test]
fn diagnose_batch_mode() {
    let trace = temp_trace("batch.json");
    let status = murphy_bin()
        .args(["emulate", "--app", "hotel", "--fault", "cpu", "--seed", "3", "--ticks", "220"])
        .args(["--out", trace.to_str().unwrap()])
        .status()
        .expect("run emulate");
    assert!(status.success());

    let out = murphy_bin()
        .arg("diagnose")
        .arg(&trace)
        .args(["--batch", "--top", "3"])
        .output()
        .expect("run diagnose --batch");
    assert!(out.status.success(), "batch failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("symptoms in one batch"), "{text}");
    assert!(text.contains("1. "), "no ranked output: {text}");
    assert!(text.contains("plans_built="), "no plan cache stats: {text}");
    assert!(text.contains("train cache: refit "), "no train cache stats: {text}");

    // Batch mode is Murphy-only: baselines have no batch entry point.
    let out = murphy_bin()
        .arg("diagnose")
        .arg(&trace)
        .args(["--batch", "--scheme", "netmedic"])
        .output()
        .expect("run diagnose --batch --scheme netmedic");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--batch"));

    std::fs::remove_file(&trace).ok();
}

#[test]
fn bad_inputs_fail_cleanly() {
    // Unknown command.
    let out = murphy_bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    // Missing trace file.
    let out = murphy_bin().args(["info", "/nonexistent/trace.json"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
    // Unknown app.
    let out = murphy_bin()
        .args(["emulate", "--app", "nope", "--out", "/tmp/x.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // Missing --out.
    let out = murphy_bin().args(["emulate", "--app", "hotel"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn help_prints_usage() {
    let out = murphy_bin().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("murphy emulate"));
}
