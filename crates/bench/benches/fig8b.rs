//! Criterion bench for Figure 8b: times one resampling pass per Gibbs
//! round count over an enterprise app subgraph.

use criterion::{criterion_group, criterion_main, Criterion};
use murphy_core::sampler::resample_subgraph;
use murphy_core::training::{train_mrf, TrainingWindow};
use murphy_core::MurphyConfig;
use murphy_graph::{build_from_seeds, BuildOptions, ShortestPathSubgraph};
use murphy_sim::enterprise::{generate, EnterpriseConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig8b(c: &mut Criterion) {
    let enterprise = generate(&EnterpriseConfig::small(11));
    let app = &enterprise.apps[0];
    let db = &enterprise.db;
    let graph = build_from_seeds(db, &db.application_members(&app.name), BuildOptions::four_hops());
    let config = MurphyConfig::fast();
    let mrf = train_mrf(db, &graph, &config, TrainingWindow::online(db, 150), db.latest_tick());
    let sp = ShortestPathSubgraph::compute_with_slack(&graph, app.flows[0], app.db[0], 2)
        .expect("path exists");

    let mut group = c.benchmark_group("fig8b_gibbs_rounds");
    for rounds in [1usize, 2, 4, 8] {
        group.bench_function(format!("W={rounds}"), |b| {
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| {
                let mut state = mrf.current.clone();
                resample_subgraph(&mrf, &graph, &sp, &mut state, rounds, &mut rng);
                std::hint::black_box(state)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8b);
criterion_main!(benches);
