//! §6.7 scaling study: Murphy's end-to-end runtime versus relationship-
//! graph size (training is O((N+M)·T); inference O((N+M)·W) per sample).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use murphy_baselines::{DiagnosisScheme, MurphyScheme, SchemeContext};
use murphy_core::training::{train_mrf, TrainingWindow};
use murphy_core::MurphyConfig;
use murphy_graph::{build_from_seeds, prune_candidates, BuildOptions};
use murphy_sim::enterprise::{generate, EnterpriseConfig};
use murphy_sim::incidents::{build_incident, TABLE1};

fn bench_training_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_training_vs_graph_size");
    group.sample_size(10);
    for apps in [2usize, 6, 12] {
        let config = EnterpriseConfig {
            num_apps: apps,
            ..EnterpriseConfig::small(3)
        };
        let enterprise = generate(&config);
        let db = &enterprise.db;
        let seeds: Vec<_> = enterprise
            .apps
            .iter()
            .flat_map(|a| db.application_members(&a.name))
            .collect();
        let graph = build_from_seeds(db, &seeds, BuildOptions::four_hops());
        let murphy = MurphyConfig::fast();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}entities", graph.node_count())),
            &graph,
            |b, graph| {
                b.iter(|| {
                    std::hint::black_box(train_mrf(
                        db,
                        graph,
                        &murphy,
                        TrainingWindow::online(db, 120),
                        db.latest_tick(),
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_end_to_end_diagnosis");
    group.sample_size(10);
    let scenario = build_incident(TABLE1[1], 42);
    let candidates =
        prune_candidates(&scenario.db, &scenario.graph, scenario.symptom.entity, 1.0);
    group.bench_function("incident2_full_pipeline", |b| {
        b.iter(|| {
            let scheme = MurphyScheme::new(MurphyConfig::fast());
            let ctx = SchemeContext {
                db: &scenario.db,
                graph: &scenario.graph,
                symptom: scenario.symptom,
                candidates: &candidates,
                n_train: 150,
            };
            std::hint::black_box(scheme.diagnose(&ctx))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_training_scale, bench_end_to_end);
criterion_main!(benches);
