//! §6.7 scaling study: Murphy's end-to-end runtime versus relationship-
//! graph size (training is O((N+M)·T); inference O((N+M)·W) per sample).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use murphy_baselines::{DiagnosisScheme, MurphyScheme, SchemeContext};
use murphy_core::sampler::{resample_planned, resample_subgraph, ResamplePlan};
use murphy_core::training::{train_mrf, TrainingWindow};
use murphy_core::MurphyConfig;
use murphy_graph::{build_from_seeds, prune_candidates, BuildOptions, ShortestPathSubgraph};
use murphy_sim::enterprise::{generate, EnterpriseConfig};
use murphy_sim::incidents::{build_incident, TABLE1};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_training_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_training_vs_graph_size");
    group.sample_size(10);
    for apps in [2usize, 6, 12] {
        let config = EnterpriseConfig {
            num_apps: apps,
            ..EnterpriseConfig::small(3)
        };
        let enterprise = generate(&config);
        let db = &enterprise.db;
        let seeds: Vec<_> = enterprise
            .apps
            .iter()
            .flat_map(|a| db.application_members(&a.name))
            .collect();
        let graph = build_from_seeds(db, &seeds, BuildOptions::four_hops());
        let murphy = MurphyConfig::fast();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}entities", graph.node_count())),
            &graph,
            |b, graph| {
                b.iter(|| {
                    std::hint::black_box(train_mrf(
                        db,
                        graph,
                        &murphy,
                        TrainingWindow::online(db, 120),
                        db.latest_tick(),
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_end_to_end_diagnosis");
    group.sample_size(10);
    let scenario = build_incident(TABLE1[1], 42);
    let candidates =
        prune_candidates(&scenario.db, &scenario.graph, scenario.symptom.entity, 1.0);
    group.bench_function("incident2_full_pipeline", |b| {
        b.iter(|| {
            let scheme = MurphyScheme::new(MurphyConfig::fast());
            let ctx = SchemeContext {
                db: &scenario.db,
                graph: &scenario.graph,
                symptom: scenario.symptom,
                candidates: &candidates,
                n_train: 150,
            };
            std::hint::black_box(scheme.diagnose(&ctx))
        })
    });
    group.finish();
}

/// The inner Gibbs kernel in isolation: the allocation-free planned path
/// (plan + scratch built once, as `evaluate_candidate` does per candidate)
/// against the convenience wrapper that rebuilds both every call. The gap
/// between the two is the per-draw setup cost the candidate loop no longer
/// pays.
fn bench_gibbs_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_gibbs_kernel");
    let scenario = build_incident(TABLE1[1], 42);
    let config = MurphyConfig::fast();
    let mrf = train_mrf(
        &scenario.db,
        &scenario.graph,
        &config,
        TrainingWindow::online(&scenario.db, 150),
        scenario.db.latest_tick(),
    );
    let symptom = scenario.symptom.entity;
    let source = prune_candidates(&scenario.db, &scenario.graph, symptom, 1.0)
        .first()
        .copied()
        .unwrap_or(symptom);
    let sp = ShortestPathSubgraph::compute_with_slack(
        &scenario.graph,
        source,
        symptom,
        config.subgraph_slack,
    )
    .expect("candidate reaches the symptom");

    let plan = ResamplePlan::new(&mrf, &scenario.graph, &sp);
    group.bench_function("planned_scratch_reuse", |b| {
        let mut state = mrf.current.clone();
        let mut scratch = plan.scratch();
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            resample_planned(&mrf, &plan, &mut state, config.gibbs_rounds, &mut rng, &mut scratch);
            std::hint::black_box(state[0])
        })
    });
    group.bench_function("rebuild_per_call", |b| {
        let mut state = mrf.current.clone();
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            resample_subgraph(&mrf, &scenario.graph, &sp, &mut state, config.gibbs_rounds, &mut rng);
            std::hint::black_box(state[0])
        })
    });
    group.finish();
}

criterion_group!(benches, bench_training_scale, bench_end_to_end, bench_gibbs_kernel);
criterion_main!(benches);
