//! Criterion bench for Table 1: times one enterprise-incident diagnosis
//! (graph of O(10^2-10^3) entities) with Murphy.

use criterion::{criterion_group, criterion_main, Criterion};
use murphy_baselines::{DiagnosisScheme, MurphyScheme, SchemeContext};
use murphy_core::MurphyConfig;
use murphy_graph::prune_candidates;
use murphy_sim::incidents::{build_incident, TABLE1};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_incidents");
    group.sample_size(10);
    // Incident 2 is the Figure 1 crawler story; incident 8 has the most
    // red herrings.
    for &idx in &[1usize, 7] {
        let spec = TABLE1[idx];
        let scenario = build_incident(spec, 42);
        let candidates =
            prune_candidates(&scenario.db, &scenario.graph, scenario.symptom.entity, 1.0);
        group.bench_function(format!("incident{}", spec.id), |b| {
            b.iter(|| {
                let scheme = MurphyScheme::new(MurphyConfig::fast());
                let ctx = SchemeContext {
                    db: &scenario.db,
                    graph: &scenario.graph,
                    symptom: scenario.symptom,
                    candidates: &candidates,
                    n_train: 150,
                };
                std::hint::black_box(scheme.diagnose(&ctx))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
