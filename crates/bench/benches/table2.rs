//! Criterion bench for Table 2: times a degraded-input diagnosis (the
//! degradation operators plus graph rebuild plus Murphy).

use criterion::{criterion_group, criterion_main, Criterion};
use murphy_baselines::{DiagnosisScheme, MurphyScheme, SchemeContext};
use murphy_core::MurphyConfig;
use murphy_experiments::fig6::{contention_scenario, App};
use murphy_graph::{build_from_seeds, prune_candidates, BuildOptions};
use murphy_telemetry::degrade::{apply, DegradeContext, Degradation};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_table2(c: &mut Criterion) {
    let base = contention_scenario(App::HotelReservation, 3000, 240, 2);
    let mut group = c.benchmark_group("table2_robustness");
    group.sample_size(10);
    for degradation in Degradation::TABLE2 {
        group.bench_function(degradation.label(), |b| {
            b.iter(|| {
                let mut db = base.db.clone();
                let mut rng = StdRng::seed_from_u64(9);
                apply(
                    &mut db,
                    degradation,
                    DegradeContext {
                        symptom_entity: base.symptom.entity,
                        root_cause_entity: base.ground_truth[0],
                        incident_start_tick: base.incident_start_tick,
                    },
                    &mut rng,
                );
                let graph = build_from_seeds(&db, &[base.symptom.entity], BuildOptions::default());
                let candidates = prune_candidates(&db, &graph, base.symptom.entity, 1.0);
                let scheme = MurphyScheme::new(MurphyConfig::fast());
                let ctx = SchemeContext {
                    db: &db,
                    graph: &graph,
                    symptom: base.symptom,
                    candidates: &candidates,
                    n_train: 150,
                };
                std::hint::black_box(scheme.diagnose(&ctx))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
