//! Criterion bench for the Figure 5 interference experiment: times one
//! full interference-variant diagnosis (all four schemes) at fast scale.

use criterion::{criterion_group, criterion_main, Criterion};
use murphy_baselines::{DiagnosisScheme, SchemeContext};
use murphy_core::MurphyConfig;
use murphy_experiments::fig5::interference_scenario;
use murphy_experiments::schemes::SchemeKind;
use murphy_graph::prune_candidates;

fn bench_fig5(c: &mut Criterion) {
    let scenario = interference_scenario(1000, 240);
    let candidates = prune_candidates(&scenario.db, &scenario.graph, scenario.symptom.entity, 1.0);
    let mut group = c.benchmark_group("fig5_interference");
    group.sample_size(10);
    for kind in SchemeKind::ALL {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let scheme: Box<dyn DiagnosisScheme> = kind.build(MurphyConfig::fast());
                let ctx = SchemeContext {
                    db: &scenario.db,
                    graph: &scenario.graph,
                    symptom: scenario.symptom,
                    candidates: &candidates,
                    n_train: 150,
                };
                std::hint::black_box(scheme.diagnose(&ctx))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
