//! Criterion bench for Figure 8a: times fitting each model family on one
//! entity's prediction task (the unit of the 17K-entity sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use murphy_learn::{ModelKind, TrainedModel};

fn bench_fig8a(c: &mut Criterion) {
    // A representative task: 240 training slices, 10 features.
    let rows: Vec<Vec<f64>> = (0..240)
        .map(|t| (0..10).map(|f| ((t * (f + 3)) as f64 * 0.01).sin() * 20.0 + 30.0).collect())
        .collect();
    let ys: Vec<f64> = rows
        .iter()
        .map(|r| r.iter().enumerate().map(|(i, v)| v * (i as f64 * 0.1)).sum::<f64>() * 0.2)
        .collect();

    let mut group = c.benchmark_group("fig8a_model_fit");
    for kind in ModelKind::ALL {
        group.bench_function(kind.label(), |b| {
            b.iter(|| std::hint::black_box(TrainedModel::fit(kind, &rows, &ys, 7).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8a);
criterion_main!(benches);
