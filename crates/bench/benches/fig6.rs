//! Criterion bench for the Figure 6 contention experiment: times one
//! contention-scenario diagnosis per scheme on each app topology.

use criterion::{criterion_group, criterion_main, Criterion};
use murphy_baselines::{DiagnosisScheme, SchemeContext};
use murphy_core::MurphyConfig;
use murphy_experiments::fig6::{contention_scenario, App};
use murphy_experiments::schemes::SchemeKind;
use murphy_graph::prune_candidates;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_contention");
    group.sample_size(10);
    for app in [App::HotelReservation, App::SocialNetwork] {
        let scenario = contention_scenario(app, 2001, 240, 2);
        let candidates =
            prune_candidates(&scenario.db, &scenario.graph, scenario.symptom.entity, 1.0);
        for kind in [SchemeKind::Murphy, SchemeKind::Sage] {
            group.bench_function(format!("{}/{}", app.label(), kind.label()), |b| {
                b.iter(|| {
                    let scheme: Box<dyn DiagnosisScheme> = kind.build(MurphyConfig::fast());
                    let ctx = SchemeContext {
                        db: &scenario.db,
                        graph: &scenario.graph,
                        symptom: scenario.symptom,
                        candidates: &candidates,
                        n_train: 150,
                    };
                    std::hint::black_box(scheme.diagnose(&ctx))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
