//! Benchmark support for the Murphy reproduction.
//!
//! This crate hosts two things:
//!
//! * the `repro` binary (`cargo run -p murphy-bench --bin repro --release`)
//!   which regenerates every table and figure of the paper's evaluation as
//!   text output, and
//! * Criterion benchmarks (`cargo bench`) timing each experiment family
//!   plus the §6.7 scaling study.
//!
//! [`scale`] maps a user-facing `--scale` knob (fast / default / paper) to
//! the per-experiment configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scale;

pub use scale::Scale;
