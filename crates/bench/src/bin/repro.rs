//! `repro` — regenerate every table and figure of the Murphy paper.
//!
//! ```text
//! repro [--scale fast|default|paper] [--out FILE] [experiment ...]
//!
//! experiments: fig5c fig5d table1 fig6a fig6 table2 fig7 fig8a fig8b cycles all
//! ```
//!
//! Each experiment prints the paper-shaped rows/series; absolute numbers
//! come from the emulated substrates and are expected to match the paper
//! in *shape* (who wins, rough factors, crossovers), not in magnitude.
//!
//! The extra `bench` mode times online training and per-symptom diagnosis
//! at the requested scale and *appends* one record to a JSON trajectory
//! file (`--out`, default `BENCH_perf.json`), so successive runs — across
//! commits or `MURPHY_THREADS` settings — form a comparable history.

use murphy_bench::Scale;
use murphy_core::MurphyConfig;
use murphy_experiments::report::{f2, pct, series, table};
use murphy_experiments::schemes::SchemeKind;
use murphy_experiments::{fig5, fig6, fig7, fig8a, fig8b, perf, sensitivity, table1, table2};
use murphy_graph::CycleStats;
use murphy_learn::ModelKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Fast;
    let mut out = String::from("BENCH_perf.json");
    let mut experiments: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let word = iter.next().map(String::as_str).unwrap_or("");
                match Scale::parse(word) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale '{word}' (fast|default|paper)");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => {
                out = iter.next().cloned().unwrap_or(out);
            }
            "--help" | "-h" => {
                println!(
                    "repro [--scale fast|default|paper] [--out FILE] [fig5c fig5d table1 fig6a fig6 table2 fig7 fig8a fig8b cycles sensitivity perf bench all]"
                );
                return;
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = ["fig5c", "fig5d", "table1", "fig6a", "fig6", "table2", "fig7", "fig8a", "fig8b", "cycles", "sensitivity", "perf"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    println!("# Murphy reproduction — scale: {scale:?}\n");
    for exp in &experiments {
        match exp.as_str() {
            "fig5c" | "fig5d" => run_fig5(scale, exp == "fig5d"),
            "table1" => run_table1(scale),
            "fig6a" => run_fig6a(),
            "fig6" => run_fig6(scale),
            "table2" => run_table2(scale),
            "fig7" => run_fig7(scale),
            "fig8a" => run_fig8a(scale),
            "fig8b" => run_fig8b(scale),
            "cycles" => run_cycles(),
            "sensitivity" => run_sensitivity(scale),
            "perf" => run_perf(scale),
            "bench" => run_bench(scale, &out),
            other => eprintln!("unknown experiment '{other}', skipping"),
        }
    }
}

fn run_fig5(scale: Scale, precision_table: bool) {
    let results = fig5::run(&scale.fig5());
    if precision_table {
        let rows: Vec<Vec<String>> = SchemeKind::ALL
            .iter()
            .map(|&k| {
                let acc = results.of(k);
                vec![
                    k.label().to_string(),
                    f2(acc.recall_at(5)),
                    f2(acc.relaxed_recall()),
                    f2(acc.precision()),
                    f2(acc.relaxed_precision()),
                ]
            })
            .collect();
        println!(
            "{}",
            table(
                "Fig 5d — interference: precision and recall (K=5)",
                &["scheme", "recall", "relaxed recall", "precision", "relaxed precision"],
                &rows,
            )
        );
    } else {
        let mut rows: Vec<Vec<String>> = Vec::new();
        for k in [1usize, 2, 4, 8, 10] {
            let mut row = vec![format!("top-{k}")];
            for scheme in SchemeKind::ALL {
                row.push(pct(results.of(scheme).recall_at(k)));
            }
            rows.push(row);
        }
        println!(
            "{}",
            table(
                "Fig 5c — interference: top-K accuracy",
                &["K", "Murphy", "Sage", "NetMedic", "ExplainIT"],
                &rows,
            )
        );
    }
}

fn run_table1(scale: Scale) {
    let results = table1::run(&scale.table1());
    let mut rows: Vec<Vec<String>> = results
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{}. {}", r.id, r.description),
                r.fps[0].to_string(),
                r.fps[1].to_string(),
                r.fps[2].to_string(),
            ]
        })
        .collect();
    let avg = results.average_fps();
    rows.push(vec![
        "Average false positives".to_string(),
        f2(avg[0]),
        f2(avg[1]),
        f2(avg[2]),
    ]);
    let recall = results.recall();
    rows.push(vec![
        "Recall".to_string(),
        f2(recall[0]),
        f2(recall[1]),
        f2(recall[2]),
    ]);
    println!(
        "{}",
        table(
            "Table 1 — enterprise incidents: false positives",
            &["Incident (observed problems)", "Murphy FPs", "NetMedic FPs", "ExplainIT FPs"],
            &rows,
        )
    );
}

fn run_fig6a() {
    let trace = fig6::sample_trace(3, 300, 4);
    println!(
        "{}",
        series("Fig 6a — sample latency trace (4 prior incidents, main at the tail)", "time (s)", "latency (ms)", &trace)
    );
}

fn run_fig6(scale: Scale) {
    for app in [fig6::App::SocialNetwork, fig6::App::HotelReservation] {
        let results = fig6::run(app, &scale.fig6());
        let mut rows: Vec<Vec<String>> = Vec::new();
        for k in [1usize, 2, 4, 5, 8] {
            let mut row = vec![format!("top-{k}")];
            for scheme in SchemeKind::ALL {
                row.push(pct(results.of(scheme).recall_at(k)));
            }
            rows.push(row);
        }
        let fig = if app == fig6::App::SocialNetwork { "6b" } else { "6c" };
        println!(
            "{}",
            table(
                &format!("Fig {fig} — resource contention top-K accuracy ({})", app.label()),
                &["K", "Murphy", "Sage", "NetMedic", "ExplainIT"],
                &rows,
            )
        );
    }
}

fn run_table2(scale: Scale) {
    let results = table2::run(&scale.table2());
    let mut header: Vec<&str> = vec!["Scheme"];
    let col_strings: Vec<String> = results.columns.clone();
    header.extend(col_strings.iter().map(|s| s.as_str()));
    header.push("Aggregate");
    let rows: Vec<Vec<String>> = SchemeKind::ALL
        .iter()
        .map(|&k| {
            let mut row = vec![k.label().to_string()];
            for v in results.of(k) {
                row.push(f2(*v));
            }
            row.push(f2(results.aggregate(k)));
            row
        })
        .collect();
    println!(
        "{}",
        table("Table 2 — robustness to degraded data (recall@5)", &header, &rows)
    );
}

fn run_fig7(scale: Scale) {
    let results = fig7::run(&scale.fig7());
    let mut rows = vec![
        vec![
            "no prior incidents".to_string(),
            pct(results.no_prior_incidents.0),
            format!("(top-1: {})", pct(results.no_prior_incidents.1)),
        ],
        vec!["trained offline".to_string(), pct(results.trained_offline), String::new()],
        vec!["on fresh data".to_string(), pct(results.fresh_data), String::new()],
    ];
    for (n, r) in &results.n_train_sweep {
        rows.push(vec![format!("ntrain = {n}"), pct(*r), String::new()]);
    }
    println!(
        "{}",
        table("Fig 7 — Murphy microbenchmarks (recall@5)", &["configuration", "accuracy", "note"], &rows)
    );
}

fn run_fig8a(scale: Scale) {
    let results = fig8a::run(&scale.fig8a());
    let mut rows: Vec<Vec<String>> = Vec::new();
    for model in ModelKind::ALL {
        let cdf = results.cdf(model);
        rows.push(vec![
            model.label().to_string(),
            f2(cdf.quantile(0.25).unwrap_or(f64::NAN)),
            f2(cdf.median().unwrap_or(f64::NAN)),
            f2(cdf.quantile(0.75).unwrap_or(f64::NAN)),
            f2(cdf.quantile(0.95).unwrap_or(f64::NAN)),
        ]);
    }
    println!(
        "{}",
        table(
            &format!("Fig 8a — MASE across {} entities (quartiles of the CDF)", results.entities),
            &["model", "p25", "median", "p75", "p95"],
            &rows,
        )
    );
}

fn run_fig8b(scale: Scale) {
    let results = fig8b::run(&scale.fig8b());
    let rows: Vec<Vec<String>> = results
        .per_rounds
        .iter()
        .map(|&(rounds, correct, total)| {
            vec![rounds.to_string(), correct.to_string(), total.to_string()]
        })
        .collect();
    println!(
        "{}",
        table(
            "Fig 8b — Gibbs rounds vs correctly predicted scenarios",
            &["Gibbs rounds", "correct", "total"],
            &rows,
        )
    );
}

fn run_cycles() {
    // §2.2 cycle statistics on an enterprise incident graph.
    let scenario = murphy_sim::incidents::build_incident(murphy_sim::incidents::TABLE1[0], 1);
    let stats = CycleStats::count(&scenario.graph);
    let frac = murphy_graph::cycles::fraction_on_cycles(&scenario.graph);
    println!(
        "{}",
        table(
            "§2.2 — cycle statistics of an incident relationship graph",
            &["metric", "value"],
            &[
                vec!["entities".into(), scenario.graph.node_count().to_string()],
                vec!["directed edges".into(), scenario.graph.edge_count().to_string()],
                vec!["length-2 cycles".into(), stats.len2.to_string()],
                vec!["length-3 cycles".into(), stats.len3.to_string()],
                vec!["fraction of entities on a cycle".into(), f2(frac)],
            ],
        )
    );
}

fn run_sensitivity(scale: Scale) {
    let config = match scale {
        Scale::Fast => sensitivity::SensitivityConfig::fast(),
        Scale::Default => sensitivity::SensitivityConfig {
            scenarios: 8,
            ..sensitivity::SensitivityConfig::fast()
        },
        Scale::Paper => sensitivity::SensitivityConfig::paper(),
    };
    for sweep in [
        sensitivity::sweep_gibbs_rounds(&config),
        sensitivity::sweep_subgraph_slack(&config),
        sensitivity::sweep_model_family(&config),
    ] {
        let rows: Vec<Vec<String>> = sweep
            .points
            .iter()
            .map(|(label, r5, r1)| vec![label.clone(), pct(*r5), pct(*r1)])
            .collect();
        println!(
            "{}",
            table(
                &format!("§6.8 sensitivity — {}", sweep.knob),
                &["setting", "recall@5", "recall@1"],
                &rows,
            )
        );
    }
}

/// Estate sizes and engine parameters for the §6.7 runtime measurements.
fn perf_setup(scale: Scale) -> (Vec<usize>, MurphyConfig) {
    match scale {
        Scale::Fast => (vec![1usize, 3], MurphyConfig::fast().with_num_samples(100)),
        Scale::Default => (vec![2usize, 6, 12], MurphyConfig::fast().with_num_samples(400)),
        Scale::Paper => (vec![6usize, 12, 24, 48], MurphyConfig::paper()),
    }
}

fn run_perf(scale: Scale) {
    let (apps, murphy) = perf_setup(scale);
    let points = perf::run(&apps, murphy);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.entities.to_string(),
                p.edges.to_string(),
                p.train_slices.to_string(),
                format!("{:.0}", p.train_ms),
                p.candidates.to_string(),
                format!("{:.0}", p.diagnose_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            "§6.7 — runtime vs scale",
            &["N (entities)", "M (edges)", "T (slices)", "train ms", "candidates", "diagnose ms"],
            &rows,
        )
    );
}

/// Time train+diagnose at the requested scale and append one record to the
/// JSON trajectory file, so runs across commits (or thread counts) can be
/// compared: `jq '.[].total_ms' BENCH_perf.json`. The `diagnose_batch`
/// series compares the legacy per-candidate path against memoized
/// single-symptom loops and one shared-memoization batch call:
/// `jq '.[-1].diagnose_batch' BENCH_perf.json`. The `ingest` series
/// replays one enterprise trace into databases sharded 1/2/4/8 ways,
/// timing the per-`record` loop against `record_batch`, and
/// `train_window_scan` tracks the fanned-out `scan_series` column
/// extraction at each shard count: `jq '.[-1].ingest' BENCH_perf.json`.
/// The `train_incremental` series compares a full retrain against the
/// fingerprint-keyed training cache — cold, warm steady state, and after
/// dirtying ~10% of the metrics in-window:
/// `jq '.[-1].train_incremental' BENCH_perf.json`.
fn run_bench(scale: Scale, out: &str) {
    let (apps, murphy) = perf_setup(scale);
    let wall = std::time::Instant::now();
    let points = perf::run(&apps, murphy);
    let total_ms = wall.elapsed().as_secs_f64() * 1e3;
    let train_ms: f64 = points.iter().map(|p| p.train_ms).sum();
    let diagnose_ms: f64 = points.iter().map(|p| p.diagnose_ms).sum();
    let batch_points = perf::run_batch(&apps, murphy);
    let ingest_apps = apps.last().copied().unwrap_or(1);
    let ingest_points = perf::run_ingest(&[1, 2, 4, 8], ingest_apps);
    let incremental_points = perf::run_train_incremental(&apps, murphy);
    let unix_time_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);

    let pool_stats = murphy_core::pool::global().stats();
    // Print the measurements before persisting them: the numbers must
    // survive an unwritable/corrupt trajectory file.
    println!(
        "bench: scale {scale:?}, {} threads — train {train_ms:.0} ms, diagnose {diagnose_ms:.0} ms, total {total_ms:.0} ms",
        pool_stats.threads,
    );
    for p in &points {
        println!(
            "bench: perf @{} entities ({} edges, {} slices) — train {:.1} ms, diagnose {:.1} ms ({} candidates)",
            p.entities, p.edges, p.train_slices, p.train_ms, p.diagnose_ms, p.candidates,
        );
    }
    for p in &batch_points {
        println!(
            "bench: batch @{} entities, {} symptoms ({} candidates) — per-candidate {:.1} ms, memoized loop {:.1} ms, diagnose_batch {:.1} ms (plans_built={} plans_reused={})",
            p.entities, p.symptoms, p.candidates, p.legacy_ms, p.loop_ms, p.batch_ms,
            p.plans_built, p.plans_reused,
        );
    }
    for p in &ingest_points {
        println!(
            "bench: ingest @{} shards — {} samples / {} metrics over {} entities: per-record {:.1} ms, per-tick batches {:.1} ms, one bulk batch {:.1} ms, window scan {:.1} ms",
            p.shards, p.samples, p.metrics, p.entities, p.record_ms, p.batch_ms, p.bulk_ms, p.scan_ms,
        );
    }
    for p in &incremental_points {
        println!(
            "bench: train_incremental @{} entities ({} metrics) — full {:.1} ms, cold {:.1} ms (refit {}), warm {:.1} ms (refit {} / reused {}), 10%-dirty {:.1} ms (refit {} / reused {}, {} metrics touched)",
            p.entities, p.metrics, p.full_ms, p.cold_ms, p.cold_refit,
            p.warm_ms, p.warm_refit, p.warm_reused,
            p.dirty_ms, p.dirty_refit, p.dirty_reused, p.dirty_metrics,
        );
    }
    println!(
        "bench: pool {} threads, {} batches, {} jobs dispatched",
        pool_stats.threads, pool_stats.batches_run, pool_stats.jobs_dispatched,
    );

    let record = serde_json::json!({
        "unix_time_secs": unix_time_secs,
        "scale": format!("{scale:?}").to_lowercase(),
        "threads": pool_stats.threads,
        "pool_batches_run": pool_stats.batches_run,
        "pool_jobs_dispatched": pool_stats.jobs_dispatched,
        "train_ms": train_ms,
        "diagnose_ms": diagnose_ms,
        "total_ms": total_ms,
        "points": points,
        "diagnose_batch": batch_points,
        "ingest": ingest_points,
        "train_incremental": incremental_points,
        "train_window_scan": ingest_points
            .iter()
            .map(|p| serde_json::json!({"shards": p.shards, "scan_ms": p.scan_ms}))
            .collect::<Vec<_>>(),
    });

    let mut trajectory: Vec<serde_json::Value> = std::fs::read_to_string(out)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok())
        .unwrap_or_default();
    trajectory.push(record);
    match serde_json::to_string_pretty(&trajectory) {
        Ok(json) => {
            if let Err(e) = std::fs::write(out, json + "\n") {
                eprintln!("failed to write {out}: {e}");
                std::process::exit(1);
            }
            println!("bench: appended record #{} to {out}", trajectory.len());
        }
        Err(e) => {
            eprintln!("failed to serialize bench record: {e}");
            std::process::exit(1);
        }
    }
}
