//! Scale presets for the reproduction harness.
//!
//! Every experiment runner is scale-configurable. The `repro` binary maps
//! one knob onto all of them:
//!
//! * `fast` — seconds per experiment; CI smoke level.
//! * `default` — minutes; enough scenarios for stable percentages.
//! * `paper` — the paper's scenario counts and sample sizes (32
//!   interference variants, 100 contention scenarios per app, 5,000
//!   counterfactual samples, ~17K-entity metrics data set). Hours.

use murphy_core::MurphyConfig;
use murphy_experiments::fig5::Fig5Config;
use murphy_experiments::fig6::Fig6Config;
use murphy_experiments::fig7::Fig7Config;
use murphy_experiments::fig8a::Fig8aConfig;
use murphy_experiments::fig8b::Fig8bConfig;
use murphy_experiments::table1::Table1Config;
use murphy_experiments::table2::Table2Config;
use murphy_sim::enterprise::EnterpriseConfig;

/// The scale knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI smoke level (seconds).
    Fast,
    /// Stable percentages (minutes).
    Default,
    /// The paper's scenario counts (hours).
    Paper,
}

impl Scale {
    /// Parse from a CLI word.
    pub fn parse(word: &str) -> Option<Scale> {
        match word {
            "fast" => Some(Scale::Fast),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The Murphy engine configuration at this scale.
    pub fn murphy(self) -> MurphyConfig {
        match self {
            Scale::Fast => MurphyConfig::fast(),
            Scale::Default => MurphyConfig::fast().with_num_samples(1000),
            Scale::Paper => MurphyConfig::paper(),
        }
    }

    /// Figure 5 configuration.
    pub fn fig5(self) -> Fig5Config {
        match self {
            Scale::Fast => Fig5Config::fast(),
            Scale::Default => Fig5Config {
                variants: 12,
                murphy: self.murphy(),
                ..Fig5Config::fast()
            },
            Scale::Paper => Fig5Config::paper(),
        }
    }

    /// Figure 6 configuration.
    pub fn fig6(self) -> Fig6Config {
        match self {
            Scale::Fast => Fig6Config::fast(),
            Scale::Default => Fig6Config {
                scenarios: 12,
                max_prior_incidents: 8,
                murphy: self.murphy(),
                ..Fig6Config::fast()
            },
            Scale::Paper => Fig6Config::paper(),
        }
    }

    /// Figure 7 configuration.
    pub fn fig7(self) -> Fig7Config {
        match self {
            Scale::Fast => Fig7Config::fast(),
            Scale::Default => Fig7Config {
                scenarios: 10,
                murphy: self.murphy(),
                ..Fig7Config::fast()
            },
            Scale::Paper => Fig7Config::paper(),
        }
    }

    /// Figure 8a configuration.
    pub fn fig8a(self) -> Fig8aConfig {
        match self {
            Scale::Fast => Fig8aConfig::fast(),
            Scale::Default => Fig8aConfig {
                enterprise: EnterpriseConfig {
                    num_apps: 20,
                    ..EnterpriseConfig::small(8)
                },
                max_entities: 400,
                ..Fig8aConfig::fast()
            },
            Scale::Paper => Fig8aConfig::paper(),
        }
    }

    /// Figure 8b configuration.
    pub fn fig8b(self) -> Fig8bConfig {
        match self {
            Scale::Fast => Fig8bConfig::fast(),
            Scale::Default => Fig8bConfig {
                enterprise: EnterpriseConfig {
                    num_apps: 12,
                    ..EnterpriseConfig::small(11)
                },
                trials_per_app: 16,
                murphy: self.murphy(),
                ..Fig8bConfig::fast()
            },
            Scale::Paper => Fig8bConfig::paper(),
        }
    }

    /// Table 1 configuration.
    pub fn table1(self) -> Table1Config {
        match self {
            Scale::Fast => Table1Config::fast(),
            Scale::Default => Table1Config {
                murphy: self.murphy(),
                ..Table1Config::fast()
            },
            Scale::Paper => Table1Config::paper(),
        }
    }

    /// Table 2 configuration.
    pub fn table2(self) -> Table2Config {
        match self {
            Scale::Fast => Table2Config::fast(),
            Scale::Default => Table2Config {
                scenarios: 10,
                murphy: self.murphy(),
                ..Table2Config::fast()
            },
            Scale::Paper => Table2Config::paper(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_words() {
        assert_eq!(Scale::parse("fast"), Some(Scale::Fast));
        assert_eq!(Scale::parse("default"), Some(Scale::Default));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn scales_are_ordered_by_effort() {
        assert!(Scale::Fast.fig5().variants < Scale::Default.fig5().variants);
        assert!(Scale::Default.fig5().variants < Scale::Paper.fig5().variants);
        assert!(Scale::Fast.murphy().num_samples <= Scale::Paper.murphy().num_samples);
        assert_eq!(Scale::Paper.fig5().variants, 32);
        assert_eq!(Scale::Paper.fig6().scenarios, 100);
    }
}
