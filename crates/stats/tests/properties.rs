//! Property-based tests for the statistics substrate.

use murphy_stats::{anomaly_score, mae, mase, pearson, welch_t_test, Ecdf, OnlineStats, Summary};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn summary_mean_is_bounded_by_min_max(xs in finite_vec(64)) {
        let s = Summary::of(&xs);
        if s.count > 0 {
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.variance >= 0.0);
            prop_assert!((s.std_dev * s.std_dev - s.variance).abs() <= 1e-6 * (1.0 + s.variance));
        }
    }

    #[test]
    fn online_merge_equals_batch(xs in finite_vec(64), split in 0usize..64) {
        let split = split.min(xs.len());
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..split] { a.push(x); }
        for &x in &xs[split..] { b.push(x); }
        a.merge(&b);
        let merged = a.summary();
        let batch = Summary::of(&xs);
        prop_assert_eq!(merged.count, batch.count);
        if batch.count > 0 {
            prop_assert!((merged.mean - batch.mean).abs() <= 1e-6 * (1.0 + batch.mean.abs()));
            prop_assert!((merged.variance - batch.variance).abs() <= 1e-4 * (1.0 + batch.variance));
        }
    }

    #[test]
    fn pearson_is_symmetric_and_bounded(xs in finite_vec(32), ys in finite_vec(32)) {
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0..=1.0).contains(&r));
        prop_assert!((r - pearson(&ys, &xs)).abs() < 1e-12);
    }

    #[test]
    fn pearson_linear_invariance(xs in proptest::collection::vec(-1e3f64..1e3, 3..32),
                                 a in 0.1f64..10.0, b in -100.0f64..100.0) {
        // Correlation is invariant under positive affine maps.
        let ys: Vec<f64> = xs.iter().map(|&x| a * x + b).collect();
        let zs: Vec<f64> = xs.iter().map(|&x| x * 2.0 + 1.0).collect();
        let r1 = pearson(&xs, &zs);
        let r2 = pearson(&ys, &zs);
        prop_assert!((r1 - r2).abs() < 1e-6, "{r1} vs {r2}");
    }

    #[test]
    fn welch_p_values_are_probabilities(a in finite_vec(40), b in finite_vec(40)) {
        let r = welch_t_test(&a, &b);
        prop_assert!((0.0..=1.0).contains(&r.p_less));
        prop_assert!((0.0..=1.0).contains(&r.p_greater));
        prop_assert!((0.0..=1.0).contains(&r.p_two_sided));
        // One-sided p-values are complementary (within numeric tolerance)
        // when the statistic is finite.
        if r.t.is_finite() && r.df > 0.0 {
            prop_assert!((r.p_less + r.p_greater - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn welch_is_antisymmetric(a in proptest::collection::vec(-1e3f64..1e3, 2..32),
                              b in proptest::collection::vec(-1e3f64..1e3, 2..32)) {
        let ab = welch_t_test(&a, &b);
        let ba = welch_t_test(&b, &a);
        prop_assert!((ab.p_less - ba.p_greater).abs() < 1e-9);
        prop_assert!((ab.t + ba.t).abs() < 1e-9);
    }

    #[test]
    fn mae_is_nonnegative_and_zero_on_self(xs in finite_vec(32)) {
        prop_assert!(mae(&xs, &xs) <= 1e-12);
        let shifted: Vec<f64> = xs.iter().map(|x| x + 1.0).collect();
        if !xs.is_empty() {
            prop_assert!((mae(&xs, &shifted) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn mase_is_nonnegative(pred in finite_vec(16), truth in finite_vec(16), train in finite_vec(32)) {
        prop_assert!(mase(&pred, &truth, &train) >= 0.0);
    }

    #[test]
    fn ecdf_is_monotone_and_normalized(xs in finite_vec(64)) {
        let cdf = Ecdf::new(&xs);
        if cdf.is_empty() { return Ok(()); }
        let (lo, hi) = cdf.range().unwrap();
        prop_assert_eq!(cdf.eval(lo - 1.0), 0.0);
        prop_assert_eq!(cdf.eval(hi), 1.0);
        let probe: Vec<f64> = (0..=10).map(|i| lo + (hi - lo) * i as f64 / 10.0).collect();
        let series = cdf.series(&probe);
        for w in series.windows(2) {
            prop_assert!(w[1].1 >= w[0].1 - 1e-12);
        }
    }

    #[test]
    fn ecdf_quantiles_are_samples(xs in proptest::collection::vec(-1e4f64..1e4, 1..64),
                                  q in 0.0f64..1.0) {
        let cdf = Ecdf::new(&xs);
        let v = cdf.quantile(q).unwrap();
        prop_assert!(xs.iter().any(|&x| (x - v).abs() < 1e-12));
    }

    #[test]
    fn anomaly_score_scale_invariance(past in proptest::collection::vec(-1e3f64..1e3, 4..32),
                                      current in -1e3f64..1e3,
                                      scale in 0.5f64..5.0) {
        // z-scores are invariant under positive affine transforms.
        let z1 = anomaly_score(&past, current);
        let scaled: Vec<f64> = past.iter().map(|&x| x * scale + 7.0).collect();
        let z2 = anomaly_score(&scaled, current * scale + 7.0);
        // Degenerate constant histories hit the floor, skip those.
        let s = Summary::of(&past);
        if s.std_dev > 1e-6 {
            prop_assert!((z1 - z2).abs() < 1e-6 * (1.0 + z1.abs()), "{z1} vs {z2}");
        }
    }
}
