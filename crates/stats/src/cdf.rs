//! Empirical cumulative distribution functions.
//!
//! Used to report the Figure 8a model-selection study (CDF of MASE across
//! entities) and by tests that assert distributional shapes of simulated
//! metrics.

use serde::{Deserialize, Serialize};

/// An empirical CDF over a finite sample.
///
/// Construction sorts the (finite) samples once; evaluation is a binary
/// search. Quantiles use the nearest-rank definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample, dropping non-finite values.
    pub fn new(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Self { sorted }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no finite samples were provided.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`; 0.0 for an empty CDF.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // Index of the first element strictly greater than x.
        let k = self.sorted.partition_point(|&v| v <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// Nearest-rank quantile, `q` in [0, 1]. Returns None when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[rank - 1])
    }

    /// Median, if non-empty.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Evaluate the CDF at each of `points`, producing `(x, P(X<=x))` pairs
    /// — the series plotted in the paper's Figure 8a.
    pub fn series(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points.iter().map(|&x| (x, self.eval(x))).collect()
    }

    /// Smallest and largest samples, if any.
    pub fn range(&self) -> Option<(f64, f64)> {
        match (self.sorted.first(), self.sorted.last()) {
            (Some(&a), Some(&b)) => Some((a, b)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_step_function() {
        let cdf = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.5), 0.5);
        assert_eq!(cdf.eval(4.0), 1.0);
        assert_eq!(cdf.eval(100.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let cdf = Ecdf::new(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(cdf.quantile(0.0), Some(10.0));
        assert_eq!(cdf.quantile(0.2), Some(10.0));
        assert_eq!(cdf.quantile(0.5), Some(30.0));
        assert_eq!(cdf.quantile(1.0), Some(50.0));
        assert_eq!(cdf.median(), Some(30.0));
    }

    #[test]
    fn empty_cdf() {
        let cdf = Ecdf::new(&[]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.eval(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.range(), None);
    }

    #[test]
    fn drops_non_finite() {
        let cdf = Ecdf::new(&[1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.range(), Some((1.0, 2.0)));
    }

    #[test]
    fn series_is_monotone() {
        let cdf = Ecdf::new(&[3.0, 1.0, 2.0, 5.0, 4.0]);
        let pts: Vec<f64> = (0..12).map(|i| i as f64 * 0.5).collect();
        let series = cdf.series(&pts);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let cdf = Ecdf::new(&[5.0, 1.0, 3.0]);
        assert_eq!(cdf.eval(1.0), 1.0 / 3.0);
        assert_eq!(cdf.eval(4.9), 2.0 / 3.0);
    }
}
