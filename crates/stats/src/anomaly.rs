//! Z-score anomaly scoring.
//!
//! Murphy ranks root-cause entities by "how many standard deviations away
//! a metric is from its historical mean value", taking an entity's score to
//! be that of its most anomalous metric (§4.2, "Ranking the root causes").

use crate::summary::Summary;

/// Minimum standard deviation used when a metric's history is constant.
///
/// Without a floor, a metric that was exactly constant in the training
/// window and moved at all during the incident would get an infinite score
/// and always dominate the ranking; the paper's production data never has
/// perfectly constant series, but synthetic traces can.
pub const STD_FLOOR: f64 = 1e-9;

/// Absolute z-score of `current` against the history `past`.
///
/// Returns 0.0 if `past` has fewer than two points (no basis for anomaly).
pub fn anomaly_score(past: &[f64], current: f64) -> f64 {
    let s = Summary::of(past);
    if s.count < 2 || !current.is_finite() {
        return 0.0;
    }
    ((current - s.mean) / s.std_dev_floored(STD_FLOOR)).abs()
}

/// Scores a set of metrics for one entity and keeps the maximum.
///
/// Usage: call [`AnomalyScorer::observe`] once per metric, then read
/// [`AnomalyScorer::entity_score`]. Mirrors the paper's "score of its most
/// anomalous metric".
#[derive(Debug, Clone, Default)]
pub struct AnomalyScorer {
    best: Option<(usize, f64)>,
    next_index: usize,
}

impl AnomalyScorer {
    /// Create an empty scorer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one metric's history and current value; metrics are indexed
    /// in call order. Returns this metric's score.
    pub fn observe(&mut self, past: &[f64], current: f64) -> f64 {
        let score = anomaly_score(past, current);
        let idx = self.next_index;
        self.next_index += 1;
        match self.best {
            Some((_, s)) if s >= score => {}
            _ => self.best = Some((idx, score)),
        }
        score
    }

    /// Highest metric score observed so far (0.0 if none).
    pub fn entity_score(&self) -> f64 {
        self.best.map(|(_, s)| s).unwrap_or(0.0)
    }

    /// Index (call order) of the most anomalous metric, if any.
    pub fn most_anomalous_metric(&self) -> Option<usize> {
        self.best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_counts_standard_deviations() {
        // mean 0, sample std 1 -> current 3.0 is 3 sigma.
        let past = [-1.0, 1.0, -1.0, 1.0, -1.0, 1.0];
        let s = Summary::of(&past);
        let z = anomaly_score(&past, 3.0);
        assert!((z - 3.0 / s.std_dev).abs() < 1e-12);
    }

    #[test]
    fn symmetric_for_low_and_high() {
        let past = [10.0, 12.0, 11.0, 9.0, 10.5];
        let up = anomaly_score(&past, 21.0);
        let down = anomaly_score(&past, 0.9);
        assert!(up > 0.0 && down > 0.0);
        // |21 - 10.5| > |0.9 - 10.5| so up dominates.
        assert!(up > down);
        // Equidistant deviations score identically.
        let a = anomaly_score(&past, 10.5 + 4.0);
        let b = anomaly_score(&past, 10.5 - 4.0);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn constant_history_uses_floor_not_infinity() {
        let past = [5.0; 10];
        let z = anomaly_score(&past, 6.0);
        assert!(z.is_finite());
        assert!(z > 1e6); // very anomalous, but finite
    }

    #[test]
    fn insufficient_history_scores_zero() {
        assert_eq!(anomaly_score(&[], 1.0), 0.0);
        assert_eq!(anomaly_score(&[1.0], 5.0), 0.0);
    }

    #[test]
    fn non_finite_current_scores_zero() {
        let past = [1.0, 2.0, 3.0];
        assert_eq!(anomaly_score(&past, f64::NAN), 0.0);
    }

    #[test]
    fn scorer_keeps_max_and_metric_index() {
        let mut sc = AnomalyScorer::new();
        let past = [0.0, 2.0, 0.0, 2.0];
        sc.observe(&past, 1.0); // ~0 sigma (at mean)
        sc.observe(&past, 10.0); // large
        sc.observe(&past, 3.0); // moderate
        assert_eq!(sc.most_anomalous_metric(), Some(1));
        assert!(sc.entity_score() > anomaly_score(&past, 3.0));
    }

    #[test]
    fn empty_scorer_is_zero() {
        let sc = AnomalyScorer::new();
        assert_eq!(sc.entity_score(), 0.0);
        assert_eq!(sc.most_anomalous_metric(), None);
    }
}
