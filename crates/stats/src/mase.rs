//! Prediction-error measures for the model-selection study (Figure 8a).
//!
//! The paper compares four metric-prediction models on ~17K entities and
//! reports the CDF of "MASE error" across entities. MASE (Mean Absolute
//! Scaled Error) normalizes a model's mean absolute error by the MAE of the
//! one-step naive forecast on the training series, making the error
//! comparable across metrics with wildly different scales (CPU %, bytes/s,
//! session counts, ...).

/// Mean absolute error between predictions and truths.
///
/// Non-finite pairs are skipped; returns 0.0 when nothing is comparable.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    let n = pred.len().min(truth.len());
    let mut sum = 0.0;
    let mut m = 0usize;
    for i in 0..n {
        if pred[i].is_finite() && truth[i].is_finite() {
            sum += (pred[i] - truth[i]).abs();
            m += 1;
        }
    }
    if m == 0 {
        0.0
    } else {
        sum / m as f64
    }
}

/// Mean Absolute Scaled Error.
///
/// `mase = mae(pred, truth) / naive_mae(train)` where the naive forecast
/// predicts each training point from its predecessor. If the training
/// series is constant (naive MAE 0) the scale collapses; we return the raw
/// MAE scaled by a tiny floor instead of dividing by zero, which keeps
/// constant-series entities at the extreme of the CDF as in the paper's
/// long-tailed Figure 8a axis (errors span 2^1..2^15).
pub fn mase(pred: &[f64], truth: &[f64], train: &[f64]) -> f64 {
    let e = mae(pred, truth);
    let scale = naive_mae(train);
    if scale <= f64::EPSILON {
        if e <= f64::EPSILON {
            0.0
        } else {
            e / 1e-6
        }
    } else {
        e / scale
    }
}

/// MAE of the one-step naive forecast on a series.
pub fn naive_mae(series: &[f64]) -> f64 {
    if series.len() < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut m = 0usize;
    for w in series.windows(2) {
        if w[0].is_finite() && w[1].is_finite() {
            sum += (w[1] - w[0]).abs();
            m += 1;
        }
    }
    if m == 0 {
        0.0
    } else {
        sum / m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_of_exact_predictions_is_zero() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(mae(&xs, &xs), 0.0);
    }

    #[test]
    fn mae_known_value() {
        let pred = [1.0, 2.0, 3.0];
        let truth = [2.0, 2.0, 1.0];
        assert!((mae(&pred, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn naive_mae_known_value() {
        // |2-1| + |4-2| + |1-4| = 6, over 3 steps = 2.
        let xs = [1.0, 2.0, 4.0, 1.0];
        assert!((naive_mae(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mase_of_naive_equivalent_model_is_one() {
        // Model whose MAE equals naive MAE on the training data scores 1.0.
        let train = [0.0, 1.0, 0.0, 1.0]; // naive MAE = 1
        let pred = [5.0, 5.0];
        let truth = [6.0, 4.0]; // MAE = 1
        assert!((mase(&pred, &truth, &train) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_training_series_does_not_divide_by_zero() {
        let train = [3.0; 10];
        let v = mase(&[3.0, 3.0], &[4.0, 2.0], &train);
        assert!(v.is_finite());
        assert!(v > 1.0); // pushed to the tail of the CDF
        // Exact prediction on constant series is genuinely zero error.
        assert_eq!(mase(&[3.0], &[3.0], &train), 0.0);
    }

    #[test]
    fn non_finite_values_are_skipped() {
        let pred = [1.0, f64::NAN, 3.0];
        let truth = [1.0, 100.0, 4.0];
        assert!((mae(&pred, &truth) - 0.5).abs() < 1e-12);
    }
}
