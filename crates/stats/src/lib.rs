//! Statistics substrate for the Murphy reproduction.
//!
//! Murphy's inference pipeline ([SIGCOMM 2023]) leans on a handful of
//! classical statistics:
//!
//! * descriptive summaries of metric time series ([`summary`]),
//! * Pearson correlation for feature selection and for the ExplainIt /
//!   NetMedic baselines ([`correlation`]),
//! * Welch's t-test to decide whether counterfactual samples `d1` differ
//!   significantly from factual samples `d2` ([`ttest`]),
//! * z-score anomaly scoring used to rank root-cause candidates
//!   ([`anomaly`]),
//! * MASE prediction error used in the model-selection study, Figure 8a
//!   ([`mase()`](mase::mase)), and
//! * empirical CDFs used to report that study ([`cdf`]).
//!
//! Everything here is implemented from scratch on `f64` slices — no
//! external linear-algebra or statistics crates — and is deliberately
//! small, allocation-light, and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod cdf;
pub mod correlation;
pub mod mase;
pub mod summary;
pub mod ttest;

pub use anomaly::{anomaly_score, AnomalyScorer};
pub use cdf::Ecdf;
pub use correlation::{correlation_matrix, pearson};
pub use mase::{mae, mase};
pub use summary::{OnlineStats, Summary};
pub use ttest::{welch_t_test, TTestResult};
