//! Pearson correlation.
//!
//! Correlation shows up in three places in the paper:
//!
//! * Murphy's feature selection picks the top-B neighbor metrics by
//!   absolute correlation with the target metric (§4.2 "Model training"),
//! * ExplainIt ranks candidates purely by pairwise correlation (§2.3),
//! * NetMedic derives edge weights from correlation of neighbor states.

/// Pearson correlation coefficient between two equal-length samples.
///
/// Returns 0.0 (no evidence of association) when the inputs are shorter
/// than two points, have mismatched lengths after filtering, or when either
/// side is constant — all three happen routinely with degraded telemetry
/// (Table 2), and treating them as "no correlation" is what keeps the
/// pipelines total.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 0.0;
    }
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut m = 0usize;
    for i in 0..n {
        if xs[i].is_finite() && ys[i].is_finite() {
            sx += xs[i];
            sy += ys[i];
            m += 1;
        }
    }
    if m < 2 {
        return 0.0;
    }
    let mx = sx / m as f64;
    let my = sy / m as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        if xs[i].is_finite() && ys[i].is_finite() {
            let dx = xs[i] - mx;
            let dy = ys[i] - my;
            sxy += dx * dy;
            sxx += dx * dx;
            syy += dy * dy;
        }
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    let r = sxy / (sxx.sqrt() * syy.sqrt());
    r.clamp(-1.0, 1.0)
}

/// Full correlation matrix of a set of series (rows of `series`).
///
/// `out[i][j] == pearson(series[i], series[j])`; the diagonal is 1.0 for
/// non-constant series and 0.0 for constant ones (consistent with
/// [`pearson`]'s degenerate-input convention).
pub fn correlation_matrix(series: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let k = series.len();
    let mut out = vec![vec![0.0; k]; k];
    for i in 0..k {
        for j in i..k {
            let r = pearson(&series[i], &series[j]);
            out[i][j] = r;
            out[j][i] = r;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_input_yields_zero() {
        let xs = [5.0, 5.0, 5.0];
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&xs, &ys), 0.0);
        assert_eq!(pearson(&ys, &xs), 0.0);
    }

    #[test]
    fn short_input_yields_zero() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn nan_pairs_are_skipped() {
        let xs = [1.0, f64::NAN, 3.0, 4.0];
        let ys = [2.0, 100.0, 6.0, 8.0];
        // NaN pair dropped, remainder is perfectly linear.
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_value() {
        // Anscombe-like small sample with a hand-computed r.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 1.0, 4.0, 3.0, 5.0];
        let r = pearson(&xs, &ys);
        assert!((r - 0.8).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let series = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![4.0, 3.0, 2.0, 1.0],
            vec![1.0, 3.0, 2.0, 4.0],
        ];
        let m = correlation_matrix(&series);
        for i in 0..3 {
            assert!((m[i][i] - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert_eq!(m[i][j], m[j][i]);
            }
        }
        assert!((m[0][1] + 1.0).abs() < 1e-12);
    }
}
