//! Descriptive summaries of metric samples.
//!
//! A [`Summary`] is a one-shot computation over a slice; [`OnlineStats`]
//! is a Welford-style accumulator used where samples arrive one at a time
//! (e.g. while streaming a simulated trace).

use serde::{Deserialize, Serialize};

/// Descriptive statistics of a sample.
///
/// Constructed with [`Summary::of`]. Empty input yields a summary with
/// `count == 0` and NaN-free zero defaults so callers can branch on
/// `count` rather than on NaN propagation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Unbiased sample variance (0.0 when fewer than 2 samples).
    pub variance: f64,
    /// Sample standard deviation (sqrt of `variance`).
    pub std_dev: f64,
    /// Minimum (0.0 when empty).
    pub min: f64,
    /// Maximum (0.0 when empty).
    pub max: f64,
}

impl Summary {
    /// Compute a summary of `xs`, ignoring non-finite values.
    pub fn of(xs: &[f64]) -> Self {
        let mut acc = OnlineStats::new();
        for &x in xs {
            if x.is_finite() {
                acc.push(x);
            }
        }
        acc.summary()
    }

    /// Standard deviation floored away from zero.
    ///
    /// Several Murphy subroutines divide by a standard deviation (z-scores,
    /// counterfactual offsets of "2 standard deviations"). A constant metric
    /// has zero deviation; flooring keeps those computations defined without
    /// special-casing every call site.
    pub fn std_dev_floored(&self, floor: f64) -> f64 {
        if self.std_dev > floor {
            self.std_dev
        } else {
            floor
        }
    }
}

/// Welford online mean/variance accumulator with min/max tracking.
///
/// Numerically stable for long streams; used by the simulator's metric
/// collectors and by training-window preprocessing.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample. Non-finite samples are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of accepted samples.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Current mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0.0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Snapshot as a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            variance: self.variance(),
            std_dev: self.std_dev(),
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
    }

    #[test]
    fn known_variance() {
        // Sample variance of 2,4,4,4,5,5,7,9 is 32/7.
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_close(s.mean, 5.0, 1e-12);
        assert_close(s.variance, 32.0 / 7.0, 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn ignores_non_finite() {
        let s = Summary::of(&[1.0, f64::NAN, 2.0, f64::INFINITY, 3.0]);
        assert_eq!(s.count, 3);
        assert_close(s.mean, 2.0, 1e-12);
    }

    #[test]
    fn merge_matches_batch() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        let merged = a.summary();
        let batch = Summary::of(&xs);
        assert_close(merged.mean, batch.mean, 1e-10);
        assert_close(merged.variance, batch.variance, 1e-10);
        assert_eq!(merged.count, batch.count);
        assert_eq!(merged.min, batch.min);
        assert_eq!(merged.max, batch.max);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a.summary();
        a.merge(&OnlineStats::new());
        assert_eq!(a.summary(), before);

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.summary(), before);
    }

    #[test]
    fn std_dev_floored() {
        let s = Summary::of(&[5.0, 5.0, 5.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.std_dev_floored(1e-6), 1e-6);
        let s2 = Summary::of(&[0.0, 10.0]);
        assert!(s2.std_dev_floored(1e-6) > 1.0);
    }
}
