//! Welch's unequal-variance t-test.
//!
//! Murphy's counterfactual decision (§4.2, step 4) compares 5,000 resampled
//! values of the problematic metric under the counterfactual (`d1`) against
//! 5,000 under the factual value (`d2`), and declares the candidate a root
//! cause when the `d1` samples are *significantly lower* than the `d2`
//! samples. We implement Welch's t-test with a one-sided p-value computed
//! through the regularized incomplete beta function (continued-fraction
//! evaluation, Lentz's algorithm) — no lookup tables, valid for the large
//! and the small sample counts used in tests.

use crate::summary::Summary;
use serde::{Deserialize, Serialize};

/// Outcome of a Welch t-test comparing sample `a` against sample `b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TTestResult {
    /// Welch t statistic, `(mean_a - mean_b) / pooled_se`.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// One-sided p-value for the alternative `mean_a < mean_b`.
    pub p_less: f64,
    /// One-sided p-value for the alternative `mean_a > mean_b`.
    pub p_greater: f64,
    /// Two-sided p-value.
    pub p_two_sided: f64,
    /// Difference of means `mean_a - mean_b`.
    pub mean_diff: f64,
}

impl TTestResult {
    /// True when `a`'s mean is significantly below `b`'s at level `alpha`.
    pub fn significantly_less(&self, alpha: f64) -> bool {
        self.p_less < alpha
    }

    /// True when `a`'s mean is significantly above `b`'s at level `alpha`.
    pub fn significantly_greater(&self, alpha: f64) -> bool {
        self.p_greater < alpha
    }
}

/// Welch's two-sample t-test.
///
/// Degenerate inputs (fewer than 2 samples on either side, or both sides
/// with zero variance) return a neutral result with p-values of 0.5/1.0 so
/// the caller's significance checks fail closed: identical constant samples
/// are never "significant", and a constant-vs-constant difference in means
/// with zero variance is treated as decisive only through the means.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> TTestResult {
    let sa = Summary::of(a);
    let sb = Summary::of(b);
    let mean_diff = sa.mean - sb.mean;
    if sa.count < 2 || sb.count < 2 {
        return neutral(mean_diff);
    }
    let va = sa.variance / sa.count as f64;
    let vb = sb.variance / sb.count as f64;
    let se2 = va + vb;
    if se2 <= 0.0 {
        // Zero variance on both sides: significance is decided by whether
        // the means differ at all.
        if mean_diff == 0.0 {
            return neutral(0.0);
        }
        let (p_less, p_greater) = if mean_diff < 0.0 { (0.0, 1.0) } else { (1.0, 0.0) };
        return TTestResult {
            t: if mean_diff < 0.0 { f64::NEG_INFINITY } else { f64::INFINITY },
            df: (sa.count + sb.count - 2) as f64,
            p_less,
            p_greater,
            p_two_sided: 0.0,
            mean_diff,
        };
    }
    let t = mean_diff / se2.sqrt();
    // Welch–Satterthwaite.
    let df = se2 * se2
        / (va * va / (sa.count as f64 - 1.0) + vb * vb / (sb.count as f64 - 1.0));
    let p_greater = student_t_sf(t, df);
    let p_less = student_t_sf(-t, df);
    let p_two_sided = (2.0 * p_greater.min(p_less)).min(1.0);
    TTestResult {
        t,
        df,
        p_less,
        p_greater,
        p_two_sided,
        mean_diff,
    }
}

fn neutral(mean_diff: f64) -> TTestResult {
    TTestResult {
        t: 0.0,
        df: 0.0,
        p_less: 0.5,
        p_greater: 0.5,
        p_two_sided: 1.0,
        mean_diff,
    }
}

/// Survival function `P(T > t)` of Student's t-distribution with `df`
/// degrees of freedom.
fn student_t_sf(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return if t > 0.0 { 0.0 } else { 1.0 };
    }
    if df <= 0.0 {
        return 0.5;
    }
    let x = df / (df + t * t);
    // P(|T| > t) = I_x(df/2, 1/2); split by sign for the one-sided value.
    let p_both = regularized_incomplete_beta(0.5 * df, 0.5, x);
    if t > 0.0 {
        0.5 * p_both
    } else {
        1.0 - 0.5 * p_both
    }
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction expansion (Lentz's method), with the usual symmetry switch for
/// convergence.
fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front =
        ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function (Numerical-Recipes
/// style modified Lentz iteration).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m_f = m as f64;
        let m2 = 2.0 * m_f;
        // Even step.
        let aa = m_f * (b - m_f) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m_f) * (qab + m_f) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub(crate) fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn ln_gamma_known_values() {
        assert_close(ln_gamma(1.0), 0.0, 1e-10);
        assert_close(ln_gamma(2.0), 0.0, 1e-10);
        assert_close(ln_gamma(5.0), 24.0f64.ln(), 1e-10);
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
    }

    #[test]
    fn incomplete_beta_boundaries() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn incomplete_beta_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (0.5, 0.5, 0.7), (10.0, 1.5, 0.9)] {
            let lhs = regularized_incomplete_beta(a, b, x);
            let rhs = 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
            assert_close(lhs, rhs, 1e-10);
        }
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1,1) = x for the uniform distribution.
        for &x in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            assert_close(regularized_incomplete_beta(1.0, 1.0, x), x, 1e-10);
        }
    }

    #[test]
    fn student_t_sf_symmetry_and_midpoint() {
        assert_close(student_t_sf(0.0, 10.0), 0.5, 1e-10);
        let p = student_t_sf(1.5, 7.0);
        let q = student_t_sf(-1.5, 7.0);
        assert_close(p + q, 1.0, 1e-10);
        assert!(p < 0.5);
    }

    #[test]
    fn student_t_sf_reference_values() {
        // Reference values from standard t tables.
        // P(T > 2.228) with df=10 ≈ 0.025.
        assert_close(student_t_sf(2.228, 10.0), 0.025, 1e-3);
        // P(T > 1.645) with very large df approaches the normal ≈ 0.05.
        assert_close(student_t_sf(1.6449, 100000.0), 0.05, 5e-4);
    }

    #[test]
    fn clearly_different_samples_are_significant() {
        let a: Vec<f64> = (0..200).map(|i| 1.0 + 0.01 * (i % 7) as f64).collect();
        let b: Vec<f64> = (0..200).map(|i| 5.0 + 0.01 * (i % 5) as f64).collect();
        let r = welch_t_test(&a, &b);
        assert!(r.significantly_less(0.01));
        assert!(!r.significantly_greater(0.01));
        assert!(r.mean_diff < -3.0);
    }

    #[test]
    fn identical_samples_are_not_significant() {
        let a: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let r = welch_t_test(&a, &a);
        assert!(!r.significantly_less(0.05));
        assert!(!r.significantly_greater(0.05));
        assert_close(r.t, 0.0, 1e-12);
    }

    #[test]
    fn degenerate_inputs_fail_closed() {
        let r = welch_t_test(&[1.0], &[2.0, 3.0]);
        assert!(!r.significantly_less(0.05));
        let r = welch_t_test(&[], &[]);
        assert!(!r.significantly_less(0.05));
    }

    #[test]
    fn zero_variance_differing_means_is_decisive() {
        let a = [1.0, 1.0, 1.0, 1.0];
        let b = [2.0, 2.0, 2.0, 2.0];
        let r = welch_t_test(&a, &b);
        assert!(r.significantly_less(0.05));
        assert!(!r.significantly_greater(0.05));
    }

    #[test]
    fn welch_exact_small_example() {
        // a = {3,4,5}, b = {6,7,8}: means 4 and 7, variances 1 and 1.
        // se^2 = 1/3 + 1/3 = 2/3, t = -3 / sqrt(2/3), df = (2/3)^2 / (2*(1/9)/2) = 4.
        let a = [3.0, 4.0, 5.0];
        let b = [6.0, 7.0, 8.0];
        let r = welch_t_test(&a, &b);
        assert_close(r.t, -3.0 / (2.0f64 / 3.0).sqrt(), 1e-12);
        assert_close(r.df, 4.0, 1e-12);
        assert!(r.significantly_less(0.05));
        assert!(!r.significantly_greater(0.05));
        // p-values for the two alternatives sum to 1.
        assert_close(r.p_less + r.p_greater, 1.0, 1e-10);
    }
}
