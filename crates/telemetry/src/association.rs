//! Associations: the loose "neighborhood" relationships between entities.
//!
//! §4.1 of the paper: edges of the relationship graph come from simple
//! predefined neighborhood relations extractable from monitoring metadata —
//! a flow has edges to its source/destination VM, a VM to its host and NIC,
//! a microservice to its container, and so on.
//!
//! Most associations carry **no** direction knowledge (the platform cannot
//! discern influence direction, §2.2), so they expand into directed edges
//! both ways. When a direction *is* known (e.g. caller→callee microservice
//! edges from traces), it is recorded and expands into a single edge.

use crate::entity::EntityId;
use serde::{Deserialize, Serialize};

/// Direction knowledge attached to an association between `a` and `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Directionality {
    /// Influence direction unknown — expand to edges a→b and b→a.
    /// This is the conservative default of §4.1.
    Both,
    /// Known influence a→b only (e.g. caller → callee).
    AToB,
    /// Known influence b→a only.
    BToA,
}

/// The semantic kind of an association, used for explanation phrasing and
/// by the degradation operators (Table 2 removes specific kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssociationKind {
    /// VM (or container) `a` runs on host `b`.
    RunsOn,
    /// VM `a` owns virtual NIC `b`; host `a` owns physical NIC `b`.
    HasNic,
    /// Flow `a` originates at entity `b`.
    FlowSource,
    /// Flow `a` terminates at entity `b`.
    FlowDestination,
    /// Service `a` resides on container `b`.
    ServiceOnContainer,
    /// Service `a` calls service `b` (from traces; direction known).
    ServiceCall,
    /// NIC `a` is attached to switch interface `b`.
    AttachedToPort,
    /// Switch interface `a` belongs to switch `b`.
    PortOnSwitch,
    /// VM `a` is backed by datastore `b`.
    BackedBy,
    /// Client `a` sends requests to service/VM `b`.
    ClientOf,
    /// Application-defined or discovered relation with no specific type.
    Related,
}

impl AssociationKind {
    /// Verb phrase used when describing the relation `a <verb> b`.
    pub fn verb(self) -> &'static str {
        match self {
            AssociationKind::RunsOn => "runs on",
            AssociationKind::HasNic => "has NIC",
            AssociationKind::FlowSource => "originates at",
            AssociationKind::FlowDestination => "terminates at",
            AssociationKind::ServiceOnContainer => "resides on",
            AssociationKind::ServiceCall => "calls",
            AssociationKind::AttachedToPort => "is attached to",
            AssociationKind::PortOnSwitch => "belongs to",
            AssociationKind::BackedBy => "is backed by",
            AssociationKind::ClientOf => "sends requests to",
            AssociationKind::Related => "is related to",
        }
    }
}

/// An association between two entities from monitoring metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Association {
    /// First endpoint.
    pub a: EntityId,
    /// Second endpoint.
    pub b: EntityId,
    /// Semantic kind.
    pub kind: AssociationKind,
    /// Direction knowledge.
    pub direction: Directionality,
}

impl Association {
    /// Undirected association (the conservative default).
    pub fn undirected(a: EntityId, b: EntityId, kind: AssociationKind) -> Self {
        Self {
            a,
            b,
            kind,
            direction: Directionality::Both,
        }
    }

    /// Directed association `a → b` (known influence direction).
    pub fn directed(a: EntityId, b: EntityId, kind: AssociationKind) -> Self {
        Self {
            a,
            b,
            kind,
            direction: Directionality::AToB,
        }
    }

    /// Does this association touch `e`?
    pub fn touches(&self, e: EntityId) -> bool {
        self.a == e || self.b == e
    }

    /// The endpoint opposite `e`, if `e` is an endpoint.
    pub fn other(&self, e: EntityId) -> Option<EntityId> {
        if self.a == e {
            Some(self.b)
        } else if self.b == e {
            Some(self.a)
        } else {
            None
        }
    }

    /// Directed edges implied by this association, per §4.1: both ways for
    /// [`Directionality::Both`], one way otherwise.
    pub fn directed_edges(&self) -> impl Iterator<Item = (EntityId, EntityId)> {
        let edges: [Option<(EntityId, EntityId)>; 2] = match self.direction {
            Directionality::Both => [Some((self.a, self.b)), Some((self.b, self.a))],
            Directionality::AToB => [Some((self.a, self.b)), None],
            Directionality::BToA => [Some((self.b, self.a)), None],
        };
        edges.into_iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E1: EntityId = EntityId(1);
    const E2: EntityId = EntityId(2);
    const E3: EntityId = EntityId(3);

    #[test]
    fn undirected_expands_to_two_edges() {
        let assoc = Association::undirected(E1, E2, AssociationKind::RunsOn);
        let edges: Vec<_> = assoc.directed_edges().collect();
        assert_eq!(edges, vec![(E1, E2), (E2, E1)]);
    }

    #[test]
    fn directed_expands_to_one_edge() {
        let assoc = Association::directed(E1, E2, AssociationKind::ServiceCall);
        let edges: Vec<_> = assoc.directed_edges().collect();
        assert_eq!(edges, vec![(E1, E2)]);

        let rev = Association {
            direction: Directionality::BToA,
            ..assoc
        };
        let edges: Vec<_> = rev.directed_edges().collect();
        assert_eq!(edges, vec![(E2, E1)]);
    }

    #[test]
    fn touches_and_other() {
        let assoc = Association::undirected(E1, E2, AssociationKind::Related);
        assert!(assoc.touches(E1));
        assert!(assoc.touches(E2));
        assert!(!assoc.touches(E3));
        assert_eq!(assoc.other(E1), Some(E2));
        assert_eq!(assoc.other(E2), Some(E1));
        assert_eq!(assoc.other(E3), None);
    }

    #[test]
    fn verbs_are_nonempty() {
        for kind in [
            AssociationKind::RunsOn,
            AssociationKind::HasNic,
            AssociationKind::FlowSource,
            AssociationKind::FlowDestination,
            AssociationKind::ServiceOnContainer,
            AssociationKind::ServiceCall,
            AssociationKind::AttachedToPort,
            AssociationKind::PortOnSwitch,
            AssociationKind::BackedBy,
            AssociationKind::ClientOf,
            AssociationKind::Related,
        ] {
            assert!(!kind.verb().is_empty());
        }
    }
}
