//! Configuration-change tracking.
//!
//! §4.2 "Edge cases": *"Murphy also presents all recent configuration
//! changes to the operator to catch problems caused by recently spawned
//! VMs."* Monitoring platforms record config events (entity created,
//! resized, migrated, reconfigured); Murphy doesn't reason about them
//! probabilistically — it simply surfaces the recent ones next to the
//! diagnosis so the operator can connect a change to the incident.

use crate::entity::EntityId;
use serde::{Deserialize, Serialize};

/// The kind of configuration event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeKind {
    /// Entity newly created/spawned.
    Created,
    /// Entity resized (CPU/memory/disk allocation changed).
    Resized,
    /// Entity moved to another host/datastore.
    Migrated,
    /// Software or configuration updated.
    Reconfigured,
    /// Entity decommissioned.
    Removed,
}

impl ChangeKind {
    /// Human-readable verb for reports.
    pub fn verb(self) -> &'static str {
        match self {
            ChangeKind::Created => "created",
            ChangeKind::Resized => "resized",
            ChangeKind::Migrated => "migrated",
            ChangeKind::Reconfigured => "reconfigured",
            ChangeKind::Removed => "removed",
        }
    }
}

/// One recorded configuration change.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigChange {
    /// The entity changed.
    pub entity: EntityId,
    /// What happened.
    pub kind: ChangeKind,
    /// When (tick index).
    pub tick: u64,
    /// Free-form detail ("scaled to 8 vCPU", "moved to host7", ...).
    pub detail: String,
}

/// An append-only log of configuration changes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChangeLog {
    changes: Vec<ConfigChange>,
}

impl ChangeLog {
    /// New empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a change.
    pub fn record(
        &mut self,
        entity: EntityId,
        kind: ChangeKind,
        tick: u64,
        detail: impl Into<String>,
    ) {
        self.changes.push(ConfigChange {
            entity,
            kind,
            tick,
            detail: detail.into(),
        });
    }

    /// All changes, in insertion order.
    pub fn all(&self) -> &[ConfigChange] {
        &self.changes
    }

    /// Changes at or after `since_tick` — what "recent" means is the
    /// caller's policy (Murphy uses the diagnosis window).
    pub fn recent(&self, since_tick: u64) -> Vec<&ConfigChange> {
        self.changes.iter().filter(|c| c.tick >= since_tick).collect()
    }

    /// Recent changes touching one of `entities`.
    pub fn recent_for(&self, since_tick: u64, entities: &[EntityId]) -> Vec<&ConfigChange> {
        self.recent(since_tick)
            .into_iter()
            .filter(|c| entities.contains(&c.entity))
            .collect()
    }

    /// Number of recorded changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True when no changes were recorded.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> ChangeLog {
        let mut log = ChangeLog::new();
        log.record(EntityId(1), ChangeKind::Created, 10, "spawned vm-1");
        log.record(EntityId(2), ChangeKind::Resized, 50, "scaled to 8 vCPU");
        log.record(EntityId(1), ChangeKind::Migrated, 90, "moved to host7");
        log
    }

    #[test]
    fn recent_filters_by_tick() {
        let log = log();
        assert_eq!(log.recent(0).len(), 3);
        assert_eq!(log.recent(50).len(), 2);
        assert_eq!(log.recent(91).len(), 0);
    }

    #[test]
    fn recent_for_filters_by_entity() {
        let log = log();
        let only_1 = log.recent_for(0, &[EntityId(1)]);
        assert_eq!(only_1.len(), 2);
        assert!(only_1.iter().all(|c| c.entity == EntityId(1)));
        assert!(log.recent_for(0, &[EntityId(9)]).is_empty());
    }

    #[test]
    fn verbs_cover_all_kinds() {
        for kind in [
            ChangeKind::Created,
            ChangeKind::Resized,
            ChangeKind::Migrated,
            ChangeKind::Reconfigured,
            ChangeKind::Removed,
        ] {
            assert!(!kind.verb().is_empty());
        }
    }

    #[test]
    fn empty_log() {
        let log = ChangeLog::new();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert!(log.recent(0).is_empty());
    }
}
