//! Aligned metric matrices for model training.
//!
//! Murphy's factors are trained by "relating metrics of entity v in a time
//! slice to the metrics of the neighbors of v in the same time slice"
//! (§4.2). [`MetricMatrix`] extracts an aligned `[time × metric]` matrix
//! from the monitoring database for a set of metric ids and a tick window,
//! with default-value imputation for gaps.

use crate::database::MonitoringDb;
use crate::metric::MetricId;
use serde::{Deserialize, Serialize};

/// A dense `[rows = time slices] × [cols = metrics]` matrix of aligned
/// metric values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricMatrix {
    /// Column labels: the metric each column holds.
    pub metrics: Vec<MetricId>,
    /// First tick of the window (inclusive).
    pub from_tick: u64,
    /// One past the last tick (exclusive).
    pub to_tick: u64,
    /// Row-major data: `data[row * metrics.len() + col]`.
    data: Vec<f64>,
}

impl MetricMatrix {
    /// Extract the window `[from_tick, to_tick)` for `metrics` from `db`.
    ///
    /// Missing series and missing points impute the metric kind's default
    /// (§4.2 "Edge cases": newly introduced entities have no history).
    pub fn extract(
        db: &MonitoringDb,
        metrics: &[MetricId],
        from_tick: u64,
        to_tick: u64,
    ) -> Self {
        let rows = to_tick.saturating_sub(from_tick) as usize;
        let cols = metrics.len();
        let mut data = vec![0.0; rows * cols];
        for (c, &m) in metrics.iter().enumerate() {
            let default = m.kind.default_value();
            match db.series(m) {
                Some(s) => {
                    for (r, t) in (from_tick..to_tick).enumerate() {
                        data[r * cols + c] = s.at_or(t, default);
                    }
                }
                None => {
                    for r in 0..rows {
                        data[r * cols + c] = default;
                    }
                }
            }
        }
        Self {
            metrics: metrics.to_vec(),
            from_tick,
            to_tick,
            data,
        }
    }

    /// Number of time slices (rows).
    pub fn rows(&self) -> usize {
        if self.metrics.is_empty() {
            0
        } else {
            self.data.len() / self.metrics.len()
        }
    }

    /// Number of metrics (columns).
    pub fn cols(&self) -> usize {
        self.metrics.len()
    }

    /// Value at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.cols() + col]
    }

    /// One metric's column as a vector.
    pub fn column(&self, col: usize) -> Vec<f64> {
        (0..self.rows()).map(|r| self.get(r, col)).collect()
    }

    /// One time slice's row as a slice.
    pub fn row(&self, row: usize) -> &[f64] {
        let cols = self.cols();
        &self.data[row * cols..(row + 1) * cols]
    }

    /// Column index of a metric id, if present.
    pub fn column_of(&self, metric: MetricId) -> Option<usize> {
        self.metrics.iter().position(|&m| m == metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityKind;
    use crate::metric::MetricKind;

    fn db_with_two_metrics() -> (MonitoringDb, MetricId, MetricId) {
        let mut db = MonitoringDb::new(10);
        let vm = db.add_entity(EntityKind::Vm, "vm");
        for t in 0..5 {
            db.record(vm, MetricKind::CpuUtil, t, t as f64 * 10.0);
        }
        db.record(vm, MetricKind::MemUtil, 2, 40.0);
        (
            db,
            MetricId::new(vm, MetricKind::CpuUtil),
            MetricId::new(vm, MetricKind::MemUtil),
        )
    }

    #[test]
    fn extract_aligns_columns() {
        let (db, cpu, mem) = db_with_two_metrics();
        let m = MetricMatrix::extract(&db, &[cpu, mem], 0, 5);
        assert_eq!(m.rows(), 5);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.column(0), vec![0.0, 10.0, 20.0, 30.0, 40.0]);
        // mem has a single point at t=2; gaps impute default 0.0.
        assert_eq!(m.column(1), vec![0.0, 0.0, 40.0, 0.0, 0.0]);
    }

    #[test]
    fn extract_missing_series_is_all_default() {
        let (db, cpu, _) = db_with_two_metrics();
        let ghost = MetricId::new(crate::EntityId(0), MetricKind::Latency);
        let m = MetricMatrix::extract(&db, &[cpu, ghost], 0, 3);
        assert_eq!(m.column(1), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn row_access() {
        let (db, cpu, mem) = db_with_two_metrics();
        let m = MetricMatrix::extract(&db, &[cpu, mem], 0, 5);
        assert_eq!(m.row(2), &[20.0, 40.0]);
        assert_eq!(m.get(3, 0), 30.0);
    }

    #[test]
    fn column_of_finds_metric() {
        let (db, cpu, mem) = db_with_two_metrics();
        let m = MetricMatrix::extract(&db, &[cpu, mem], 0, 2);
        assert_eq!(m.column_of(cpu), Some(0));
        assert_eq!(m.column_of(mem), Some(1));
        let ghost = MetricId::new(crate::EntityId(9), MetricKind::Rtt);
        assert_eq!(m.column_of(ghost), None);
    }

    #[test]
    fn empty_window() {
        let (db, cpu, _) = db_with_two_metrics();
        let m = MetricMatrix::extract(&db, &[cpu], 5, 5);
        assert_eq!(m.rows(), 0);
        let m = MetricMatrix::extract(&db, &[], 0, 5);
        assert_eq!(m.rows(), 0);
        assert_eq!(m.cols(), 0);
    }
}
