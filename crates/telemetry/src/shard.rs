//! Entity shards: the partitioned storage behind [`crate::MonitoringDb`].
//!
//! The paper's Aria estate holds ≈17K entities whose telemetry all lands
//! in one monitoring platform (§2.1). A monolithic map serializes every
//! write and every training-window scan on one structure; at estate
//! scale that single structure becomes the ingestion bottleneck. The
//! database therefore partitions **per-entity state** — the entity
//! records and their metric time series — across [`Shard`]s keyed by
//! `EntityId` (`id mod shard_count`), while cross-entity state
//! (associations, the adjacency index, application tags, the
//! configuration-change log) stays global in the facade.
//!
//! Shards are held as `Arc<Shard>` so that
//!
//! * bulk ingestion ([`crate::MonitoringDb::record_batch`]) can move each
//!   shard into a `'static` job on the shared `murphy-pool` worker pool
//!   (the workspace forbids `unsafe`, so jobs cannot borrow from the
//!   caller's stack), one job per shard, and
//! * read fan-outs ([`crate::MonitoringDb::scan_series`], used by the
//!   online-training column extraction) can hand every worker a cheap
//!   clone of the shard vector and scan columns concurrently.
//!
//! Cloning a sharded database is shallow (copy-on-write): mutating a
//! clone copies only the shards it touches.
//!
//! Sharding is an internal layout choice, **never** a semantic one: the
//! proptest suite in `crates/telemetry/tests/shard_parity.rs` pins every
//! query observationally identical between 1 and N shards, and
//! `crates/core/tests/determinism.rs` pins end-to-end diagnosis reports
//! bit-identical across shard counts.

use crate::entity::{Entity, EntityId};
use crate::metric::{MetricId, MetricKind};
use crate::timeseries::TimeSeries;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Serialize ordered maps with non-string keys as pair sequences, so the
/// database round-trips through JSON (whose object keys must be strings).
pub(crate) mod map_as_pairs {
    use serde::de::{Deserialize, Deserializer};
    use serde::ser::{Serialize, Serializer};
    use std::collections::BTreeMap;

    pub fn serialize<K, V, S>(map: &BTreeMap<K, V>, serializer: S) -> Result<S::Ok, S::Error>
    where
        K: Serialize,
        V: Serialize,
        S: Serializer,
    {
        serializer.collect_seq(map.iter())
    }

    pub fn deserialize<'de, K, V, D>(deserializer: D) -> Result<BTreeMap<K, V>, D::Error>
    where
        K: Deserialize<'de> + Ord,
        V: Deserialize<'de>,
        D: Deserializer<'de>,
    {
        let pairs: Vec<(K, V)> = Vec::deserialize(deserializer)?;
        Ok(pairs.into_iter().collect())
    }
}

/// Number of shards from the environment: `MURPHY_SHARDS` when set to a
/// positive integer, otherwise the machine's available parallelism
/// (capped at 256), falling back to 1. Read once per
/// [`crate::MonitoringDb::new`] call, so tests and benches can vary it
/// per database via [`crate::MonitoringDb::with_shards`] instead.
pub fn shard_count_from_env() -> usize {
    std::env::var("MURPHY_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
        .unwrap_or(1)
        .min(256)
}

/// One metric observation, the unit of bulk ingestion
/// ([`crate::MonitoringDb::record_batch`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// The observed entity.
    pub entity: EntityId,
    /// The metric kind.
    pub kind: MetricKind,
    /// Tick index of the observation.
    pub tick: u64,
    /// Observed value.
    pub value: f64,
}

impl MetricSample {
    /// Construct from parts.
    pub fn new(entity: EntityId, kind: MetricKind, tick: u64, value: f64) -> Self {
        Self {
            entity,
            kind,
            tick,
            value,
        }
    }

    /// The `(entity, kind)` pair this sample lands in.
    pub fn metric_id(&self) -> MetricId {
        MetricId::new(self.entity, self.kind)
    }
}

/// One partition of per-entity state: the entities whose id hashes to
/// this shard, plus their metric time series. Cross-entity state lives in
/// the [`crate::MonitoringDb`] facade.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Shard {
    /// Entities resident in this shard, keyed by id.
    #[serde(with = "map_as_pairs")]
    pub(crate) entities: BTreeMap<EntityId, Entity>,
    /// Metric series of this shard's entities. `MetricId` orders by
    /// `(entity, kind)`, so one entity's metrics are contiguous.
    #[serde(with = "map_as_pairs")]
    pub(crate) series: BTreeMap<MetricId, TimeSeries>,
}

impl Shard {
    /// Bulk-apply samples, equivalent to calling
    /// [`crate::MonitoringDb::record`] for each sample in order.
    ///
    /// Samples are applied strictly in input order (so last-write-wins
    /// semantics match the per-record loop exactly — pinned by
    /// `tests/shard_parity.rs`), but the series map is consulted once per
    /// *run* of consecutive same-metric samples instead of once per
    /// sample. Metric-grouped batches (bootstrap loads, per-series
    /// backfills) thus amortize the map probes to one per metric, with no
    /// clone or sort of the input; interleaved batches degrade gracefully
    /// to one probe per sample, the per-record cost.
    pub(crate) fn ingest(&mut self, samples: &[MetricSample], interval_secs: u64) {
        let mut i = 0;
        while i < samples.len() {
            let metric = samples[i].metric_id();
            let series = self
                .series
                .entry(metric)
                .or_insert_with(|| TimeSeries::new(interval_secs, 0));
            while i < samples.len() && samples[i].metric_id() == metric {
                series.set(samples[i].tick, samples[i].value);
                i += 1;
            }
        }
    }

    /// Latest tick with a finite value across this shard's series.
    pub(crate) fn latest_tick(&self) -> Option<u64> {
        self.series.values().filter_map(TimeSeries::last_tick).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityKind;

    #[test]
    fn env_shard_count_is_positive_and_bounded() {
        let n = shard_count_from_env();
        assert!(n >= 1);
        assert!(n <= 256);
    }

    #[test]
    fn sample_metric_id() {
        let s = MetricSample::new(EntityId(3), MetricKind::CpuUtil, 7, 1.5);
        assert_eq!(s.metric_id(), MetricId::new(EntityId(3), MetricKind::CpuUtil));
    }

    #[test]
    fn ingest_matches_per_record_application() {
        // Interleaved metrics with an overwrite: last write per tick wins,
        // per-metric order preserved.
        let e = EntityId(0);
        let samples = vec![
            MetricSample::new(e, MetricKind::CpuUtil, 0, 1.0),
            MetricSample::new(e, MetricKind::MemUtil, 0, 9.0),
            MetricSample::new(e, MetricKind::CpuUtil, 1, 2.0),
            MetricSample::new(e, MetricKind::CpuUtil, 0, 3.0),
        ];
        let mut shard = Shard::default();
        shard.entities.insert(
            e,
            Entity {
                id: e,
                kind: EntityKind::Vm,
                name: "vm".into(),
            },
        );
        shard.ingest(&samples, 10);
        let cpu = shard.series.get(&MetricId::new(e, MetricKind::CpuUtil)).unwrap();
        assert_eq!(cpu.at(0), Some(3.0), "overwrite must win");
        assert_eq!(cpu.at(1), Some(2.0));
        let mem = shard.series.get(&MetricId::new(e, MetricKind::MemUtil)).unwrap();
        assert_eq!(mem.at(0), Some(9.0));
        assert_eq!(shard.latest_tick(), Some(1));
    }
}
