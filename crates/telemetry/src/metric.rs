//! Metrics: the per-entity performance time series.
//!
//! The taxonomy follows the entity/metric table in §2.1 of the paper.
//! Each [`MetricKind`] carries:
//!
//! * a default value used to impute missing history for newly spawned
//!   entities (§4.2 "Edge cases" — e.g. 0% for CPU usage),
//! * the conservative alert threshold used by the labeling scheme (§4.3)
//!   and the candidate-pruning BFS (§4.2): 25% utilization, 0.1% drop
//!   rate, 50 TCP sessions or 1 GB per interval, and so on.

use crate::entity::{EntityId, EntityKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MetricKind {
    /// CPU utilization, percent [0, 100].
    CpuUtil,
    /// Memory utilization, percent [0, 100].
    MemUtil,
    /// Disk utilization / IO pressure, percent [0, 100].
    DiskUtil,
    /// Network transmit rate, MB per interval.
    NetTx,
    /// Network receive rate, MB per interval.
    NetRx,
    /// Dropped packets, percent of traffic [0, 100].
    DropRate,
    /// Request or response latency, milliseconds.
    Latency,
    /// Request rate, requests per second.
    RequestRate,
    /// Error rate, percent of requests [0, 100].
    ErrorRate,
    /// Flow throughput, MB per interval.
    Throughput,
    /// Flow round-trip time, milliseconds.
    Rtt,
    /// Flow TCP session count in the interval.
    SessionCount,
    /// Flow retransmission ratio, percent [0, 100].
    RetransmitRatio,
    /// Switch-interface peak buffer utilization, percent [0, 100].
    BufferUtil,
    /// Datastore space utilization, percent [0, 100].
    SpaceUtil,
}

impl MetricKind {
    /// All metric kinds.
    pub const ALL: [MetricKind; 15] = [
        MetricKind::CpuUtil,
        MetricKind::MemUtil,
        MetricKind::DiskUtil,
        MetricKind::NetTx,
        MetricKind::NetRx,
        MetricKind::DropRate,
        MetricKind::Latency,
        MetricKind::RequestRate,
        MetricKind::ErrorRate,
        MetricKind::Throughput,
        MetricKind::Rtt,
        MetricKind::SessionCount,
        MetricKind::RetransmitRatio,
        MetricKind::BufferUtil,
        MetricKind::SpaceUtil,
    ];

    /// Short name for reports.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::CpuUtil => "cpu_util",
            MetricKind::MemUtil => "mem_util",
            MetricKind::DiskUtil => "disk_util",
            MetricKind::NetTx => "net_tx",
            MetricKind::NetRx => "net_rx",
            MetricKind::DropRate => "drop_rate",
            MetricKind::Latency => "latency",
            MetricKind::RequestRate => "request_rate",
            MetricKind::ErrorRate => "error_rate",
            MetricKind::Throughput => "throughput",
            MetricKind::Rtt => "rtt",
            MetricKind::SessionCount => "session_count",
            MetricKind::RetransmitRatio => "retransmit_ratio",
            MetricKind::BufferUtil => "buffer_util",
            MetricKind::SpaceUtil => "space_util",
        }
    }

    /// Unit string for reports.
    pub fn unit(self) -> &'static str {
        match self {
            MetricKind::CpuUtil
            | MetricKind::MemUtil
            | MetricKind::DiskUtil
            | MetricKind::DropRate
            | MetricKind::ErrorRate
            | MetricKind::RetransmitRatio
            | MetricKind::BufferUtil
            | MetricKind::SpaceUtil => "%",
            MetricKind::NetTx | MetricKind::NetRx | MetricKind::Throughput => "MB/interval",
            MetricKind::Latency | MetricKind::Rtt => "ms",
            MetricKind::RequestRate => "req/s",
            MetricKind::SessionCount => "sessions",
        }
    }

    /// Default value imputed when an entity has no history (§4.2 "Edge
    /// cases": "a default metric value (such as 0% for CPU usage) as a
    /// placeholder for missing values").
    pub fn default_value(self) -> f64 {
        0.0
    }

    /// Conservative alert threshold used by the labeling scheme (§4.3,
    /// footnote 7) and pruning: 25% for utilizations, 0.1% drop rate,
    /// 50 sessions or 1 GB (1000 MB) per interval for flows. Metrics whose
    /// thresholds the paper does not state get conservative analogues.
    pub fn threshold(self) -> f64 {
        match self {
            MetricKind::CpuUtil
            | MetricKind::MemUtil
            | MetricKind::DiskUtil
            | MetricKind::BufferUtil
            | MetricKind::SpaceUtil => 25.0,
            MetricKind::DropRate | MetricKind::RetransmitRatio => 0.1,
            MetricKind::SessionCount => 50.0,
            MetricKind::Throughput | MetricKind::NetTx | MetricKind::NetRx => 1000.0,
            MetricKind::Latency | MetricKind::Rtt => 100.0,
            MetricKind::RequestRate => 500.0,
            MetricKind::ErrorRate => 1.0,
        }
    }

    /// Whether a value is bounded to a percentage range.
    pub fn is_percentage(self) -> bool {
        self.unit() == "%"
    }

    /// Clamp a sampled/simulated value to the metric's physical domain:
    /// percentages live in [0, 100], everything else is non-negative.
    pub fn clamp(self, value: f64) -> f64 {
        if !value.is_finite() {
            return self.default_value();
        }
        if self.is_percentage() {
            value.clamp(0.0, 100.0)
        } else {
            value.max(0.0)
        }
    }

    /// "Load-like" metrics: high values indicate traffic/work volume.
    /// The explanation labeler uses these for the heavy-hitter label.
    pub fn is_load_like(self) -> bool {
        matches!(
            self,
            MetricKind::Throughput
                | MetricKind::SessionCount
                | MetricKind::RequestRate
                | MetricKind::NetTx
                | MetricKind::NetRx
        )
    }

    /// Default metrics exposed by each entity kind (the §2.1 table).
    pub fn defaults_for(kind: EntityKind) -> &'static [MetricKind] {
        use MetricKind::*;
        match kind {
            EntityKind::Vm | EntityKind::Host | EntityKind::Container => {
                &[CpuUtil, MemUtil, DiskUtil, NetTx, NetRx, DropRate]
            }
            EntityKind::Service => &[Latency, RequestRate, ErrorRate],
            EntityKind::VirtualNic => &[NetTx, NetRx, DropRate],
            EntityKind::PhysicalNic => &[NetTx, NetRx, DropRate, Latency, BufferUtil],
            EntityKind::Flow => &[SessionCount, Throughput, Rtt, DropRate, RetransmitRatio],
            EntityKind::SwitchInterface => &[NetTx, NetRx, DropRate, Latency, BufferUtil],
            EntityKind::Switch => &[NetTx, NetRx, DropRate],
            EntityKind::Datastore => &[SpaceUtil, DiskUtil],
            EntityKind::Client => &[RequestRate, Latency],
        }
    }
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Fully-qualified metric identifier: (entity, metric kind).
///
/// This is the `(E, M)` pair of the paper: problematic symptoms, root
/// causes, and factor inputs are all named this way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetricId {
    /// The owning entity.
    pub entity: EntityId,
    /// The metric kind.
    pub kind: MetricKind,
}

impl MetricId {
    /// Construct from parts.
    pub fn new(entity: EntityId, kind: MetricKind) -> Self {
        Self { entity, kind }
    }
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.entity, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entity_kind_has_metrics() {
        for kind in EntityKind::ALL {
            assert!(
                !MetricKind::defaults_for(kind).is_empty(),
                "{kind:?} has no default metrics"
            );
        }
    }

    #[test]
    fn paper_thresholds() {
        assert_eq!(MetricKind::CpuUtil.threshold(), 25.0);
        assert_eq!(MetricKind::MemUtil.threshold(), 25.0);
        assert_eq!(MetricKind::DropRate.threshold(), 0.1);
        assert_eq!(MetricKind::SessionCount.threshold(), 50.0);
        assert_eq!(MetricKind::Throughput.threshold(), 1000.0);
    }

    #[test]
    fn clamp_respects_domains() {
        assert_eq!(MetricKind::CpuUtil.clamp(150.0), 100.0);
        assert_eq!(MetricKind::CpuUtil.clamp(-5.0), 0.0);
        assert_eq!(MetricKind::Latency.clamp(-1.0), 0.0);
        assert_eq!(MetricKind::Latency.clamp(12345.0), 12345.0);
        assert_eq!(MetricKind::CpuUtil.clamp(f64::NAN), 0.0);
    }

    #[test]
    fn load_like_classification() {
        assert!(MetricKind::Throughput.is_load_like());
        assert!(MetricKind::SessionCount.is_load_like());
        assert!(!MetricKind::CpuUtil.is_load_like());
        assert!(!MetricKind::Latency.is_load_like());
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<&str> = MetricKind::ALL.iter().map(|m| m.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), MetricKind::ALL.len());
    }

    #[test]
    fn metric_id_display() {
        let m = MetricId::new(EntityId(3), MetricKind::CpuUtil);
        assert_eq!(format!("{m}"), "E3.cpu_util");
    }

    #[test]
    fn vm_metrics_match_paper_table() {
        let vm = MetricKind::defaults_for(EntityKind::Vm);
        for needed in [
            MetricKind::CpuUtil,
            MetricKind::MemUtil,
            MetricKind::NetTx,
            MetricKind::NetRx,
            MetricKind::DropRate,
        ] {
            assert!(vm.contains(&needed));
        }
        let flow = MetricKind::defaults_for(EntityKind::Flow);
        for needed in [
            MetricKind::SessionCount,
            MetricKind::Throughput,
            MetricKind::Rtt,
            MetricKind::RetransmitRatio,
        ] {
            assert!(flow.contains(&needed));
        }
    }
}
