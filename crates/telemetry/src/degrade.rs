//! Data-corruption operators for the robustness study (Table 2).
//!
//! The paper evaluates each diagnosis scheme on telemetry degraded four
//! ways, each modeling a real monitoring failure mode:
//!
//! * **Missing edge** — a randomly chosen association is removed (a bug in
//!   the tracing framework loses a caller/callee edge),
//! * **Missing entity** — a randomly chosen entity vanishes together with
//!   its metrics and associations (missing monitoring coverage),
//! * **Missing metric** — a single metric of the *root-cause* entity is
//!   dropped (a collector gap on exactly the entity that matters),
//! * **Missing values** — 25% of entities lose their historical values but
//!   keep incident-time points (newly spawned entities).

use crate::database::MonitoringDb;
use crate::entity::EntityId;
use crate::metric::MetricId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A degradation to apply to a [`MonitoringDb`] before diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Degradation {
    /// Remove one random association. If `protect_symptom` was given to
    /// [`apply`], associations touching the symptom entity are spared so
    /// the diagnosis target itself stays connected.
    MissingEdge,
    /// Remove one random entity (never the symptom or root-cause entity —
    /// the paper removes a *randomly chosen* entity, and the experiment is
    /// only defined when the ground truth still exists).
    MissingEntity,
    /// Remove a single metric from the root-cause entity.
    MissingMetric,
    /// Blank historical values (before `keep_after_tick`) for this
    /// fraction of entities, keeping incident-time data.
    MissingValues {
        /// Fraction of entities affected (the paper uses 0.25).
        fraction: f64,
    },
}

impl Degradation {
    /// The paper's four degradations in Table 2 order.
    pub const TABLE2: [Degradation; 4] = [
        Degradation::MissingValues { fraction: 0.25 },
        Degradation::MissingEdge,
        Degradation::MissingEntity,
        Degradation::MissingMetric,
    ];

    /// Row label used when printing Table 2.
    pub fn label(&self) -> &'static str {
        match self {
            Degradation::MissingValues { .. } => "Missing values",
            Degradation::MissingEdge => "Missing edge",
            Degradation::MissingEntity => "Missing entity",
            Degradation::MissingMetric => "Missing metric",
        }
    }
}

/// Context needed to apply a degradation meaningfully.
#[derive(Debug, Clone, Copy)]
pub struct DegradeContext {
    /// The entity whose symptom will be diagnosed (never removed).
    pub symptom_entity: EntityId,
    /// The ground-truth root cause (target of `MissingMetric`; never
    /// removed by `MissingEntity`).
    pub root_cause_entity: EntityId,
    /// Tick at which the incident starts; `MissingValues` keeps data from
    /// here on.
    pub incident_start_tick: u64,
}

/// Apply a degradation in place. Returns a human-readable description of
/// what was corrupted (for experiment logs).
pub fn apply<R: Rng>(
    db: &mut MonitoringDb,
    degradation: Degradation,
    ctx: DegradeContext,
    rng: &mut R,
) -> String {
    match degradation {
        Degradation::MissingEdge => {
            let candidates: Vec<usize> = (0..db.associations().len())
                .filter(|&i| {
                    let a = db.associations()[i];
                    !a.touches(ctx.symptom_entity)
                })
                .collect();
            match candidates.choose(rng) {
                Some(&idx) => {
                    let removed = db
                        .remove_association_at(idx)
                        .expect("candidate index is in range");
                    format!("removed association {:?} {} -- {}", removed.kind, removed.a, removed.b)
                }
                None => "no removable association".to_string(),
            }
        }
        Degradation::MissingEntity => {
            let candidates: Vec<EntityId> = db
                .entities()
                .map(|e| e.id)
                .filter(|&id| id != ctx.symptom_entity && id != ctx.root_cause_entity)
                .collect();
            match candidates.choose(rng) {
                Some(&id) => {
                    db.remove_entity(id);
                    format!("removed entity {id}")
                }
                None => "no removable entity".to_string(),
            }
        }
        Degradation::MissingMetric => {
            let metrics: Vec<MetricId> = db
                .all_metrics()
                .into_iter()
                .filter(|m| m.entity == ctx.root_cause_entity)
                .collect();
            match metrics.choose(rng) {
                Some(&m) => {
                    db.remove_metric(m);
                    format!("removed metric {m}")
                }
                None => "root cause has no metrics".to_string(),
            }
        }
        Degradation::MissingValues { fraction } => {
            let entities: Vec<EntityId> = db.entities().map(|e| e.id).collect();
            let k = ((entities.len() as f64) * fraction).round() as usize;
            let mut shuffled = entities;
            shuffled.shuffle(rng);
            let victims = &shuffled[..k.min(shuffled.len())];
            let metrics = db.all_metrics();
            for m in metrics {
                if victims.contains(&m.entity) {
                    if let Some(series) = db.series(m) {
                        let mut s = series.clone();
                        s.blank_before(ctx.incident_start_tick);
                        *db.series_mut(m.entity, m.kind) = s;
                    }
                }
            }
            format!("blanked history of {} entities before tick {}", victims.len(), ctx.incident_start_tick)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::association::AssociationKind;
    use crate::entity::EntityKind;
    use crate::metric::MetricKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db() -> (MonitoringDb, DegradeContext) {
        let mut db = MonitoringDb::new(10);
        let symptom = db.add_entity(EntityKind::Service, "svc");
        let cause = db.add_entity(EntityKind::Vm, "vm");
        let other = db.add_entity(EntityKind::Host, "host");
        db.relate(symptom, cause, AssociationKind::Related);
        db.relate(cause, other, AssociationKind::RunsOn);
        for t in 0..10 {
            db.record(cause, MetricKind::CpuUtil, t, t as f64);
            db.record(cause, MetricKind::MemUtil, t, 1.0);
            db.record(other, MetricKind::CpuUtil, t, 2.0);
            db.record(symptom, MetricKind::Latency, t, 5.0);
        }
        (
            db,
            DegradeContext {
                symptom_entity: symptom,
                root_cause_entity: cause,
                incident_start_tick: 8,
            },
        )
    }

    #[test]
    fn missing_edge_spares_symptom() {
        let (mut d, ctx) = db();
        let mut rng = StdRng::seed_from_u64(1);
        apply(&mut d, Degradation::MissingEdge, ctx, &mut rng);
        // Only the cause--other edge is removable; symptom edge remains.
        assert_eq!(d.associations().len(), 1);
        assert!(d.associations()[0].touches(ctx.symptom_entity));
    }

    #[test]
    fn missing_entity_never_removes_ground_truth() {
        for seed in 0..20 {
            let (mut d, ctx) = db();
            let mut rng = StdRng::seed_from_u64(seed);
            apply(&mut d, Degradation::MissingEntity, ctx, &mut rng);
            assert!(d.entity(ctx.symptom_entity).is_some());
            assert!(d.entity(ctx.root_cause_entity).is_some());
            assert_eq!(d.entity_count(), 2);
        }
    }

    #[test]
    fn missing_metric_targets_root_cause() {
        let (mut d, ctx) = db();
        let before = d.metrics_of(ctx.root_cause_entity).len();
        let mut rng = StdRng::seed_from_u64(2);
        apply(&mut d, Degradation::MissingMetric, ctx, &mut rng);
        assert_eq!(d.metrics_of(ctx.root_cause_entity).len(), before - 1);
        // Other entities untouched.
        assert_eq!(d.metrics_of(ctx.symptom_entity).len(), 1);
    }

    #[test]
    fn missing_values_keeps_incident_window() {
        let (mut d, ctx) = db();
        let mut rng = StdRng::seed_from_u64(3);
        apply(&mut d, Degradation::MissingValues { fraction: 1.0 }, ctx, &mut rng);
        let m = MetricId::new(ctx.root_cause_entity, MetricKind::CpuUtil);
        let s = d.series(m).unwrap();
        // History blanked...
        assert_eq!(s.at(0), None);
        assert_eq!(s.at(7), None);
        // ...incident-time data retained.
        assert_eq!(s.at(8), Some(8.0));
        assert_eq!(s.at(9), Some(9.0));
    }

    #[test]
    fn missing_values_fraction_counts_entities() {
        let (mut d, ctx) = db();
        let mut rng = StdRng::seed_from_u64(4);
        let msg = apply(&mut d, Degradation::MissingValues { fraction: 0.34 }, ctx, &mut rng);
        assert!(msg.contains("1 entities"), "{msg}");
    }

    #[test]
    fn table2_order_and_labels() {
        let labels: Vec<&str> = Degradation::TABLE2.iter().map(|d| d.label()).collect();
        assert_eq!(
            labels,
            vec!["Missing values", "Missing edge", "Missing entity", "Missing metric"]
        );
    }
}
