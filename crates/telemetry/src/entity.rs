//! Entities: the monitored objects of the system.
//!
//! The taxonomy mirrors the entity table in §2.1 of the paper (VM, host,
//! container, virtual/physical NIC, flow, switch interface, datastore) plus
//! the microservice-level kinds used in the DeathStarBench evaluation
//! (service, client) and the aggregation kinds (switch, application tier).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque, dense entity identifier.
///
/// Identifiers are handed out by [`crate::MonitoringDb::add_entity`] in
/// insertion order, which lets graph code index `Vec`s by id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityId(pub u32);

impl EntityId {
    /// Index form for dense vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// The kind of a monitored entity.
///
/// Kinds determine which metrics an entity exposes by default (see
/// [`crate::MetricKind::defaults_for`]) and how the explanation engine
/// phrases chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntityKind {
    /// Virtual machine.
    Vm,
    /// Physical host (hypervisor).
    Host,
    /// Container (Docker / pod member).
    Container,
    /// A microservice (logical service, possibly spanning containers).
    Service,
    /// Virtual NIC attached to a VM.
    VirtualNic,
    /// Physical NIC on a host.
    PhysicalNic,
    /// A network flow identified by its 4-tuple.
    Flow,
    /// A switch interface / port.
    SwitchInterface,
    /// A top-of-rack or aggregation switch.
    Switch,
    /// A datastore backing VMs.
    Datastore,
    /// An external client / load generator.
    Client,
}

impl EntityKind {
    /// All kinds, for exhaustive iteration in tests and generators.
    pub const ALL: [EntityKind; 11] = [
        EntityKind::Vm,
        EntityKind::Host,
        EntityKind::Container,
        EntityKind::Service,
        EntityKind::VirtualNic,
        EntityKind::PhysicalNic,
        EntityKind::Flow,
        EntityKind::SwitchInterface,
        EntityKind::Switch,
        EntityKind::Datastore,
        EntityKind::Client,
    ];

    /// Short human-readable name used in explanations and reports.
    pub fn label(self) -> &'static str {
        match self {
            EntityKind::Vm => "VM",
            EntityKind::Host => "host",
            EntityKind::Container => "container",
            EntityKind::Service => "service",
            EntityKind::VirtualNic => "vNIC",
            EntityKind::PhysicalNic => "pNIC",
            EntityKind::Flow => "flow",
            EntityKind::SwitchInterface => "switch interface",
            EntityKind::Switch => "switch",
            EntityKind::Datastore => "datastore",
            EntityKind::Client => "client",
        }
    }

    /// Whether the entity is an infrastructure component (as opposed to an
    /// application-level one). Infrastructure entities are the main source
    /// of the bidirectional "shared resource" couplings of §2.2.
    pub fn is_infrastructure(self) -> bool {
        matches!(
            self,
            EntityKind::Host
                | EntityKind::VirtualNic
                | EntityKind::PhysicalNic
                | EntityKind::SwitchInterface
                | EntityKind::Switch
                | EntityKind::Datastore
        )
    }
}

impl fmt::Display for EntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A monitored entity: id, kind, human-readable name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entity {
    /// Identifier within the owning [`crate::MonitoringDb`].
    pub id: EntityId,
    /// Entity kind.
    pub kind: EntityKind,
    /// Display name, e.g. `"frontend-vm"` or `"flow crawler→frontend"`.
    pub name: String,
}

impl Entity {
    /// Describe the entity for reports: `"VM frontend-vm (E3)"`.
    pub fn describe(&self) -> String {
        format!("{} {} ({})", self.kind.label(), self.name, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trips_through_index() {
        let id = EntityId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "E42");
    }

    #[test]
    fn all_kinds_have_distinct_labels() {
        let mut labels: Vec<&str> = EntityKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), EntityKind::ALL.len());
    }

    #[test]
    fn infrastructure_classification() {
        assert!(EntityKind::Host.is_infrastructure());
        assert!(EntityKind::Switch.is_infrastructure());
        assert!(!EntityKind::Vm.is_infrastructure());
        assert!(!EntityKind::Service.is_infrastructure());
        assert!(!EntityKind::Flow.is_infrastructure());
    }

    #[test]
    fn describe_is_informative() {
        let e = Entity {
            id: EntityId(7),
            kind: EntityKind::Flow,
            name: "crawler→frontend".into(),
        };
        let d = e.describe();
        assert!(d.contains("flow"));
        assert!(d.contains("crawler"));
        assert!(d.contains("E7"));
    }
}
