//! The in-memory monitoring database.
//!
//! [`MonitoringDb`] is the reproduction's stand-in for an enterprise
//! observability platform (§2.1): it stores entities, their associations,
//! per-metric time series, and application membership tags ("all VMs of
//! application foo"). Murphy, the baselines, and the experiment harness
//! interact with the environment *only* through this API.

use crate::association::{Association, AssociationKind};
use crate::changes::{ChangeKind, ChangeLog, ConfigChange};
use crate::entity::{Entity, EntityId, EntityKind};
use crate::metric::{MetricId, MetricKind};
use crate::timeseries::TimeSeries;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Serialize ordered maps with non-string keys as pair sequences, so the
/// database round-trips through JSON (whose object keys must be strings).
mod map_as_pairs {
    use serde::de::{Deserialize, Deserializer};
    use serde::ser::{Serialize, Serializer};
    use std::collections::BTreeMap;

    pub fn serialize<K, V, S>(map: &BTreeMap<K, V>, serializer: S) -> Result<S::Ok, S::Error>
    where
        K: Serialize,
        V: Serialize,
        S: Serializer,
    {
        serializer.collect_seq(map.iter())
    }

    pub fn deserialize<'de, K, V, D>(deserializer: D) -> Result<BTreeMap<K, V>, D::Error>
    where
        K: Deserialize<'de> + Ord,
        V: Deserialize<'de>,
        D: Deserializer<'de>,
    {
        let pairs: Vec<(K, V)> = Vec::deserialize(deserializer)?;
        Ok(pairs.into_iter().collect())
    }
}

/// In-memory monitoring database.
///
/// Entity ids are dense (`0..entity_count`), which downstream graph code
/// exploits for vector indexing; removed entities leave tombstones so ids
/// stay stable under the Table 2 "missing entity" degradation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MonitoringDb {
    entities: Vec<Option<Entity>>,
    associations: Vec<Association>,
    /// Adjacency index: entity → indices into `associations`. Serialized
    /// (as pairs — JSON map keys must be strings) so a deserialized
    /// database is query-ready.
    #[serde(with = "map_as_pairs")]
    adjacency: BTreeMap<EntityId, Vec<usize>>,
    #[serde(with = "map_as_pairs")]
    series: BTreeMap<MetricId, TimeSeries>,
    /// Application tag → member entities (operator-defined apps, §2.1).
    applications: BTreeMap<String, BTreeSet<EntityId>>,
    /// Default interval for new series, seconds.
    pub interval_secs: u64,
    /// Configuration-change log (§4.2 edge cases).
    changes: ChangeLog,
}

impl MonitoringDb {
    /// New empty database with the given metric interval.
    pub fn new(interval_secs: u64) -> Self {
        Self {
            interval_secs,
            ..Default::default()
        }
    }

    // ---- entities -------------------------------------------------------

    /// Register an entity; returns its id.
    pub fn add_entity(&mut self, kind: EntityKind, name: impl Into<String>) -> EntityId {
        let id = EntityId(self.entities.len() as u32);
        self.entities.push(Some(Entity {
            id,
            kind,
            name: name.into(),
        }));
        id
    }

    /// Look up an entity (None if unknown or removed).
    pub fn entity(&self, id: EntityId) -> Option<&Entity> {
        self.entities.get(id.index()).and_then(|e| e.as_ref())
    }

    /// Number of live entities.
    pub fn entity_count(&self) -> usize {
        self.entities.iter().filter(|e| e.is_some()).count()
    }

    /// Iterate live entities.
    pub fn entities(&self) -> impl Iterator<Item = &Entity> {
        self.entities.iter().filter_map(|e| e.as_ref())
    }

    /// Live entities of a given kind.
    pub fn entities_of_kind(&self, kind: EntityKind) -> Vec<EntityId> {
        self.entities()
            .filter(|e| e.kind == kind)
            .map(|e| e.id)
            .collect()
    }

    /// Find an entity by exact name.
    pub fn entity_by_name(&self, name: &str) -> Option<&Entity> {
        self.entities().find(|e| e.name == name)
    }

    /// Remove an entity along with its associations, series, and app tags
    /// (Table 2 "missing entity"). Ids of other entities are unaffected.
    pub fn remove_entity(&mut self, id: EntityId) {
        if let Some(slot) = self.entities.get_mut(id.index()) {
            *slot = None;
        }
        self.associations.retain(|a| !a.touches(id));
        self.rebuild_adjacency();
        self.series.retain(|m, _| m.entity != id);
        for members in self.applications.values_mut() {
            members.remove(&id);
        }
    }

    // ---- associations ---------------------------------------------------

    /// Record an association between two (existing) entities.
    pub fn add_association(&mut self, assoc: Association) {
        let idx = self.associations.len();
        self.associations.push(assoc);
        self.adjacency.entry(assoc.a).or_default().push(idx);
        if assoc.b != assoc.a {
            self.adjacency.entry(assoc.b).or_default().push(idx);
        }
    }

    /// Convenience: undirected association.
    pub fn relate(&mut self, a: EntityId, b: EntityId, kind: AssociationKind) {
        self.add_association(Association::undirected(a, b, kind));
    }

    /// Convenience: directed association `a → b`.
    pub fn relate_directed(&mut self, a: EntityId, b: EntityId, kind: AssociationKind) {
        self.add_association(Association::directed(a, b, kind));
    }

    /// All associations.
    pub fn associations(&self) -> &[Association] {
        &self.associations
    }

    /// Associations touching an entity.
    pub fn associations_of(&self, id: EntityId) -> Vec<&Association> {
        match self.adjacency.get(&id) {
            Some(idxs) => idxs.iter().map(|&i| &self.associations[i]).collect(),
            None => Vec::new(),
        }
    }

    /// Distinct neighbor entities of `id` (either direction).
    pub fn neighbors(&self, id: EntityId) -> Vec<EntityId> {
        let mut out: Vec<EntityId> = self
            .associations_of(id)
            .iter()
            .filter_map(|a| a.other(id))
            .filter(|&n| n != id)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Remove one specific association (Table 2 "missing edge"). Returns
    /// true if an association between the endpoints with that kind existed.
    pub fn remove_association(&mut self, a: EntityId, b: EntityId, kind: AssociationKind) -> bool {
        let before = self.associations.len();
        self.associations.retain(|x| {
            !(x.kind == kind && ((x.a == a && x.b == b) || (x.a == b && x.b == a)))
        });
        let removed = self.associations.len() != before;
        if removed {
            self.rebuild_adjacency();
        }
        removed
    }

    /// Remove the association at a given index (used by randomized
    /// degradation). Returns the removed association.
    pub fn remove_association_at(&mut self, index: usize) -> Option<Association> {
        if index >= self.associations.len() {
            return None;
        }
        let removed = self.associations.remove(index);
        self.rebuild_adjacency();
        Some(removed)
    }

    fn rebuild_adjacency(&mut self) {
        self.adjacency.clear();
        for (idx, assoc) in self.associations.iter().enumerate() {
            self.adjacency.entry(assoc.a).or_default().push(idx);
            if assoc.b != assoc.a {
                self.adjacency.entry(assoc.b).or_default().push(idx);
            }
        }
    }

    // ---- metrics --------------------------------------------------------

    /// Ensure a series exists for `(entity, kind)` and return it mutably.
    pub fn series_mut(&mut self, entity: EntityId, kind: MetricKind) -> &mut TimeSeries {
        let interval = self.interval_secs;
        self.series
            .entry(MetricId::new(entity, kind))
            .or_insert_with(|| TimeSeries::new(interval, 0))
    }

    /// Record a metric value at a tick.
    pub fn record(&mut self, entity: EntityId, kind: MetricKind, tick: u64, value: f64) {
        self.series_mut(entity, kind).set(tick, value);
    }

    /// Fetch the series for a metric, if present.
    pub fn series(&self, metric: MetricId) -> Option<&TimeSeries> {
        self.series.get(&metric)
    }

    /// Metric kinds with data for an entity.
    pub fn metrics_of(&self, entity: EntityId) -> Vec<MetricKind> {
        self.series
            .keys()
            .filter(|m| m.entity == entity)
            .map(|m| m.kind)
            .collect()
    }

    /// All metric ids with data.
    pub fn all_metrics(&self) -> Vec<MetricId> {
        self.series.keys().copied().collect()
    }

    /// Remove one metric's series entirely (Table 2 "missing metric").
    pub fn remove_metric(&mut self, metric: MetricId) -> bool {
        self.series.remove(&metric).is_some()
    }

    /// Current value of a metric (latest finite point), imputing the kind
    /// default when the series is missing or empty (§4.2 "Edge cases").
    pub fn current_value(&self, metric: MetricId) -> f64 {
        self.series(metric)
            .and_then(|s| s.last())
            .unwrap_or_else(|| metric.kind.default_value())
    }

    /// Value of a metric at a tick, with default imputation.
    pub fn value_at(&self, metric: MetricId, tick: u64) -> f64 {
        self.series(metric)
            .map(|s| s.at_or(tick, metric.kind.default_value()))
            .unwrap_or_else(|| metric.kind.default_value())
    }

    /// Latest tick with any data across all series ("now").
    pub fn latest_tick(&self) -> u64 {
        self.series
            .values()
            .filter_map(|s| s.last_tick())
            .max()
            .unwrap_or(0)
    }

    // ---- configuration changes -------------------------------------------

    /// Record a configuration change.
    pub fn record_change(
        &mut self,
        entity: EntityId,
        kind: ChangeKind,
        tick: u64,
        detail: impl Into<String>,
    ) {
        self.changes.record(entity, kind, tick, detail);
    }

    /// Configuration changes at or after `since_tick`.
    pub fn recent_changes(&self, since_tick: u64) -> Vec<&ConfigChange> {
        self.changes.recent(since_tick)
    }

    /// The full change log.
    pub fn change_log(&self) -> &ChangeLog {
        &self.changes
    }

    // ---- applications ---------------------------------------------------

    /// Tag an entity as member of an application.
    pub fn tag_application(&mut self, app: impl Into<String>, entity: EntityId) {
        self.applications.entry(app.into()).or_default().insert(entity);
    }

    /// Members of an application (empty if unknown).
    pub fn application_members(&self, app: &str) -> Vec<EntityId> {
        self.applications
            .get(app)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// All application names.
    pub fn applications(&self) -> Vec<&str> {
        self.applications.keys().map(|s| s.as_str()).collect()
    }

    /// Applications a given entity belongs to.
    pub fn applications_of(&self, entity: EntityId) -> Vec<&str> {
        self.applications
            .iter()
            .filter(|(_, members)| members.contains(&entity))
            .map(|(name, _)| name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_db() -> (MonitoringDb, EntityId, EntityId, EntityId) {
        let mut db = MonitoringDb::new(10);
        let vm = db.add_entity(EntityKind::Vm, "vm-1");
        let host = db.add_entity(EntityKind::Host, "host-1");
        let flow = db.add_entity(EntityKind::Flow, "flow-1");
        db.relate(vm, host, AssociationKind::RunsOn);
        db.relate(flow, vm, AssociationKind::FlowDestination);
        (db, vm, host, flow)
    }

    #[test]
    fn entities_are_dense_and_lookupable() {
        let (db, vm, host, flow) = small_db();
        assert_eq!(vm, EntityId(0));
        assert_eq!(host, EntityId(1));
        assert_eq!(flow, EntityId(2));
        assert_eq!(db.entity(vm).unwrap().name, "vm-1");
        assert_eq!(db.entity_count(), 3);
        assert_eq!(db.entities_of_kind(EntityKind::Vm), vec![vm]);
        assert_eq!(db.entity_by_name("host-1").unwrap().id, host);
        assert!(db.entity(EntityId(99)).is_none());
    }

    #[test]
    fn neighbors_follow_associations() {
        let (db, vm, host, flow) = small_db();
        assert_eq!(db.neighbors(vm), vec![host, flow]);
        assert_eq!(db.neighbors(host), vec![vm]);
        assert_eq!(db.neighbors(flow), vec![vm]);
    }

    #[test]
    fn record_and_read_metrics() {
        let (mut db, vm, _, _) = small_db();
        db.record(vm, MetricKind::CpuUtil, 0, 10.0);
        db.record(vm, MetricKind::CpuUtil, 1, 20.0);
        let m = MetricId::new(vm, MetricKind::CpuUtil);
        assert_eq!(db.current_value(m), 20.0);
        assert_eq!(db.value_at(m, 0), 10.0);
        assert_eq!(db.value_at(m, 5), 0.0); // default imputation
        assert_eq!(db.metrics_of(vm), vec![MetricKind::CpuUtil]);
        assert_eq!(db.latest_tick(), 1);
    }

    #[test]
    fn missing_series_imputes_default() {
        let (db, vm, _, _) = small_db();
        let m = MetricId::new(vm, MetricKind::MemUtil);
        assert_eq!(db.current_value(m), 0.0);
        assert_eq!(db.value_at(m, 3), 0.0);
    }

    #[test]
    fn remove_entity_cleans_everything() {
        let (mut db, vm, host, flow) = small_db();
        db.record(vm, MetricKind::CpuUtil, 0, 50.0);
        db.tag_application("app", vm);
        db.remove_entity(vm);
        assert!(db.entity(vm).is_none());
        assert_eq!(db.entity_count(), 2);
        assert!(db.neighbors(host).is_empty());
        assert!(db.neighbors(flow).is_empty());
        assert!(db.series(MetricId::new(vm, MetricKind::CpuUtil)).is_none());
        assert!(db.application_members("app").is_empty());
        // Ids of the survivors are unchanged.
        assert_eq!(db.entity(host).unwrap().id, host);
    }

    #[test]
    fn remove_association_specific() {
        let (mut db, vm, host, _) = small_db();
        assert!(db.remove_association(host, vm, AssociationKind::RunsOn));
        assert!(!db.remove_association(host, vm, AssociationKind::RunsOn));
        assert!(!db.neighbors(host).contains(&vm));
        // Other associations survive.
        assert_eq!(db.associations().len(), 1);
    }

    #[test]
    fn remove_association_at_index() {
        let (mut db, vm, _, flow) = small_db();
        let removed = db.remove_association_at(1).unwrap();
        assert_eq!(removed.kind, AssociationKind::FlowDestination);
        assert!(!db.neighbors(vm).contains(&flow));
        assert!(db.remove_association_at(5).is_none());
    }

    #[test]
    fn applications_membership() {
        let (mut db, vm, host, _) = small_db();
        db.tag_application("shop", vm);
        db.tag_application("shop", host);
        db.tag_application("crm", vm);
        assert_eq!(db.application_members("shop"), vec![vm, host]);
        assert_eq!(db.applications_of(vm), vec!["crm", "shop"]);
        assert_eq!(db.applications(), vec!["crm", "shop"]);
        assert!(db.application_members("nope").is_empty());
    }

    #[test]
    fn remove_metric_series() {
        let (mut db, vm, _, _) = small_db();
        db.record(vm, MetricKind::CpuUtil, 0, 1.0);
        let m = MetricId::new(vm, MetricKind::CpuUtil);
        assert!(db.remove_metric(m));
        assert!(!db.remove_metric(m));
        assert!(db.series(m).is_none());
    }

    #[test]
    fn self_association_indexes_once() {
        let mut db = MonitoringDb::new(10);
        let e = db.add_entity(EntityKind::Vm, "self");
        db.relate(e, e, AssociationKind::Related);
        assert_eq!(db.associations_of(e).len(), 1);
        assert!(db.neighbors(e).is_empty()); // a self-loop is not a neighbor
    }
}
