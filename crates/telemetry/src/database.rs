//! The in-memory monitoring database.
//!
//! [`MonitoringDb`] is the reproduction's stand-in for an enterprise
//! observability platform (§2.1): it stores entities, their associations,
//! per-metric time series, and application membership tags ("all VMs of
//! application foo"). Murphy, the baselines, and the experiment harness
//! interact with the environment *only* through this API.
//!
//! Internally the database is **sharded** (see [`crate::shard`]): entities
//! and their metric series are partitioned across `EntityId mod N` shards
//! so bulk ingestion ([`MonitoringDb::record_batch`]) and training-window
//! column scans ([`MonitoringDb::scan_series`]) fan out over the shared
//! worker pool. Cross-entity state — associations, the adjacency index,
//! application tags, the configuration-change log — stays global here in
//! the facade. The shard count is a pure layout choice: every query
//! answers identically at 1 and N shards (pinned by
//! `tests/shard_parity.rs`).

use crate::association::{Association, AssociationKind};
use crate::changes::{ChangeKind, ChangeLog, ConfigChange};
use crate::entity::{Entity, EntityId, EntityKind};
use crate::metric::{MetricId, MetricKind};
use crate::shard::{map_as_pairs, shard_count_from_env, MetricSample, Shard};
use crate::timeseries::TimeSeries;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// Serialize the shard vector as a plain sequence of shards; on
/// deserialize, re-wrap in `Arc` and guarantee at least one shard so
/// `shard_of` never divides by zero (old snapshots and hand-written JSON
/// may omit the field or store an empty vector).
mod arc_shards {
    use super::Shard;
    use serde::de::{Deserialize, Deserializer};
    use serde::ser::Serializer;
    use std::sync::Arc;

    pub fn serialize<S>(shards: &[Arc<Shard>], serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer,
    {
        serializer.collect_seq(shards.iter().map(|s| s.as_ref()))
    }

    pub fn deserialize<'de, D>(deserializer: D) -> Result<Vec<Arc<Shard>>, D::Error>
    where
        D: Deserializer<'de>,
    {
        let plain: Vec<Shard> = Vec::deserialize(deserializer)?;
        let mut shards: Vec<Arc<Shard>> = plain.into_iter().map(Arc::new).collect();
        if shards.is_empty() {
            shards.push(Arc::new(Shard::default()));
        }
        Ok(shards)
    }
}

/// In-memory monitoring database.
///
/// Entity ids are dense (`0..next id`), which downstream graph code
/// exploits for vector indexing; removed entities simply vanish from
/// their shard while ids of the survivors stay stable under the Table 2
/// "missing entity" degradation (ids are never reused).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitoringDb {
    /// Per-entity state, partitioned by `EntityId mod shards.len()`.
    /// `Arc` so clones are shallow (copy-on-write via `Arc::make_mut`)
    /// and pool jobs can own a `'static` handle to a shard.
    #[serde(with = "arc_shards")]
    shards: Vec<Arc<Shard>>,
    /// Next entity id to hand out; ids are dense and never reused.
    next_entity: u32,
    associations: Vec<Association>,
    /// Adjacency index: entity → indices into `associations`. Serialized
    /// (as pairs — JSON map keys must be strings) so a deserialized
    /// database is query-ready.
    #[serde(with = "map_as_pairs")]
    adjacency: BTreeMap<EntityId, Vec<usize>>,
    /// Application tag → member entities (operator-defined apps, §2.1).
    applications: BTreeMap<String, BTreeSet<EntityId>>,
    /// Default interval for new series, seconds.
    pub interval_secs: u64,
    /// Configuration-change log (§4.2 edge cases).
    changes: ChangeLog,
}

impl Default for MonitoringDb {
    fn default() -> Self {
        Self::new(0)
    }
}

impl MonitoringDb {
    /// New empty database with the given metric interval; shard count
    /// comes from the environment (`MURPHY_SHARDS`, see
    /// [`shard_count_from_env`]).
    pub fn new(interval_secs: u64) -> Self {
        Self::with_shards(interval_secs, shard_count_from_env())
    }

    /// New empty database with an explicit shard count (clamped to at
    /// least 1). Shard count is fixed for the database's lifetime.
    pub fn with_shards(interval_secs: u64, shards: usize) -> Self {
        let shards = shards.clamp(1, 256);
        Self {
            shards: (0..shards).map(|_| Arc::new(Shard::default())).collect(),
            next_entity: 0,
            associations: Vec::new(),
            adjacency: BTreeMap::new(),
            applications: BTreeMap::new(),
            interval_secs,
            changes: ChangeLog::default(),
        }
    }

    /// Number of shards the per-entity state is partitioned across.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, id: EntityId) -> usize {
        id.index() % self.shards.len()
    }

    fn shard_mut(&mut self, id: EntityId) -> &mut Shard {
        let idx = self.shard_of(id);
        Arc::make_mut(&mut self.shards[idx])
    }

    fn shard(&self, id: EntityId) -> &Shard {
        &self.shards[self.shard_of(id)]
    }

    // ---- entities -------------------------------------------------------

    /// Register an entity; returns its id.
    pub fn add_entity(&mut self, kind: EntityKind, name: impl Into<String>) -> EntityId {
        let id = EntityId(self.next_entity);
        self.next_entity += 1;
        let entity = Entity {
            id,
            kind,
            name: name.into(),
        };
        self.shard_mut(id).entities.insert(id, entity);
        id
    }

    /// Look up an entity (None if unknown or removed).
    pub fn entity(&self, id: EntityId) -> Option<&Entity> {
        self.shard(id).entities.get(&id)
    }

    /// Number of live entities.
    pub fn entity_count(&self) -> usize {
        self.shards.iter().map(|s| s.entities.len()).sum()
    }

    /// Iterate live entities in id order.
    pub fn entities(&self) -> impl Iterator<Item = &Entity> {
        let mut all: Vec<&Entity> = self
            .shards
            .iter()
            .flat_map(|s| s.entities.values())
            .collect();
        all.sort_by_key(|e| e.id);
        all.into_iter()
    }

    /// Live entities of a given kind, in id order.
    pub fn entities_of_kind(&self, kind: EntityKind) -> Vec<EntityId> {
        self.entities()
            .filter(|e| e.kind == kind)
            .map(|e| e.id)
            .collect()
    }

    /// Find an entity by exact name (lowest id wins on duplicates).
    pub fn entity_by_name(&self, name: &str) -> Option<&Entity> {
        self.entities().find(|e| e.name == name)
    }

    /// Remove an entity along with its associations, series, and app tags
    /// (Table 2 "missing entity"). Ids of other entities are unaffected.
    pub fn remove_entity(&mut self, id: EntityId) {
        let shard = self.shard_mut(id);
        shard.entities.remove(&id);
        shard.series.retain(|m, _| m.entity != id);
        self.associations.retain(|a| !a.touches(id));
        self.rebuild_adjacency();
        for members in self.applications.values_mut() {
            members.remove(&id);
        }
    }

    // ---- associations ---------------------------------------------------

    /// Record an association between two (existing) entities.
    pub fn add_association(&mut self, assoc: Association) {
        let idx = self.associations.len();
        self.associations.push(assoc);
        self.adjacency.entry(assoc.a).or_default().push(idx);
        if assoc.b != assoc.a {
            self.adjacency.entry(assoc.b).or_default().push(idx);
        }
    }

    /// Convenience: undirected association.
    pub fn relate(&mut self, a: EntityId, b: EntityId, kind: AssociationKind) {
        self.add_association(Association::undirected(a, b, kind));
    }

    /// Convenience: directed association `a → b`.
    pub fn relate_directed(&mut self, a: EntityId, b: EntityId, kind: AssociationKind) {
        self.add_association(Association::directed(a, b, kind));
    }

    /// All associations.
    pub fn associations(&self) -> &[Association] {
        &self.associations
    }

    /// Associations touching an entity.
    pub fn associations_of(&self, id: EntityId) -> Vec<&Association> {
        match self.adjacency.get(&id) {
            Some(idxs) => idxs.iter().map(|&i| &self.associations[i]).collect(),
            None => Vec::new(),
        }
    }

    /// Distinct neighbor entities of `id` (either direction).
    pub fn neighbors(&self, id: EntityId) -> Vec<EntityId> {
        let mut out: Vec<EntityId> = self
            .associations_of(id)
            .iter()
            .filter_map(|a| a.other(id))
            .filter(|&n| n != id)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Remove one specific association (Table 2 "missing edge"). Returns
    /// true if an association between the endpoints with that kind existed.
    ///
    /// Matching candidates come from the adjacency index (`O(deg a)`
    /// instead of a scan of every association), and removal renumbers the
    /// index incrementally instead of rebuilding it from scratch.
    pub fn remove_association(&mut self, a: EntityId, b: EntityId, kind: AssociationKind) -> bool {
        // Every matching association touches `a`, so its adjacency list
        // contains all candidates.
        let hits: Vec<usize> = match self.adjacency.get(&a) {
            Some(idxs) => idxs
                .iter()
                .copied()
                .filter(|&i| {
                    let x = &self.associations[i];
                    x.kind == kind && ((x.a == a && x.b == b) || (x.a == b && x.b == a))
                })
                .collect(),
            None => Vec::new(),
        };
        if hits.is_empty() {
            return false;
        }
        self.remove_association_indices(hits);
        true
    }

    /// Remove the association at a given index (used by randomized
    /// degradation). Returns the removed association.
    pub fn remove_association_at(&mut self, index: usize) -> Option<Association> {
        if index >= self.associations.len() {
            return None;
        }
        let removed = self.associations[index];
        self.remove_association_indices(vec![index]);
        Some(removed)
    }

    /// Remove the associations at the given indices, compacting the
    /// association vector and renumbering the adjacency index in one pass
    /// over each structure (no full rebuild).
    fn remove_association_indices(&mut self, mut idxs: Vec<usize>) {
        idxs.sort_unstable();
        idxs.dedup();
        if idxs.is_empty() {
            return;
        }
        // remap[old index] = new index, or usize::MAX when removed.
        let old = std::mem::take(&mut self.associations);
        let mut remap: Vec<usize> = Vec::with_capacity(old.len());
        let mut next_removed = 0usize;
        for (i, assoc) in old.into_iter().enumerate() {
            if next_removed < idxs.len() && idxs[next_removed] == i {
                remap.push(usize::MAX);
                next_removed += 1;
            } else {
                remap.push(self.associations.len());
                self.associations.push(assoc);
            }
        }
        self.adjacency.retain(|_, list| {
            list.retain_mut(|idx| {
                let new = remap[*idx];
                *idx = new;
                new != usize::MAX
            });
            !list.is_empty()
        });
    }

    fn rebuild_adjacency(&mut self) {
        self.adjacency.clear();
        for (idx, assoc) in self.associations.iter().enumerate() {
            self.adjacency.entry(assoc.a).or_default().push(idx);
            if assoc.b != assoc.a {
                self.adjacency.entry(assoc.b).or_default().push(idx);
            }
        }
    }

    // ---- metrics --------------------------------------------------------

    /// Ensure a series exists for `(entity, kind)` and return it mutably.
    pub fn series_mut(&mut self, entity: EntityId, kind: MetricKind) -> &mut TimeSeries {
        let interval = self.interval_secs;
        self.shard_mut(entity)
            .series
            .entry(MetricId::new(entity, kind))
            .or_insert_with(|| TimeSeries::new(interval, 0))
    }

    /// Record a metric value at a tick.
    pub fn record(&mut self, entity: EntityId, kind: MetricKind, tick: u64, value: f64) {
        self.series_mut(entity, kind).set(tick, value);
    }

    /// Bulk-record a batch of samples; equivalent to calling
    /// [`MonitoringDb::record`] for each sample in order, but partitioned
    /// by shard and ingested with one pool job per shard. Within a shard,
    /// consecutive same-metric samples share one series-map probe, so
    /// metric-grouped batches (bootstrap loads) amortize the map lookups
    /// to one per metric.
    ///
    /// This is the ingestion fast path used by the simulators
    /// (`murphy-sim` flushes one batch per tick) and the `ingest` series
    /// of `repro bench`.
    pub fn record_batch(&mut self, samples: &[MetricSample]) {
        if samples.is_empty() {
            return;
        }
        let interval = self.interval_secs;
        if self.shards.len() == 1 {
            Arc::make_mut(&mut self.shards[0]).ingest(samples, interval);
            return;
        }
        let n = self.shards.len();
        let mut parts: Vec<Vec<MetricSample>> = vec![Vec::new(); n];
        for &s in samples {
            parts[self.shard_of(s.entity)].push(s);
        }
        // Move each shard (plus its partition) into a slot the pool jobs
        // take ownership from; jobs return the updated shards through the
        // result vector, which `run_indexed` delivers in index order.
        // Returning owned values — rather than unwrapping a shared Arc
        // afterwards — sidesteps the brief window where a worker still
        // holds the batch alive after `run_indexed` returns.
        let shards = std::mem::take(&mut self.shards);
        let slots: Arc<Vec<Mutex<Option<(Arc<Shard>, Vec<MetricSample>)>>>> = Arc::new(
            shards
                .into_iter()
                .zip(parts)
                .map(|pair| Mutex::new(Some(pair)))
                .collect(),
        );
        self.shards = murphy_pool::global().run_indexed(n, move |i| {
            let (mut shard, part) = slots[i]
                .lock()
                .expect("shard slot poisoned")
                .take()
                .expect("shard slot taken twice");
            if !part.is_empty() {
                Arc::make_mut(&mut shard).ingest(&part, interval);
            }
            shard
        });
    }

    /// Fetch the series for a metric, if present.
    pub fn series(&self, metric: MetricId) -> Option<&TimeSeries> {
        self.shard(metric.entity).series.get(&metric)
    }

    /// Apply `f` to each requested metric's series (or `None` when the
    /// metric has no data), fanning the scans out over the worker pool —
    /// one job per metric, each reading its entity's shard. Results come
    /// back in `ids` order regardless of thread count.
    ///
    /// This is the read-side counterpart of [`MonitoringDb::record_batch`]:
    /// online training extracts its per-metric window columns through it.
    pub fn scan_series<T, F>(&self, ids: Vec<MetricId>, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(MetricId, Option<&TimeSeries>) -> T + Send + Sync + 'static,
    {
        if ids.is_empty() {
            return Vec::new();
        }
        let shards: Vec<Arc<Shard>> = self.shards.clone();
        let nshards = shards.len();
        let n = ids.len();
        let ids = Arc::new(ids);
        murphy_pool::global().run_indexed(n, move |i| {
            let m = ids[i];
            let shard = &shards[m.entity.index() % nshards];
            f(m, shard.series.get(&m))
        })
    }

    /// Metric kinds with data for an entity.
    pub fn metrics_of(&self, entity: EntityId) -> Vec<MetricKind> {
        self.shard(entity)
            .series
            .keys()
            .filter(|m| m.entity == entity)
            .map(|m| m.kind)
            .collect()
    }

    /// All metric ids with data, in `(entity, kind)` order.
    pub fn all_metrics(&self) -> Vec<MetricId> {
        let mut all: Vec<MetricId> = self
            .shards
            .iter()
            .flat_map(|s| s.series.keys().copied())
            .collect();
        all.sort_unstable();
        all
    }

    /// Remove one metric's series entirely (Table 2 "missing metric").
    pub fn remove_metric(&mut self, metric: MetricId) -> bool {
        self.shard_mut(metric.entity).series.remove(&metric).is_some()
    }

    /// Current value of a metric (latest finite point), imputing the kind
    /// default when the series is missing or empty (§4.2 "Edge cases").
    pub fn current_value(&self, metric: MetricId) -> f64 {
        self.series(metric)
            .and_then(|s| s.last())
            .unwrap_or_else(|| metric.kind.default_value())
    }

    /// Value of a metric at a tick, with default imputation.
    pub fn value_at(&self, metric: MetricId, tick: u64) -> f64 {
        self.series(metric)
            .map(|s| s.at_or(tick, metric.kind.default_value()))
            .unwrap_or_else(|| metric.kind.default_value())
    }

    /// Latest tick with any data across all series ("now").
    pub fn latest_tick(&self) -> u64 {
        self.shards
            .iter()
            .filter_map(|s| s.latest_tick())
            .max()
            .unwrap_or(0)
    }

    // ---- configuration changes -------------------------------------------

    /// Record a configuration change.
    pub fn record_change(
        &mut self,
        entity: EntityId,
        kind: ChangeKind,
        tick: u64,
        detail: impl Into<String>,
    ) {
        self.changes.record(entity, kind, tick, detail);
    }

    /// Configuration changes at or after `since_tick`.
    pub fn recent_changes(&self, since_tick: u64) -> Vec<&ConfigChange> {
        self.changes.recent(since_tick)
    }

    /// The full change log.
    pub fn change_log(&self) -> &ChangeLog {
        &self.changes
    }

    // ---- applications ---------------------------------------------------

    /// Tag an entity as member of an application.
    pub fn tag_application(&mut self, app: impl Into<String>, entity: EntityId) {
        self.applications.entry(app.into()).or_default().insert(entity);
    }

    /// Members of an application (empty if unknown).
    pub fn application_members(&self, app: &str) -> Vec<EntityId> {
        self.applications
            .get(app)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// All application names.
    pub fn applications(&self) -> Vec<&str> {
        self.applications.keys().map(|s| s.as_str()).collect()
    }

    /// Applications a given entity belongs to.
    pub fn applications_of(&self, entity: EntityId) -> Vec<&str> {
        self.applications
            .iter()
            .filter(|(_, members)| members.contains(&entity))
            .map(|(name, _)| name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_db() -> (MonitoringDb, EntityId, EntityId, EntityId) {
        let mut db = MonitoringDb::new(10);
        let vm = db.add_entity(EntityKind::Vm, "vm-1");
        let host = db.add_entity(EntityKind::Host, "host-1");
        let flow = db.add_entity(EntityKind::Flow, "flow-1");
        db.relate(vm, host, AssociationKind::RunsOn);
        db.relate(flow, vm, AssociationKind::FlowDestination);
        (db, vm, host, flow)
    }

    #[test]
    fn entities_are_dense_and_lookupable() {
        let (db, vm, host, flow) = small_db();
        assert_eq!(vm, EntityId(0));
        assert_eq!(host, EntityId(1));
        assert_eq!(flow, EntityId(2));
        assert_eq!(db.entity(vm).unwrap().name, "vm-1");
        assert_eq!(db.entity_count(), 3);
        assert_eq!(db.entities_of_kind(EntityKind::Vm), vec![vm]);
        assert_eq!(db.entity_by_name("host-1").unwrap().id, host);
        assert!(db.entity(EntityId(99)).is_none());
    }

    #[test]
    fn neighbors_follow_associations() {
        let (db, vm, host, flow) = small_db();
        assert_eq!(db.neighbors(vm), vec![host, flow]);
        assert_eq!(db.neighbors(host), vec![vm]);
        assert_eq!(db.neighbors(flow), vec![vm]);
    }

    #[test]
    fn record_and_read_metrics() {
        let (mut db, vm, _, _) = small_db();
        db.record(vm, MetricKind::CpuUtil, 0, 10.0);
        db.record(vm, MetricKind::CpuUtil, 1, 20.0);
        let m = MetricId::new(vm, MetricKind::CpuUtil);
        assert_eq!(db.current_value(m), 20.0);
        assert_eq!(db.value_at(m, 0), 10.0);
        assert_eq!(db.value_at(m, 5), 0.0); // default imputation
        assert_eq!(db.metrics_of(vm), vec![MetricKind::CpuUtil]);
        assert_eq!(db.latest_tick(), 1);
    }

    #[test]
    fn missing_series_imputes_default() {
        let (db, vm, _, _) = small_db();
        let m = MetricId::new(vm, MetricKind::MemUtil);
        assert_eq!(db.current_value(m), 0.0);
        assert_eq!(db.value_at(m, 3), 0.0);
    }

    #[test]
    fn remove_entity_cleans_everything() {
        let (mut db, vm, host, flow) = small_db();
        db.record(vm, MetricKind::CpuUtil, 0, 50.0);
        db.tag_application("app", vm);
        db.remove_entity(vm);
        assert!(db.entity(vm).is_none());
        assert_eq!(db.entity_count(), 2);
        assert!(db.neighbors(host).is_empty());
        assert!(db.neighbors(flow).is_empty());
        assert!(db.series(MetricId::new(vm, MetricKind::CpuUtil)).is_none());
        assert!(db.application_members("app").is_empty());
        // Ids of the survivors are unchanged.
        assert_eq!(db.entity(host).unwrap().id, host);
    }

    #[test]
    fn remove_entity_leaves_no_dangling_associations() {
        // A hub entity with several edges: removal must purge every
        // association touching it and leave the adjacency index consistent
        // for all survivors (no stale indices into the compacted vector).
        let mut db = MonitoringDb::with_shards(10, 4);
        let hub = db.add_entity(EntityKind::Host, "hub");
        let mut others = Vec::new();
        for i in 0..5 {
            let e = db.add_entity(EntityKind::Vm, format!("vm-{i}"));
            db.relate(e, hub, AssociationKind::RunsOn);
            others.push(e);
        }
        db.relate(others[0], others[1], AssociationKind::Related);
        db.remove_entity(hub);
        assert!(db.associations().iter().all(|a| !a.touches(hub)));
        assert!(db.associations_of(hub).is_empty());
        for &e in &others {
            // Every surviving index must point at a live association that
            // really touches the entity.
            for a in db.associations_of(e) {
                assert!(a.touches(e));
            }
        }
        assert_eq!(db.neighbors(others[0]), vec![others[1]]);
        assert_eq!(db.associations().len(), 1);
    }

    #[test]
    fn entity_by_name_after_removal() {
        let (mut db, vm, _, _) = small_db();
        assert_eq!(db.entity_by_name("vm-1").unwrap().id, vm);
        db.remove_entity(vm);
        assert!(db.entity_by_name("vm-1").is_none());
        // A new entity may reuse the name (ids are never reused).
        let vm2 = db.add_entity(EntityKind::Vm, "vm-1");
        assert_ne!(vm2, vm);
        assert_eq!(db.entity_by_name("vm-1").unwrap().id, vm2);
    }

    #[test]
    fn value_at_missing_ticks() {
        let (mut db, vm, _, _) = small_db();
        // Series starts at tick 2 with a NaN gap at tick 3.
        db.record(vm, MetricKind::CpuUtil, 2, 30.0);
        db.record(vm, MetricKind::CpuUtil, 4, 40.0);
        let m = MetricId::new(vm, MetricKind::CpuUtil);
        assert_eq!(db.value_at(m, 1), 0.0); // before the series starts
        assert_eq!(db.value_at(m, 3), 0.0); // NaN gap inside the series
        assert_eq!(db.value_at(m, 4), 40.0);
        assert_eq!(db.value_at(m, 99), 0.0); // beyond the end
    }

    #[test]
    fn recent_changes_boundary_is_inclusive() {
        let (mut db, vm, _, _) = small_db();
        db.record_change(vm, ChangeKind::Reconfigured, 4, "before");
        db.record_change(vm, ChangeKind::Reconfigured, 5, "at");
        db.record_change(vm, ChangeKind::Reconfigured, 6, "after");
        let recent = db.recent_changes(5);
        let details: Vec<&str> = recent.iter().map(|c| c.detail.as_str()).collect();
        assert_eq!(details, vec!["at", "after"]);
        assert!(db.recent_changes(7).is_empty());
        assert_eq!(db.recent_changes(0).len(), 3);
    }

    #[test]
    fn remove_association_specific() {
        let (mut db, vm, host, _) = small_db();
        assert!(db.remove_association(host, vm, AssociationKind::RunsOn));
        assert!(!db.remove_association(host, vm, AssociationKind::RunsOn));
        assert!(!db.neighbors(host).contains(&vm));
        // Other associations survive.
        assert_eq!(db.associations().len(), 1);
    }

    #[test]
    fn remove_association_at_index() {
        let (mut db, vm, _, flow) = small_db();
        let removed = db.remove_association_at(1).unwrap();
        assert_eq!(removed.kind, AssociationKind::FlowDestination);
        assert!(!db.neighbors(vm).contains(&flow));
        assert!(db.remove_association_at(5).is_none());
    }

    #[test]
    fn removal_renumbers_adjacency_index() {
        // Regression: removing an association must renumber every other
        // entity's adjacency list so it still points at the right entries
        // of the compacted association vector.
        let mut db = MonitoringDb::with_shards(10, 3);
        let a = db.add_entity(EntityKind::Vm, "a");
        let b = db.add_entity(EntityKind::Vm, "b");
        let c = db.add_entity(EntityKind::Vm, "c");
        let d = db.add_entity(EntityKind::Vm, "d");
        db.relate(a, b, AssociationKind::Related); // idx 0
        db.relate(b, c, AssociationKind::Related); // idx 1
        db.relate(c, d, AssociationKind::Related); // idx 2
        db.relate(a, d, AssociationKind::Related); // idx 3
        assert!(db.remove_association(b, c, AssociationKind::Related));
        // Indices shifted down by one for former 2 and 3; queries through
        // the index must still resolve correctly for every entity.
        assert_eq!(db.neighbors(a), vec![b, d]);
        assert_eq!(db.neighbors(b), vec![a]);
        assert_eq!(db.neighbors(c), vec![d]);
        assert_eq!(db.neighbors(d), vec![a, c]);
        for &e in &[a, b, c, d] {
            for assoc in db.associations_of(e) {
                assert!(assoc.touches(e), "stale adjacency entry for {e:?}");
            }
        }
        // Removing a middle index then adding fresh edges keeps the index
        // append-consistent.
        db.remove_association_at(0);
        db.relate(b, d, AssociationKind::Related);
        assert_eq!(db.neighbors(b), vec![d]);
        assert_eq!(db.neighbors(d), vec![a, b, c]);
    }

    #[test]
    fn applications_membership() {
        let (mut db, vm, host, _) = small_db();
        db.tag_application("shop", vm);
        db.tag_application("shop", host);
        db.tag_application("crm", vm);
        assert_eq!(db.application_members("shop"), vec![vm, host]);
        assert_eq!(db.applications_of(vm), vec!["crm", "shop"]);
        assert_eq!(db.applications(), vec!["crm", "shop"]);
        assert!(db.application_members("nope").is_empty());
    }

    #[test]
    fn remove_metric_series() {
        let (mut db, vm, _, _) = small_db();
        db.record(vm, MetricKind::CpuUtil, 0, 1.0);
        let m = MetricId::new(vm, MetricKind::CpuUtil);
        assert!(db.remove_metric(m));
        assert!(!db.remove_metric(m));
        assert!(db.series(m).is_none());
    }

    #[test]
    fn self_association_indexes_once() {
        let mut db = MonitoringDb::new(10);
        let e = db.add_entity(EntityKind::Vm, "self");
        db.relate(e, e, AssociationKind::Related);
        assert_eq!(db.associations_of(e).len(), 1);
        assert!(db.neighbors(e).is_empty()); // a self-loop is not a neighbor
    }

    #[test]
    fn record_batch_matches_per_record_loop() {
        for shards in [1, 2, 4, 8] {
            let mut batched = MonitoringDb::with_shards(10, shards);
            let mut looped = MonitoringDb::with_shards(10, shards);
            let mut samples = Vec::new();
            for i in 0..12 {
                let e_b = batched.add_entity(EntityKind::Vm, format!("vm-{i}"));
                let e_l = looped.add_entity(EntityKind::Vm, format!("vm-{i}"));
                assert_eq!(e_b, e_l);
                for t in 0..20 {
                    let v = (i as f64) * 100.0 + t as f64;
                    samples.push(MetricSample::new(e_b, MetricKind::CpuUtil, t, v));
                    samples.push(MetricSample::new(e_b, MetricKind::MemUtil, t, -v));
                }
            }
            batched.record_batch(&samples);
            for s in &samples {
                looped.record(s.entity, s.kind, s.tick, s.value);
            }
            assert_eq!(batched.all_metrics(), looped.all_metrics());
            for m in batched.all_metrics() {
                for t in 0..20 {
                    assert_eq!(
                        batched.value_at(m, t).to_bits(),
                        looped.value_at(m, t).to_bits(),
                        "shards={shards} metric={m:?} tick={t}"
                    );
                }
            }
            assert_eq!(batched.latest_tick(), looped.latest_tick());
        }
    }

    #[test]
    fn scan_series_preserves_request_order() {
        let mut db = MonitoringDb::with_shards(10, 4);
        let ids: Vec<EntityId> = (0..9)
            .map(|i| db.add_entity(EntityKind::Vm, format!("vm-{i}")))
            .collect();
        for (i, &e) in ids.iter().enumerate() {
            db.record(e, MetricKind::CpuUtil, 0, i as f64);
        }
        // Request in reverse order, plus one missing metric.
        let mut request: Vec<MetricId> = ids
            .iter()
            .rev()
            .map(|&e| MetricId::new(e, MetricKind::CpuUtil))
            .collect();
        request.push(MetricId::new(ids[0], MetricKind::MemUtil));
        let got = db.scan_series(request, |_, series| series.and_then(|s| s.at(0)));
        let mut expected: Vec<Option<f64>> = (0..9).rev().map(|i| Some(i as f64)).collect();
        expected.push(None);
        assert_eq!(got, expected);
    }

    #[test]
    fn clone_is_copy_on_write() {
        let (mut db, vm, _, _) = small_db();
        db.record(vm, MetricKind::CpuUtil, 0, 1.0);
        let snapshot = db.clone();
        db.record(vm, MetricKind::CpuUtil, 1, 2.0);
        let m = MetricId::new(vm, MetricKind::CpuUtil);
        assert_eq!(snapshot.latest_tick(), 0);
        assert_eq!(db.latest_tick(), 1);
        assert_eq!(snapshot.value_at(m, 0), 1.0);
    }

    #[test]
    fn shard_count_is_explicit_and_clamped() {
        assert_eq!(MonitoringDb::with_shards(10, 0).shard_count(), 1);
        assert_eq!(MonitoringDb::with_shards(10, 4).shard_count(), 4);
        assert_eq!(MonitoringDb::with_shards(10, 10_000).shard_count(), 256);
    }
}
