//! Telemetry substrate for the Murphy reproduction.
//!
//! The paper's Murphy consumes passive telemetry from an enterprise
//! observability platform (§2.1): typed *entities* (VMs, hosts, containers,
//! NICs, flows, switch interfaces, datastores, services), per-entity metric
//! *time series* collected at fixed intervals, and *association* metadata
//! ("VM v1 is located on host h5 and has a TCP connection to v2").
//!
//! This crate is the stand-in for that platform:
//!
//! * [`entity`] — entity identifiers and the entity-kind taxonomy,
//! * [`metric`] — the metric taxonomy, with per-kind defaults and the
//!   conservative thresholds Murphy uses for labeling and pruning,
//! * [`timeseries`] — fixed-interval time series with window extraction,
//! * [`association`] — typed, optionally directed associations,
//! * [`database`] — [`database::MonitoringDb`], the queryable in-memory
//!   monitoring database everything else reads from,
//! * [`shard`] — the entity-partitioned storage behind the database,
//!   which lets bulk ingestion and training-window scans fan out over
//!   the shared worker pool,
//! * [`snapshot`] — aligned metric matrices for model training,
//! * [`changes`] — the configuration-change log surfaced next to a
//!   diagnosis (§4.2: "Murphy also presents all recent configuration
//!   changes to the operator"),
//! * [`degrade`] — the data-corruption operators of Table 2 (missing
//!   edge / entity / metric / historical values).
//!
//! Everything downstream — relationship-graph construction, Murphy's MRF,
//! the baselines, and the simulators — works exclusively through this API,
//! mirroring how the real system works only with commonly available
//! monitoring data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod association;
pub mod changes;
pub mod database;
pub mod degrade;
pub mod entity;
pub mod metric;
pub mod shard;
pub mod snapshot;
pub mod timeseries;

pub use association::{Association, AssociationKind, Directionality};
pub use changes::{ChangeKind, ChangeLog, ConfigChange};
pub use database::MonitoringDb;
pub use entity::{Entity, EntityId, EntityKind};
pub use metric::{MetricId, MetricKind};
pub use shard::{shard_count_from_env, MetricSample};
pub use snapshot::MetricMatrix;
pub use timeseries::TimeSeries;
