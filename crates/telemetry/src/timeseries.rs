//! Fixed-interval time series.
//!
//! The monitoring platform of §2.1 collects each metric "in intervals
//! within minutes". We model a series as a start tick, a fixed interval in
//! seconds, and a dense vector of values; a *tick* is the integer index of
//! an interval since the simulation epoch. Missing points are represented
//! as NaN internally and imputed on extraction.

use serde::{Deserialize, Serialize};

/// A fixed-interval metric time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Interval length in seconds (e.g. 10 for the microservice traces,
    /// 300 for the enterprise data set).
    pub interval_secs: u64,
    /// Tick index of `values[0]`.
    pub start_tick: u64,
    values: Vec<f64>,
}

impl TimeSeries {
    /// New empty series.
    pub fn new(interval_secs: u64, start_tick: u64) -> Self {
        Self {
            interval_secs,
            start_tick,
            values: Vec::new(),
        }
    }

    /// New series from existing values.
    pub fn from_values(interval_secs: u64, start_tick: u64, values: Vec<f64>) -> Self {
        Self {
            interval_secs,
            start_tick,
            values,
        }
    }

    /// Append a value for the next tick.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// First tick with data, if any.
    pub fn first_tick(&self) -> Option<u64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.start_tick)
        }
    }

    /// One past the last tick with data (exclusive end).
    pub fn end_tick(&self) -> u64 {
        self.start_tick + self.values.len() as u64
    }

    /// Value at an absolute tick, if stored and finite.
    pub fn at(&self, tick: u64) -> Option<f64> {
        if tick < self.start_tick {
            return None;
        }
        let idx = (tick - self.start_tick) as usize;
        self.values.get(idx).copied().filter(|v| v.is_finite())
    }

    /// Value at a tick, or `default` when missing — the §4.2 imputation.
    pub fn at_or(&self, tick: u64, default: f64) -> f64 {
        self.at(tick).unwrap_or(default)
    }

    /// Latest stored finite value, if any.
    pub fn last(&self) -> Option<f64> {
        self.values.iter().rev().copied().find(|v| v.is_finite())
    }

    /// Latest tick index that holds a finite value.
    pub fn last_tick(&self) -> Option<u64> {
        (0..self.values.len())
            .rev()
            .find(|&i| self.values[i].is_finite())
            .map(|i| self.start_tick + i as u64)
    }

    /// Extract the window `[from_tick, to_tick)` as a dense vector, filling
    /// missing or non-finite points with `default`.
    pub fn window(&self, from_tick: u64, to_tick: u64, default: f64) -> Vec<f64> {
        if to_tick <= from_tick {
            return Vec::new();
        }
        (from_tick..to_tick).map(|t| self.at_or(t, default)).collect()
    }

    /// Extract the window with *mean imputation*: missing points take the
    /// mean of the window's available points, falling back to `default`
    /// when fewer than `min_points` are available.
    ///
    /// Used for model training on degraded telemetry (Table 2's "missing
    /// values"): imputing a constant 0 into a series whose live values are
    /// large would (a) teach the factor a garbage relationship and (b)
    /// make every such entity look wildly anomalous against its own
    /// blanked history. Mean imputation preserves the metric's scale.
    pub fn window_mean_imputed(
        &self,
        from_tick: u64,
        to_tick: u64,
        default: f64,
        min_points: usize,
    ) -> Vec<f64> {
        if to_tick <= from_tick {
            return Vec::new();
        }
        let points: Vec<Option<f64>> = (from_tick..to_tick).map(|t| self.at(t)).collect();
        let finite: Vec<f64> = points.iter().flatten().copied().collect();
        let fill = if finite.len() >= min_points.max(1) {
            finite.iter().sum::<f64>() / finite.len() as f64
        } else {
            default
        };
        points.into_iter().map(|p| p.unwrap_or(fill)).collect()
    }

    /// Overwrite the value at an absolute tick (extending with NaN gaps if
    /// needed). Used by fault injectors and the degradation operators.
    pub fn set(&mut self, tick: u64, value: f64) {
        if tick < self.start_tick {
            // Prepend NaN gap.
            let gap = (self.start_tick - tick) as usize;
            let mut new_values = vec![f64::NAN; gap];
            new_values.extend_from_slice(&self.values);
            self.values = new_values;
            self.start_tick = tick;
            self.values[0] = value;
            return;
        }
        let idx = (tick - self.start_tick) as usize;
        if idx >= self.values.len() {
            self.values.resize(idx + 1, f64::NAN);
        }
        self.values[idx] = value;
    }

    /// Blank (set to NaN) every value strictly before `tick`. Used by the
    /// Table 2 "missing values" degradation, which removes historical data
    /// while keeping incident-time points.
    pub fn blank_before(&mut self, tick: u64) {
        for (i, v) in self.values.iter_mut().enumerate() {
            if self.start_tick + (i as u64) < tick {
                *v = f64::NAN;
            }
        }
    }

    /// Raw values (including NaN gaps); primarily for serialization/tests.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Aggregate consecutive points into buckets of `factor` points by
    /// averaging (the platform's "data older than a day is aggregated into
    /// longer time intervals"). NaN points are excluded from each bucket's
    /// average; all-NaN buckets stay NaN.
    pub fn aggregate(&self, factor: usize) -> TimeSeries {
        assert!(factor > 0, "aggregation factor must be positive");
        let mut out = Vec::with_capacity(self.values.len().div_ceil(factor));
        for chunk in self.values.chunks(factor) {
            let mut sum = 0.0;
            let mut n = 0usize;
            for &v in chunk {
                if v.is_finite() {
                    sum += v;
                    n += 1;
                }
            }
            out.push(if n == 0 { f64::NAN } else { sum / n as f64 });
        }
        TimeSeries {
            interval_secs: self.interval_secs * factor as u64,
            start_tick: self.start_tick / factor as u64,
            values: out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[f64]) -> TimeSeries {
        TimeSeries::from_values(10, 100, vals.to_vec())
    }

    #[test]
    fn push_and_at() {
        let mut ts = TimeSeries::new(10, 0);
        ts.push(1.0);
        ts.push(2.0);
        assert_eq!(ts.at(0), Some(1.0));
        assert_eq!(ts.at(1), Some(2.0));
        assert_eq!(ts.at(2), None);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn at_respects_start_tick() {
        let ts = series(&[1.0, 2.0, 3.0]);
        assert_eq!(ts.at(99), None);
        assert_eq!(ts.at(100), Some(1.0));
        assert_eq!(ts.at(102), Some(3.0));
        assert_eq!(ts.end_tick(), 103);
        assert_eq!(ts.first_tick(), Some(100));
    }

    #[test]
    fn window_fills_missing_with_default() {
        let ts = series(&[1.0, f64::NAN, 3.0]);
        let w = ts.window(99, 104, -1.0);
        assert_eq!(w, vec![-1.0, 1.0, -1.0, 3.0, -1.0]);
    }

    #[test]
    fn empty_window_for_inverted_range() {
        let ts = series(&[1.0]);
        assert!(ts.window(5, 5, 0.0).is_empty());
        assert!(ts.window(6, 5, 0.0).is_empty());
    }

    #[test]
    fn last_skips_nan() {
        let ts = series(&[1.0, 2.0, f64::NAN]);
        assert_eq!(ts.last(), Some(2.0));
        assert_eq!(ts.last_tick(), Some(101));
        let empty = TimeSeries::new(10, 0);
        assert_eq!(empty.last(), None);
        assert_eq!(empty.last_tick(), None);
    }

    #[test]
    fn set_extends_forward() {
        let mut ts = series(&[1.0]);
        ts.set(104, 9.0);
        assert_eq!(ts.at(104), Some(9.0));
        assert_eq!(ts.at(102), None); // NaN gap
        assert_eq!(ts.len(), 5);
    }

    #[test]
    fn set_extends_backward() {
        let mut ts = series(&[5.0]);
        ts.set(98, 1.0);
        assert_eq!(ts.start_tick, 98);
        assert_eq!(ts.at(98), Some(1.0));
        assert_eq!(ts.at(99), None);
        assert_eq!(ts.at(100), Some(5.0));
    }

    #[test]
    fn blank_before_keeps_recent() {
        let mut ts = series(&[1.0, 2.0, 3.0, 4.0]);
        ts.blank_before(102);
        assert_eq!(ts.at(100), None);
        assert_eq!(ts.at(101), None);
        assert_eq!(ts.at(102), Some(3.0));
        assert_eq!(ts.at(103), Some(4.0));
    }

    #[test]
    fn aggregate_averages_buckets() {
        let ts = TimeSeries::from_values(10, 0, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
        let agg = ts.aggregate(2);
        assert_eq!(agg.interval_secs, 20);
        assert_eq!(agg.values(), &[2.0, 6.0, 9.0]);
    }

    #[test]
    fn aggregate_handles_nan() {
        let ts = TimeSeries::from_values(10, 0, vec![1.0, f64::NAN, f64::NAN, f64::NAN]);
        let agg = ts.aggregate(2);
        assert_eq!(agg.values()[0], 1.0);
        assert!(agg.values()[1].is_nan());
    }
}
