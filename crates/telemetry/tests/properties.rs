//! Property-based tests for the telemetry substrate.

use murphy_telemetry::{
    AssociationKind, EntityKind, MetricKind, MonitoringDb, TimeSeries,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn timeseries_set_then_at_round_trips(
        writes in proptest::collection::vec((0u64..200, -1e6f64..1e6), 1..40)
    ) {
        let mut ts = TimeSeries::new(10, 50);
        for &(tick, value) in &writes {
            ts.set(tick, value);
        }
        // The last write at each tick wins.
        let mut last: std::collections::BTreeMap<u64, f64> = Default::default();
        for &(tick, value) in &writes {
            last.insert(tick, value);
        }
        for (&tick, &value) in &last {
            prop_assert_eq!(ts.at(tick), Some(value));
        }
        // Ticks never written are gaps.
        for probe in 0u64..200 {
            if !last.contains_key(&probe) {
                prop_assert_eq!(ts.at(probe), None);
            }
        }
    }

    #[test]
    fn window_length_matches_range(from in 0u64..100, len in 0u64..100) {
        let ts = TimeSeries::from_values(10, 20, (0..50).map(|i| i as f64).collect());
        let w = ts.window(from, from + len, -1.0);
        prop_assert_eq!(w.len(), len as usize);
    }

    #[test]
    fn mean_imputed_window_preserves_present_points(
        values in proptest::collection::vec(proptest::option::of(-1e3f64..1e3), 10..60)
    ) {
        let mut ts = TimeSeries::new(10, 0);
        for v in &values {
            ts.push(v.unwrap_or(f64::NAN));
        }
        let n = values.len() as u64;
        let w = ts.window_mean_imputed(0, n, 0.0, 4);
        prop_assert_eq!(w.len(), values.len());
        for (i, v) in values.iter().enumerate() {
            if let Some(x) = v {
                prop_assert!((w[i] - x).abs() < 1e-12);
            } else {
                prop_assert!(w[i].is_finite(), "gaps must be imputed with finite values");
            }
        }
    }

    #[test]
    fn aggregate_preserves_total_up_to_rounding(
        values in proptest::collection::vec(0.0f64..100.0, 4..40),
        factor in 1usize..5
    ) {
        let ts = TimeSeries::from_values(10, 0, values.clone());
        let agg = ts.aggregate(factor);
        // Each aggregated point is the mean of its bucket: the weighted sum
        // matches the original sum.
        let mut weighted = 0.0;
        for (i, &v) in agg.values().iter().enumerate() {
            let bucket = values.len().saturating_sub(i * factor).min(factor);
            weighted += v * bucket as f64;
        }
        let total: f64 = values.iter().sum();
        prop_assert!((weighted - total).abs() < 1e-6 * (1.0 + total.abs()));
    }

    #[test]
    fn db_neighbors_are_symmetric_for_undirected(
        edges in proptest::collection::vec((0usize..10, 0usize..10), 0..30)
    ) {
        let mut db = MonitoringDb::new(10);
        let ids: Vec<_> = (0..10)
            .map(|i| db.add_entity(EntityKind::Vm, format!("vm{i}")))
            .collect();
        for &(a, b) in &edges {
            if a != b {
                db.relate(ids[a], ids[b], AssociationKind::Related);
            }
        }
        for &a in &ids {
            for n in db.neighbors(a) {
                prop_assert!(db.neighbors(n).contains(&a), "neighbor asymmetry");
            }
        }
    }

    #[test]
    fn remove_entity_is_idempotent_and_complete(
        victim in 0usize..6,
        edges in proptest::collection::vec((0usize..6, 0usize..6), 0..15)
    ) {
        let mut db = MonitoringDb::new(10);
        let ids: Vec<_> = (0..6)
            .map(|i| db.add_entity(EntityKind::Vm, format!("vm{i}")))
            .collect();
        for &(a, b) in &edges {
            if a != b {
                db.relate(ids[a], ids[b], AssociationKind::Related);
            }
        }
        for &id in &ids {
            db.record(id, MetricKind::CpuUtil, 0, 1.0);
        }
        let v = ids[victim];
        db.remove_entity(v);
        db.remove_entity(v); // idempotent
        prop_assert!(db.entity(v).is_none());
        prop_assert!(db.neighbors(v).is_empty());
        prop_assert!(!db.associations().iter().any(|a| a.touches(v)));
        prop_assert!(db.metrics_of(v).is_empty());
        // Survivors keep their metrics.
        for &id in &ids {
            if id != v {
                prop_assert!(!db.metrics_of(id).is_empty());
            }
        }
    }

    #[test]
    fn clamp_is_idempotent_and_in_domain(kind_idx in 0usize..15, value in -1e9f64..1e9) {
        let kind = MetricKind::ALL[kind_idx];
        let once = kind.clamp(value);
        prop_assert_eq!(kind.clamp(once), once, "clamp must be idempotent");
        prop_assert!(once >= 0.0);
        if kind.is_percentage() {
            prop_assert!(once <= 100.0);
        }
    }
}
