//! Shard-parity suite: the shard count is an internal layout choice and
//! must never be observable through the query API.
//!
//! Every test drives the *same* operation sequence — entity/metric/
//! association mutations interleaved with removals and bulk ingests —
//! into databases built with 1, 2, 4, and 8 shards, then asserts that
//! every query surface (entities, neighbors, series values, latest tick,
//! snapshots, applications, change log) answers identically. The 1-shard
//! database is the reference semantics; N-shard databases must be
//! observationally equal to it.

use murphy_telemetry::{
    AssociationKind, EntityId, EntityKind, MetricId, MetricKind, MetricMatrix, MetricSample,
    MonitoringDb,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ASSOC_KINDS: [AssociationKind; 3] = [
    AssociationKind::Related,
    AssociationKind::RunsOn,
    AssociationKind::FlowDestination,
];

/// One step of a workload, phrased in *logical* indices (resolved against
/// the set of ids handed out so far, so the same program is meaningful on
/// every database it is replayed against).
#[derive(Debug, Clone)]
enum Op {
    AddEntity(usize),
    Record { e: usize, k: usize, tick: u64, value: f64 },
    Batch(Vec<(usize, usize, u64, f64)>),
    Relate { a: usize, b: usize, k: usize },
    RemoveEntity(usize),
    RemoveMetric { e: usize, k: usize },
    RemoveAssociation { a: usize, b: usize, k: usize },
    RemoveAssociationAt(usize),
    TagApp { app: usize, e: usize },
    RecordChange { e: usize, tick: u64 },
}

/// Replay a workload. Both databases see the exact same call sequence
/// because index resolution depends only on how many ids were handed out,
/// which is identical across shard counts.
fn apply(db: &mut MonitoringDb, ops: &[Op]) {
    let mut ids: Vec<EntityId> = Vec::new();
    let pick = |ids: &[EntityId], i: usize| ids[i % ids.len()];
    for op in ops {
        match *op {
            Op::AddEntity(k) => {
                let kind = EntityKind::ALL[k % EntityKind::ALL.len()];
                let id = db.add_entity(kind, format!("e{}", ids.len()));
                ids.push(id);
            }
            Op::Record { e, k, tick, value } if !ids.is_empty() => {
                let kind = MetricKind::ALL[k % MetricKind::ALL.len()];
                db.record(pick(&ids, e), kind, tick, value);
            }
            Op::Batch(ref samples) if !ids.is_empty() => {
                let batch: Vec<MetricSample> = samples
                    .iter()
                    .map(|&(e, k, tick, value)| {
                        let kind = MetricKind::ALL[k % MetricKind::ALL.len()];
                        MetricSample::new(pick(&ids, e), kind, tick, value)
                    })
                    .collect();
                db.record_batch(&batch);
            }
            Op::Relate { a, b, k } if !ids.is_empty() => {
                db.relate(pick(&ids, a), pick(&ids, b), ASSOC_KINDS[k % ASSOC_KINDS.len()]);
            }
            Op::RemoveEntity(e) if !ids.is_empty() => {
                db.remove_entity(pick(&ids, e));
            }
            Op::RemoveMetric { e, k } if !ids.is_empty() => {
                let kind = MetricKind::ALL[k % MetricKind::ALL.len()];
                db.remove_metric(MetricId::new(pick(&ids, e), kind));
            }
            Op::RemoveAssociation { a, b, k } if !ids.is_empty() => {
                db.remove_association(
                    pick(&ids, a),
                    pick(&ids, b),
                    ASSOC_KINDS[k % ASSOC_KINDS.len()],
                );
            }
            Op::RemoveAssociationAt(i) => {
                let len = db.associations().len();
                if len > 0 {
                    db.remove_association_at(i % len);
                }
            }
            Op::TagApp { app, e } if !ids.is_empty() => {
                db.tag_application(format!("app{}", app % 3), pick(&ids, e));
            }
            Op::RecordChange { e, tick } if !ids.is_empty() => {
                db.record_change(
                    pick(&ids, e),
                    murphy_telemetry::ChangeKind::Reconfigured,
                    tick,
                    "op",
                );
            }
            _ => {} // mutation on an empty database: skipped on both sides
        }
    }
}

/// Assert observational equality of every query surface. `a` is the
/// 1-shard reference.
fn assert_parity(a: &MonitoringDb, b: &MonitoringDb) {
    // Entities.
    assert_eq!(a.entity_count(), b.entity_count());
    let ea: Vec<_> = a.entities().cloned().collect();
    let eb: Vec<_> = b.entities().cloned().collect();
    assert_eq!(ea, eb, "entity iteration differs");
    for kind in EntityKind::ALL {
        assert_eq!(a.entities_of_kind(kind), b.entities_of_kind(kind));
    }
    for e in &ea {
        assert_eq!(a.entity_by_name(&e.name).map(|x| x.id), b.entity_by_name(&e.name).map(|x| x.id));
    }

    // Associations and adjacency-backed queries.
    assert_eq!(a.associations(), b.associations());
    for e in &ea {
        assert_eq!(a.neighbors(e.id), b.neighbors(e.id), "neighbors({})", e.id);
        let aa: Vec<_> = a.associations_of(e.id).into_iter().copied().collect();
        let ab: Vec<_> = b.associations_of(e.id).into_iter().copied().collect();
        assert_eq!(aa, ab, "associations_of({})", e.id);
    }

    // Metrics: same ids, same per-tick bits, same imputation behaviour.
    assert_eq!(a.all_metrics(), b.all_metrics());
    assert_eq!(a.latest_tick(), b.latest_tick());
    let horizon = a.latest_tick() + 2;
    for m in a.all_metrics() {
        assert_eq!(a.metrics_of(m.entity), b.metrics_of(m.entity));
        assert_eq!(
            a.current_value(m).to_bits(),
            b.current_value(m).to_bits(),
            "current_value({m:?})"
        );
        for t in 0..horizon {
            assert_eq!(
                a.value_at(m, t).to_bits(),
                b.value_at(m, t).to_bits(),
                "value_at({m:?}, {t})"
            );
        }
        let (sa, sb) = (a.series(m), b.series(m));
        assert_eq!(sa.is_some(), sb.is_some());
        if let (Some(sa), Some(sb)) = (sa, sb) {
            assert_eq!(sa.len(), sb.len(), "series length for {m:?}");
        }
    }

    // Snapshot extraction (training's aligned matrices).
    let metrics = a.all_metrics();
    let ma = MetricMatrix::extract(a, &metrics, 0, horizon);
    let mb = MetricMatrix::extract(b, &metrics, 0, horizon);
    assert_eq!(ma, mb, "snapshot matrices differ");

    // Applications and the change log.
    assert_eq!(a.applications(), b.applications());
    for app in a.applications() {
        assert_eq!(a.application_members(app), b.application_members(app));
    }
    for e in &ea {
        assert_eq!(a.applications_of(e.id), b.applications_of(e.id));
    }
    assert_eq!(a.change_log().len(), b.change_log().len());
    assert_eq!(a.recent_changes(0), b.recent_changes(0));
}

/// Replay `ops` at 1 vs 2/4/8 shards and demand parity.
fn check_parity(ops: &[Op]) {
    let mut reference = MonitoringDb::with_shards(10, 1);
    apply(&mut reference, ops);
    for shards in [2usize, 4, 8] {
        let mut sharded = MonitoringDb::with_shards(10, shards);
        assert_eq!(sharded.shard_count(), shards);
        apply(&mut sharded, ops);
        assert_parity(&reference, &sharded);
    }
}

/// Decode one packed tuple into an [`Op`] — shared by the proptest
/// strategies and the seeded randomized workload, so both explore the
/// same op space.
fn decode(sel: usize, a: usize, b: usize, tick: u64, value: f64) -> Op {
    match sel % 12 {
        // Weight entity creation and recording so workloads grow.
        0 | 1 => Op::AddEntity(a),
        2 | 3 => Op::Record { e: a, k: b, tick, value },
        4 => Op::Batch(
            (0..8)
                .map(|i| (a + i, b + i, tick + (i as u64 % 3), value + i as f64))
                .collect(),
        ),
        5 | 6 => Op::Relate { a, b, k: sel },
        7 => Op::RemoveEntity(a),
        8 => Op::RemoveMetric { e: a, k: b },
        9 => Op::RemoveAssociation { a, b, k: sel },
        10 => Op::RemoveAssociationAt(a),
        _ => {
            if a % 2 == 0 {
                Op::TagApp { app: b, e: a }
            } else {
                Op::RecordChange { e: a, tick }
            }
        }
    }
}

#[test]
fn randomized_workloads_are_shard_invariant() {
    // Seeded pseudo-random programs: long interleavings of growth,
    // ingestion, and all three removal flavours.
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
        let ops: Vec<Op> = (0..400)
            .map(|_| {
                decode(
                    rng.gen_range(0..12usize),
                    rng.gen_range(0..32usize),
                    rng.gen_range(0..32usize),
                    rng.gen_range(0..48u64),
                    rng.gen_range(-1e3..1e3),
                )
            })
            .collect();
        check_parity(&ops);
    }
}

#[test]
fn batch_heavy_workload_matches_per_record_reference() {
    // The same samples ingested via record_batch (sharded path) and via
    // the per-record loop (reference semantics) must agree bit-for-bit,
    // including overwrites at the same (metric, tick).
    let mut rng = StdRng::seed_from_u64(7);
    for shards in [1usize, 2, 4, 8] {
        let mut batched = MonitoringDb::with_shards(10, shards);
        let mut reference = MonitoringDb::with_shards(10, 1);
        let ids: Vec<EntityId> = (0..24)
            .map(|i| {
                let kind = EntityKind::ALL[i % EntityKind::ALL.len()];
                let a = batched.add_entity(kind, format!("e{i}"));
                let r = reference.add_entity(kind, format!("e{i}"));
                assert_eq!(a, r);
                a
            })
            .collect();
        for _round in 0..10 {
            let samples: Vec<MetricSample> = (0..300)
                .map(|_| {
                    MetricSample::new(
                        ids[rng.gen_range(0..ids.len())],
                        MetricKind::ALL[rng.gen_range(0..MetricKind::ALL.len())],
                        rng.gen_range(0..60u64),
                        rng.gen_range(-1e6..1e6),
                    )
                })
                .collect();
            batched.record_batch(&samples);
            for s in &samples {
                reference.record(s.entity, s.kind, s.tick, s.value);
            }
        }
        assert_parity(&reference, &batched);
    }
}

#[test]
fn empty_and_single_entity_edges() {
    // Degenerate workloads: nothing, removals on empty, one entity only.
    check_parity(&[]);
    check_parity(&[
        Op::RemoveEntity(0),
        Op::RemoveAssociationAt(3),
        Op::AddEntity(0),
        Op::Record { e: 0, k: 0, tick: 5, value: 1.5 },
        Op::RemoveMetric { e: 0, k: 0 },
        Op::RemoveEntity(0),
        Op::RemoveEntity(0),
    ]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_programs_are_shard_invariant(
        raw in proptest::collection::vec(
            (0usize..12, 0usize..32, 0usize..32, 0u64..48, -1e3f64..1e3),
            20..140,
        )
    ) {
        let ops: Vec<Op> = raw
            .iter()
            .map(|&(sel, a, b, tick, value)| decode(sel, a, b, tick, value))
            .collect();
        check_parity(&ops);
    }

    #[test]
    fn interleaved_removals_keep_adjacency_consistent(
        edges in proptest::collection::vec((0usize..10, 0usize..10, 0usize..3), 5..40),
        removals in proptest::collection::vec((0usize..10, 0usize..10, 0usize..3), 0..20)
    ) {
        let mut ops: Vec<Op> = (0..10).map(Op::AddEntity).collect();
        for &(a, b, k) in &edges {
            ops.push(Op::Relate { a, b, k });
        }
        for &(a, b, k) in &removals {
            ops.push(Op::RemoveAssociation { a, b, k });
        }
        check_parity(&ops);
    }
}
