//! The 13 scripted enterprise incidents (Table 1).
//!
//! The paper evaluates false positives on 13 real incidents from a large
//! enterprise. We mirror each row of Table 1 with a scripted scenario:
//! a generated enterprise, an injected causal chain from a ground-truth
//! root cause to the observed symptom, and a configurable number of *red
//! herrings* — entities elsewhere in the infrastructure whose metrics
//! rise in sync with the incident without being causally connected.
//! Red herrings are what separate the schemes: correlation-based rankers
//! (ExplainIt, NetMedic) report them; Murphy's counterfactual pass prunes
//! them (the paper calls this out for incidents 1, 3, 8 and 12).
//!
//! Incident 10 reproduces a subtlety the paper discusses: the operators
//! rebooted the affected nodes, so the *operator-decided ground truth* is
//! the nodes, while the injected cause is a pair of heavy flows — every
//! scheme that (correctly!) flags the flows is charged false positives.

use crate::enterprise::{generate, Enterprise, EnterpriseConfig};
use murphy_core::Symptom;
use murphy_graph::{build_from_seeds, BuildOptions};
use murphy_learn::model::gaussian;
use murphy_telemetry::{AssociationKind, EntityId, EntityKind, MetricId, MetricKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::scenario::Scenario;

/// Where the injected root cause lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootKind {
    /// An external heavy-hitter flow into the app (the Figure 1 pattern).
    Flow,
    /// A misbehaving VM inside the app.
    Vm,
    /// A shared physical host.
    Host,
    /// A switch interface dropping packets.
    SwitchPort,
    /// A datastore running hot.
    Datastore,
    /// The symptom entity itself (self-caused, e.g. a heap leak).
    SelfCaused,
}

/// Specification of one Table 1 incident.
#[derive(Debug, Clone, Copy)]
pub struct IncidentSpec {
    /// Row number in Table 1 (1-based).
    pub id: usize,
    /// The paper's description of the observed problem.
    pub description: &'static str,
    /// Root-cause placement.
    pub root: RootKind,
    /// Number of correlated-but-unrelated red herrings to plant.
    pub herrings: usize,
    /// When true, the operator ground truth is the *affected node* even
    /// though the injected cause is elsewhere (incident 10's reboot).
    pub operator_blames_node: bool,
}

/// The 13 incidents, in Table 1 order.
pub const TABLE1: [IncidentSpec; 13] = [
    IncidentSpec { id: 1, description: "Two apps nodes crashed due to a plugin", root: RootKind::Vm, herrings: 10, operator_blames_node: false },
    IncidentSpec { id: 2, description: "App returning a 502 error", root: RootKind::Flow, herrings: 1, operator_blames_node: false },
    IncidentSpec { id: 3, description: "App unavailable", root: RootKind::SwitchPort, herrings: 8, operator_blames_node: false },
    IncidentSpec { id: 4, description: "App slow, experiencing timeouts", root: RootKind::Datastore, herrings: 4, operator_blames_node: false },
    IncidentSpec { id: 5, description: "App unavailable", root: RootKind::Host, herrings: 1, operator_blames_node: false },
    IncidentSpec { id: 6, description: "App redirecting to a maintenance page", root: RootKind::Vm, herrings: 2, operator_blames_node: false },
    IncidentSpec { id: 7, description: "Heap memory issue with a node", root: RootKind::SelfCaused, herrings: 1, operator_blames_node: false },
    IncidentSpec { id: 8, description: "App performance degradation", root: RootKind::Host, herrings: 12, operator_blames_node: false },
    IncidentSpec { id: 9, description: "App failing with 503 error", root: RootKind::Vm, herrings: 1, operator_blames_node: false },
    IncidentSpec { id: 10, description: "Health check failing on 2 nodes", root: RootKind::Flow, herrings: 3, operator_blames_node: true },
    IncidentSpec { id: 11, description: "App redirecting to a maintenance page", root: RootKind::Vm, herrings: 4, operator_blames_node: false },
    IncidentSpec { id: 12, description: "Slowness in loading data", root: RootKind::Datastore, herrings: 10, operator_blames_node: false },
    IncidentSpec { id: 13, description: "Performance alert about a node exceeding thresholds", root: RootKind::SelfCaused, herrings: 0, operator_blames_node: false },
];

/// Amplitude (in metric units) of the incident rise for a metric kind.
fn incident_amplitude(kind: MetricKind) -> f64 {
    match kind {
        MetricKind::DropRate => 3.0,
        MetricKind::SessionCount => 400.0,
        MetricKind::Throughput => 3000.0,
        _ => 55.0, // utilization-like
    }
}

/// Pre-incident baseline for a metric kind (below its threshold).
fn baseline(kind: MetricKind) -> f64 {
    match kind {
        MetricKind::DropRate => 0.02,
        MetricKind::SessionCount => 20.0,
        MetricKind::Throughput => 300.0,
        _ => 12.0,
    }
}

/// Write a coupled incident signal for (entity, metric): a shared carrier
/// wiggle plus the incident ramp, scaled by `weight`.
#[allow(clippy::too_many_arguments)]
fn write_signal(
    db: &mut murphy_telemetry::MonitoringDb,
    entity: EntityId,
    metric: MetricKind,
    carrier_phase: f64,
    weight: f64,
    ticks: u64,
    incident_start: u64,
    rng: &mut StdRng,
) {
    let base = baseline(metric);
    let amp = incident_amplitude(metric);
    for t in 0..ticks {
        let carrier = ((t as f64) * 0.17 + carrier_phase).sin() * 0.18 + 0.2;
        let ramp = if t >= incident_start {
            let progress = (t - incident_start) as f64 / 8.0;
            progress.min(1.0)
        } else {
            0.0
        };
        let value = base + amp * weight * (carrier + ramp) + gaussian(rng) * amp * 0.02;
        db.record(entity, metric, t, metric.clamp(value));
    }
}

/// Build one incident scenario.
pub fn build_incident(spec: IncidentSpec, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ (spec.id as u64) << 8);
    let config = EnterpriseConfig::small(seed ^ 0xE17);
    let Enterprise { mut db, apps, hosts, .. } = generate(&config);
    let ticks = config.ticks;
    let incident_start = ticks - 40;

    let affected_app = &apps[0];
    let web = affected_app.web[0];
    let app_vm = affected_app.app[0];
    let db_vm = affected_app.db[0];

    // --- root cause and causal chain -----------------------------------
    // Chain entities from root to symptom; each gets a coupled signal with
    // decreasing weight (the influence attenuates along the chain).
    let (root_entity, chain, symptom_entity, symptom_metric): (
        EntityId,
        Vec<(EntityId, MetricKind)>,
        EntityId,
        MetricKind,
    ) = match spec.root {
        RootKind::Flow => {
            // Figure 1: crawler VM sends a heavy flow into the web tier;
            // load cascades to the backend's CPU.
            let crawler = db.add_entity(EntityKind::Vm, "crawler");
            let flow = db.add_entity(EntityKind::Flow, "crawler→web");
            db.relate(flow, crawler, AssociationKind::FlowSource);
            db.relate(flow, web, AssociationKind::FlowDestination);
            let chain = vec![
                (flow, MetricKind::SessionCount),
                (web, MetricKind::NetRx),
                (affected_app.flows[0], MetricKind::Throughput),
                (app_vm, MetricKind::CpuUtil),
                (db_vm, MetricKind::CpuUtil),
            ];
            (flow, chain, db_vm, MetricKind::CpuUtil)
        }
        RootKind::Vm => {
            let chain = vec![
                (web, MetricKind::CpuUtil),
                (affected_app.flows[0], MetricKind::Throughput),
                (app_vm, MetricKind::CpuUtil),
            ];
            (web, chain, app_vm, MetricKind::CpuUtil)
        }
        RootKind::Host => {
            // The host under the app VM saturates (noisy neighbour).
            let host = db
                .neighbors(app_vm)
                .into_iter()
                .find(|&e| db.entity(e).map(|x| x.kind) == Some(EntityKind::Host))
                .unwrap_or(hosts[0]);
            let chain = vec![(host, MetricKind::CpuUtil), (app_vm, MetricKind::CpuUtil)];
            (host, chain, app_vm, MetricKind::CpuUtil)
        }
        RootKind::SwitchPort => {
            // The port under the web VM's host drops packets.
            let host = db
                .neighbors(web)
                .into_iter()
                .find(|&e| db.entity(e).map(|x| x.kind) == Some(EntityKind::Host))
                .unwrap_or(hosts[0]);
            // host → pnic → port
            let pnic = db
                .neighbors(host)
                .into_iter()
                .find(|&e| db.entity(e).map(|x| x.kind) == Some(EntityKind::PhysicalNic))
                .expect("host has a pNIC");
            let port = db
                .neighbors(pnic)
                .into_iter()
                .find(|&e| db.entity(e).map(|x| x.kind) == Some(EntityKind::SwitchInterface))
                .expect("pNIC attaches to a port");
            let chain = vec![
                (port, MetricKind::DropRate),
                (pnic, MetricKind::DropRate),
                (host, MetricKind::DropRate),
                (web, MetricKind::DropRate),
            ];
            (port, chain, web, MetricKind::DropRate)
        }
        RootKind::Datastore => {
            let ds = db.add_entity(EntityKind::Datastore, "datastore0");
            db.relate(db_vm, ds, AssociationKind::BackedBy);
            let chain = vec![(ds, MetricKind::DiskUtil), (db_vm, MetricKind::DiskUtil)];
            (ds, chain, db_vm, MetricKind::DiskUtil)
        }
        RootKind::SelfCaused => {
            let chain = vec![(app_vm, MetricKind::MemUtil)];
            (app_vm, chain, app_vm, MetricKind::MemUtil)
        }
    };

    let carrier = rng.gen_range(0.0..6.28);
    for (i, &(entity, metric)) in chain.iter().enumerate() {
        let weight = 1.0 - 0.08 * i as f64;
        write_signal(
            &mut db,
            entity,
            metric,
            carrier,
            weight,
            ticks,
            incident_start,
            &mut rng,
        );
    }

    // --- ambient in-app load rise ----------------------------------------
    // Incidents rarely happen in a quiet system: the affected app's other
    // entities also run hotter during the window (users retry, queues
    // back up). These entities are hot *and* correlated with the symptom
    // but causally innocent — they are what populates the shared candidate
    // space with the false positives the correlation-based baselines
    // report (§6.2: "many false positive root cause entities that were
    // highly correlated with the problem").
    let chain_entities: Vec<EntityId> = chain.iter().map(|&(e, _)| e).collect();
    for member in db.application_members(&affected_app.name) {
        if chain_entities.contains(&member) || member == symptom_entity {
            continue;
        }
        for kind in db.metrics_of(member) {
            let series = db.series(MetricId::new(member, kind)).cloned();
            if let Some(series) = series {
                let mut boosted = series.clone();
                for t in incident_start..ticks {
                    if let Some(v) = series.at(t) {
                        let progress = ((t - incident_start) as f64 / 8.0).min(1.0);
                        boosted.set(t, kind.clamp(v * (1.0 + 1.2 * progress)));
                    }
                }
                *db.series_mut(member, kind) = boosted;
            }
        }
    }

    // --- red herrings ----------------------------------------------------
    // Entities in *other* apps rise in sync with the incident (same ramp,
    // different carrier) without a causal link to the symptom chain.
    let mut herring_pool: Vec<EntityId> = apps
        .iter()
        .skip(1)
        .flat_map(|a| a.vms())
        .collect();
    for h in 0..spec.herrings.min(herring_pool.len()) {
        let idx = rng.gen_range(0..herring_pool.len());
        let herring = herring_pool.swap_remove(idx);
        // Nearly the same carrier as the causal chain: herrings are
        // *highly* correlated with the problem (the paper observes
        // NetMedic and ExplainIt reporting exactly these), they just have
        // no causal connection to it.
        let phase = carrier + rng.gen_range(-0.25..0.25);
        write_signal(
            &mut db,
            herring,
            MetricKind::CpuUtil,
            phase,
            0.8 + 0.02 * h as f64,
            ticks,
            incident_start,
            &mut rng,
        );
    }

    // --- assemble ---------------------------------------------------------
    // Seed the graph the way the paper does for incidents: all entities of
    // the affected application, expanded four hops (§5.1.1).
    let symptom = Symptom::high(symptom_entity, symptom_metric);
    let mut seeds = db.application_members(&affected_app.name);
    seeds.push(symptom_entity);
    let graph = build_from_seeds(&db, &seeds, BuildOptions::four_hops());
    let ground_truth = if spec.operator_blames_node {
        vec![symptom_entity]
    } else {
        vec![root_entity]
    };
    Scenario {
        name: format!("incident{}: {}", spec.id, spec.description),
        db,
        graph,
        symptom,
        ground_truth,
        relaxed_truth: Vec::new(),
        incident_start_tick: incident_start,
    }
}

/// Build all 13 Table 1 incidents.
pub fn table1_scenarios(seed: u64) -> Vec<(IncidentSpec, Scenario)> {
    TABLE1
        .iter()
        .map(|&spec| (spec, build_incident(spec, seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;


    #[test]
    fn all_13_incidents_build() {
        for &spec in &TABLE1 {
            let s = build_incident(spec, 1);
            assert!(s.graph.node_count() > 10, "{}: graph too small", s.name);
            assert!(s.graph.contains(s.symptom.entity), "{}", s.name);
            assert_eq!(s.ground_truth.len(), 1);
            // Symptom metric is elevated at diagnosis time vs before.
            let now = s.db.current_value(s.symptom.metric_id());
            let before = s.db.value_at(s.symptom.metric_id(), 10);
            assert!(
                now > before,
                "{}: symptom must be elevated (now {now}, before {before})",
                s.name
            );
        }
    }

    #[test]
    fn incident2_is_the_crawler_story() {
        let spec = TABLE1[1];
        assert_eq!(spec.id, 2);
        let s = build_incident(spec, 3);
        let rc = s.ground_truth[0];
        let e = s.db.entity(rc).unwrap();
        assert_eq!(e.kind, EntityKind::Flow);
        assert!(e.name.contains("crawler"));
        // The flow's session count is a heavy hitter at diagnosis time.
        let sessions = s.db.current_value(MetricId::new(rc, MetricKind::SessionCount));
        assert!(sessions > MetricKind::SessionCount.threshold());
    }

    #[test]
    fn incident10_ground_truth_is_the_node_not_the_flow() {
        let spec = TABLE1[9];
        assert_eq!(spec.id, 10);
        assert!(spec.operator_blames_node);
        let s = build_incident(spec, 4);
        let rc = s.ground_truth[0];
        assert_eq!(rc, s.symptom.entity);
        assert_ne!(s.db.entity(rc).unwrap().kind, EntityKind::Flow);
    }

    #[test]
    fn ground_truth_is_reachable_in_graph() {
        for &spec in &TABLE1 {
            let s = build_incident(spec, 7);
            let rc = s.ground_truth[0];
            assert!(
                s.graph.contains(rc),
                "incident {}: root cause not in graph",
                spec.id
            );
            // A path root-cause → symptom must exist for diagnosability.
            let sp = murphy_graph::ShortestPathSubgraph::compute(&s.graph, rc, s.symptom.entity);
            assert!(sp.is_some(), "incident {}: no path to symptom", spec.id);
        }
    }

    #[test]
    fn herrings_are_correlated_with_symptom() {
        // Incident 8 plants 12 herrings; at least some other-app VM must
        // correlate strongly with the symptom series.
        let s = build_incident(TABLE1[7], 5);
        let symptom_series = s
            .db
            .series(s.symptom.metric_id())
            .unwrap()
            .window(0, 240, 0.0);
        let mut max_corr: f64 = 0.0;
        for app_name in s.db.applications() {
            if s.db
                .application_members(app_name)
                .contains(&s.symptom.entity)
            {
                continue; // skip the affected app
            }
            for e in s.db.application_members(app_name) {
                if let Some(series) = s.db.series(MetricId::new(e, MetricKind::CpuUtil)) {
                    let w = series.window(0, 240, 0.0);
                    max_corr = max_corr.max(murphy_stats::pearson(&w, &symptom_series));
                }
            }
        }
        assert!(max_corr > 0.5, "no correlated herring found ({max_corr})");
    }

    #[test]
    fn incident_graphs_have_many_cycles() {
        // §2.2: the incident relationship graphs are cycle-dense.
        let s = build_incident(TABLE1[0], 2);
        let stats = murphy_graph::CycleStats::count(&s.graph);
        assert!(stats.len2 > 20, "len2 = {}", stats.len2);
    }
}
