//! Open-loop workload generation.
//!
//! The paper drives its microservice apps with wrk2, an *open-loop*
//! generator: requests arrive at a configured rate regardless of how the
//! system responds (so saturation shows up as latency, not as reduced
//! load). A [`Schedule`] is a base rate plus windows of extra rate; a
//! [`Workload`] maps each entry service to a schedule.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A rate window: extra requests/second during `[start_tick, end_tick)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateWindow {
    /// First tick of the window (inclusive).
    pub start_tick: u64,
    /// One past the last tick (exclusive).
    pub end_tick: u64,
    /// Added requests per second during the window.
    pub extra_rps: f64,
}

/// An open-loop request schedule for one client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Baseline requests per second.
    pub base_rps: f64,
    /// Relative jitter (std dev as a fraction of the rate).
    pub jitter: f64,
    /// Slow sinusoidal modulation amplitude (fraction of base) — makes
    /// training data informative rather than flat.
    pub modulation: f64,
    /// Extra-rate windows (spikes).
    pub windows: Vec<RateWindow>,
}

impl Schedule {
    /// Constant rate with mild jitter and modulation.
    pub fn steady(base_rps: f64) -> Self {
        Self {
            base_rps,
            jitter: 0.05,
            modulation: 0.3,
            windows: Vec::new(),
        }
    }

    /// Add a spike window.
    pub fn with_spike(mut self, start_tick: u64, end_tick: u64, extra_rps: f64) -> Self {
        self.windows.push(RateWindow {
            start_tick,
            end_tick,
            extra_rps,
        });
        self
    }

    /// The deterministic (pre-jitter) rate at a tick.
    pub fn mean_rate(&self, tick: u64) -> f64 {
        let mut rate = self.base_rps * (1.0 + self.modulation * ((tick as f64) * 0.13).sin());
        for w in &self.windows {
            if tick >= w.start_tick && tick < w.end_tick {
                rate += w.extra_rps;
            }
        }
        rate.max(0.0)
    }

    /// Sampled rate at a tick (mean rate + Gaussian jitter).
    pub fn rate_at<R: Rng>(&self, tick: u64, rng: &mut R) -> f64 {
        let mean = self.mean_rate(tick);
        let noise = murphy_learn::model::gaussian(rng) * self.jitter * self.base_rps;
        (mean + noise).max(0.0)
    }
}

/// A workload: one schedule per entry-service index.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Workload {
    /// `(entry_service_index, schedule)` pairs.
    pub clients: Vec<(usize, Schedule)>,
}

impl Workload {
    /// Empty workload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a client driving an entry service.
    pub fn with_client(mut self, entry: usize, schedule: Schedule) -> Self {
        self.clients.push((entry, schedule));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn steady_schedule_hovers_around_base() {
        let s = Schedule::steady(100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let rates: Vec<f64> = (0..200).map(|t| s.rate_at(t, &mut rng)).collect();
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!((mean - 100.0).abs() < 15.0, "mean = {mean}");
        assert!(rates.iter().all(|&r| r >= 0.0));
    }

    #[test]
    fn spike_window_raises_rate_only_inside() {
        let s = Schedule::steady(50.0).with_spike(100, 120, 500.0);
        assert!(s.mean_rate(99) < 100.0);
        assert!(s.mean_rate(100) > 400.0);
        assert!(s.mean_rate(119) > 400.0);
        assert!(s.mean_rate(120) < 100.0);
    }

    #[test]
    fn overlapping_spikes_accumulate() {
        let s = Schedule::steady(10.0)
            .with_spike(0, 10, 100.0)
            .with_spike(5, 15, 100.0);
        assert!(s.mean_rate(7) > 200.0);
        assert!(s.mean_rate(2) < 150.0);
    }

    #[test]
    fn rate_never_negative() {
        let s = Schedule {
            base_rps: 1.0,
            jitter: 10.0, // absurd jitter
            modulation: 0.0,
            windows: vec![],
        };
        let mut rng = StdRng::seed_from_u64(2);
        for t in 0..100 {
            assert!(s.rate_at(t, &mut rng) >= 0.0);
        }
    }

    #[test]
    fn workload_builder() {
        let w = Workload::new()
            .with_client(0, Schedule::steady(10.0))
            .with_client(1, Schedule::steady(20.0));
        assert_eq!(w.clients.len(), 2);
        assert_eq!(w.clients[1].0, 1);
    }
}
