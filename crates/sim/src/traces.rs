//! Scenario trace export/import.
//!
//! The paper published its DeathStarBench traces; this module mirrors that
//! by serializing complete scenarios — monitoring database, symptom,
//! ground truth — as JSON files that a downstream user (or the CLI) can
//! load and diagnose without re-running the emulator.

use crate::scenario::Scenario;
use murphy_core::Symptom;
use murphy_graph::{build_from_seeds, BuildOptions};
use murphy_telemetry::{EntityId, MonitoringDb};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// The on-disk form of a scenario. The relationship graph is *not*
/// stored — it is derived data, rebuilt from the database on load (and
/// that also exercises the §4.1 construction on every import).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceFile {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Scenario name.
    pub name: String,
    /// The monitoring database.
    pub db: MonitoringDb,
    /// The problematic symptom.
    pub symptom: Symptom,
    /// Ground-truth root causes.
    pub ground_truth: Vec<EntityId>,
    /// Relaxed-credit entities (§6.1), possibly empty.
    pub relaxed_truth: Vec<EntityId>,
    /// Tick at which the main incident starts.
    pub incident_start_tick: u64,
}

/// Current trace format version.
pub const TRACE_VERSION: u32 = 1;

impl TraceFile {
    /// Capture a scenario.
    pub fn from_scenario(scenario: &Scenario) -> Self {
        Self {
            version: TRACE_VERSION,
            name: scenario.name.clone(),
            db: scenario.db.clone(),
            symptom: scenario.symptom,
            ground_truth: scenario.ground_truth.clone(),
            relaxed_truth: scenario.relaxed_truth.clone(),
            incident_start_tick: scenario.incident_start_tick,
        }
    }

    /// Reconstruct the scenario, rebuilding the relationship graph from
    /// the symptom entity.
    pub fn into_scenario(self) -> Scenario {
        let graph = build_from_seeds(&self.db, &[self.symptom.entity], BuildOptions::default());
        Scenario {
            name: self.name,
            graph,
            db: self.db,
            symptom: self.symptom,
            ground_truth: self.ground_truth,
            relaxed_truth: self.relaxed_truth,
            incident_start_tick: self.incident_start_tick,
        }
    }
}

/// Save a scenario as pretty JSON.
pub fn save(scenario: &Scenario, path: &Path) -> io::Result<()> {
    let trace = TraceFile::from_scenario(scenario);
    let json = serde_json::to_string(&trace)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Load a scenario from a JSON trace file.
pub fn load(path: &Path) -> io::Result<Scenario> {
    let json = std::fs::read_to_string(path)?;
    let trace: TraceFile =
        serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if trace.version != TRACE_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {}", trace.version),
        ));
    }
    Ok(trace.into_scenario())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultKind;
    use crate::scenario::{FaultPlan, ScenarioBuilder};

    fn scenario() -> Scenario {
        ScenarioBuilder::hotel_reservation(31)
            .with_fault(FaultPlan::contention(FaultKind::Cpu, 1.2))
            .with_ticks(80)
            .build()
    }

    #[test]
    fn save_load_round_trip() {
        let s = scenario();
        let dir = std::env::temp_dir().join("murphy-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        save(&s, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.name, s.name);
        assert_eq!(loaded.ground_truth, s.ground_truth);
        assert_eq!(loaded.symptom, s.symptom);
        assert_eq!(loaded.incident_start_tick, s.incident_start_tick);
        assert_eq!(loaded.db.entity_count(), s.db.entity_count());
        // The graph is rebuilt and covers the same entities.
        assert_eq!(loaded.graph.node_count(), s.graph.node_count());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let s = scenario();
        let mut trace = TraceFile::from_scenario(&s);
        trace.version = 999;
        let dir = std::env::temp_dir().join("murphy-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad-version.json");
        std::fs::write(&path, serde_json::to_string(&trace).unwrap()).unwrap();
        let err = load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let dir = std::env::temp_dir().join("murphy-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(load(Path::new("/nonexistent/murphy.json")).is_err());
    }
}
