//! Discrete-time microservice emulation.
//!
//! A stand-in for the paper's DeathStarBench deployments: explicit service
//! call graphs, one container per service, M/M/1-flavoured queueing per
//! container, and metric collection at fixed (10 s) intervals into a
//! [`MonitoringDb`]. The emulator produces exactly the causal couplings
//! the diagnosis experiments need:
//!
//! * request load propagates *down* the call graph (caller → callee),
//! * latency propagates *up* it (callee → caller),
//! * container saturation (from load or injected faults) inflates the
//!   resident service's latency and, transitively, every upstream
//!   client's observed latency.
//!
//! Two topology constructors match the paper's apps in service/entity
//! counts: [`MicroserviceTopology::hotel_reservation`] (8 services, 16
//! entities) and [`MicroserviceTopology::social_network`] (24 services,
//! 57 entities including per-node infra).

use crate::faults::ContentionFault;
use crate::workload::Workload;
use murphy_learn::model::gaussian;
use murphy_telemetry::{AssociationKind, EntityId, EntityKind, MetricKind, MonitoringDb};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One service definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceDef {
    /// Service name (e.g. `"geo"`).
    pub name: String,
    /// Base processing latency in ms at zero load.
    pub base_latency_ms: f64,
    /// CPU utilization points consumed per request/second.
    pub cpu_per_req: f64,
    /// Indices of downstream services this service calls.
    pub callees: Vec<usize>,
}

/// A microservice application topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroserviceTopology {
    /// Application name.
    pub name: String,
    /// Services, indexed by position.
    pub services: Vec<ServiceDef>,
    /// Indices of user-facing entry services.
    pub entries: Vec<usize>,
    /// Number of hosts/nodes the containers spread over (0 = no host
    /// entities, as in the paper's single-node social-network setup where
    /// 57 entities are services + containers + per-service network pieces).
    pub num_hosts: usize,
}

fn svc(name: &str, base_latency_ms: f64, cpu_per_req: f64, callees: &[usize]) -> ServiceDef {
    ServiceDef {
        name: name.to_string(),
        base_latency_ms,
        cpu_per_req,
        callees: callees.to_vec(),
    }
}

impl MicroserviceTopology {
    /// The hotel-reservation app: 8 services, two user-facing endpoints
    /// (search and reserve) sharing the `rate` and `profile` backends —
    /// the sharing is what makes the §6.1 interference scenario possible.
    /// With one container per service: 16 relationship-graph entities.
    pub fn hotel_reservation() -> Self {
        // Index map:
        // 0 frontend-search, 1 frontend-reserve, 2 search, 3 reservation,
        // 4 geo, 5 rate, 6 user, 7 profile
        let services = vec![
            svc("frontend-search", 2.0, 0.02, &[2, 7]),
            svc("frontend-reserve", 2.0, 0.02, &[3, 7]),
            svc("search", 3.0, 0.04, &[4, 5]),
            svc("reservation", 3.0, 0.04, &[5, 6]),
            svc("geo", 1.5, 0.05, &[]),
            svc("rate", 1.5, 0.06, &[]),
            svc("user", 1.5, 0.05, &[]),
            svc("profile", 2.0, 0.05, &[]),
        ];
        Self {
            name: "hotel-reservation".to_string(),
            services,
            entries: vec![0, 1],
            num_hosts: 0,
        }
    }

    /// The social-network app: 24 services across three endpoint trees
    /// (home-timeline, user-timeline, compose-post) over shared storage
    /// backends. With one container per service plus 9 infra entities
    /// (hosts): 24 + 24 + 9 = 57 relationship-graph entities.
    pub fn social_network() -> Self {
        // 0 home-timeline, 1 user-timeline, 2 compose-post (entries)
        // 3 text, 4 media, 5 user-mention, 6 url-shorten, 7 unique-id,
        // 8 user-service, 9 social-graph, 10 post-storage, 11 write-timeline,
        // 12 read-timeline, 13 nginx-gateway... plus memcached/mongo pairs.
        let services = vec![
            svc("home-timeline", 2.0, 0.02, &[12, 9]),
            svc("user-timeline", 2.0, 0.02, &[12, 10]),
            svc("compose-post", 2.5, 0.03, &[3, 4, 5, 6, 7, 11]),
            svc("text", 1.0, 0.03, &[5, 6]),
            svc("media", 2.0, 0.05, &[17]),
            svc("user-mention", 1.0, 0.03, &[8]),
            svc("url-shorten", 1.0, 0.03, &[18]),
            svc("unique-id", 0.5, 0.01, &[]),
            svc("user-service", 1.0, 0.03, &[19, 20]),
            svc("social-graph", 1.5, 0.04, &[21, 20]),
            svc("post-storage", 1.5, 0.05, &[22, 23]),
            svc("write-timeline", 1.5, 0.04, &[10, 9, 12]),
            svc("read-timeline", 1.5, 0.04, &[22, 21]),
            svc("nginx-gateway", 0.5, 0.01, &[]),
            svc("media-frontend", 1.0, 0.02, &[4]),
            svc("login", 1.0, 0.02, &[8]),
            svc("follow", 1.0, 0.02, &[9]),
            svc("media-mongo", 2.0, 0.06, &[]),
            svc("url-mongo", 2.0, 0.06, &[]),
            svc("user-mongo", 2.0, 0.06, &[]),
            svc("user-memcached", 0.5, 0.04, &[]),
            svc("graph-mongo", 2.0, 0.06, &[]),
            svc("timeline-redis", 0.5, 0.04, &[]),
            svc("post-mongo", 2.0, 0.06, &[]),
        ];
        Self {
            name: "social-network".to_string(),
            services,
            entries: vec![0, 1, 2],
            num_hosts: 9,
        }
    }

    /// Number of services.
    pub fn num_services(&self) -> usize {
        self.services.len()
    }

    /// Topological order of the call DAG (callers before callees).
    /// Panics if the call graph has a cycle — topologies are authored
    /// acyclic (calls within one request); cyclic *influence* comes from
    /// sharing, not from call loops.
    pub fn call_order(&self) -> Vec<usize> {
        let n = self.services.len();
        let mut in_deg = vec![0usize; n];
        for s in &self.services {
            for &c in &s.callees {
                in_deg[c] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| in_deg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for &c in &self.services[u].callees {
                in_deg[c] -= 1;
                if in_deg[c] == 0 {
                    queue.push(c);
                }
            }
        }
        assert_eq!(order.len(), n, "call graph of {} has a cycle", self.name);
        order
    }

    /// Services reachable (transitively called) from an entry.
    pub fn call_tree(&self, entry: usize) -> Vec<usize> {
        let mut seen = vec![entry];
        let mut stack = vec![entry];
        while let Some(u) = stack.pop() {
            for &c in &self.services[u].callees {
                if !seen.contains(&c) {
                    seen.push(c);
                    stack.push(c);
                }
            }
        }
        seen
    }

    /// Services called by more than one entry's tree — the "common
    /// services" of the §6.1 interference setup.
    pub fn common_services(&self) -> Vec<usize> {
        let trees: Vec<Vec<usize>> = self.entries.iter().map(|&e| self.call_tree(e)).collect();
        (0..self.services.len())
            .filter(|s| trees.iter().filter(|t| t.contains(s)).count() >= 2)
            .collect()
    }
}

/// Emulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmulationConfig {
    /// Number of ticks to simulate.
    pub ticks: u64,
    /// Interval per tick in seconds (paper: 10 s).
    pub interval_secs: u64,
    /// RNG seed.
    pub seed: u64,
    /// Relative measurement-noise scale on recorded metrics.
    pub noise: f64,
    /// Record associations as *directed* causal edges (container→service,
    /// callee→caller) — the acyclic §6.3 environment that Sage can model.
    /// When false, associations are undirected (the general cyclic input).
    pub causal_edges: bool,
    /// Load shedding: above this CPU utilization a service sheds excess
    /// requests — downstream load saturates, error rate spikes, and the
    /// latency/utilization relationship becomes *nonlinear* (the §7
    /// limitation: "Murphy might not handle non-linearity in metrics,
    /// e.g. if load shedding kicks in after a threshold"). `None`
    /// disables shedding (the default, linear regime).
    pub load_shedding_threshold: Option<f64>,
}

impl Default for EmulationConfig {
    fn default() -> Self {
        Self {
            ticks: 360, // one hour at 10 s ticks
            interval_secs: 10,
            seed: 7,
            noise: 0.02,
            causal_edges: false,
            load_shedding_threshold: None,
        }
    }
}

/// Handles to the entities an emulation created.
#[derive(Debug, Clone, Default)]
pub struct EmulationEntities {
    /// Service entities, by topology index.
    pub services: Vec<EntityId>,
    /// Container entities, by topology index.
    pub containers: Vec<EntityId>,
    /// Client entities, by workload client index.
    pub clients: Vec<EntityId>,
    /// Host entities (may be empty).
    pub hosts: Vec<EntityId>,
}

/// A completed emulation: the database plus entity handles.
#[derive(Debug, Clone)]
pub struct Emulation {
    /// The populated monitoring database.
    pub db: MonitoringDb,
    /// Entity handles.
    pub entities: EmulationEntities,
    /// The topology that was emulated.
    pub topology: MicroserviceTopology,
}

/// Run the emulation: drive `workload` through `topology` with `faults`,
/// recording metrics every tick.
pub fn emulate(
    topology: &MicroserviceTopology,
    workload: &Workload,
    faults: &[ContentionFault],
    config: &EmulationConfig,
) -> Emulation {
    let mut db = MonitoringDb::new(config.interval_secs);
    let n = topology.num_services();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // --- entities & associations ---------------------------------------
    let services: Vec<EntityId> = topology
        .services
        .iter()
        .map(|s| db.add_entity(EntityKind::Service, s.name.clone()))
        .collect();
    let containers: Vec<EntityId> = topology
        .services
        .iter()
        .map(|s| db.add_entity(EntityKind::Container, format!("{}-ctr", s.name)))
        .collect();
    let clients: Vec<EntityId> = workload
        .clients
        .iter()
        .enumerate()
        .map(|(i, (entry, _))| {
            db.add_entity(
                EntityKind::Client,
                format!("client{}-{}", i, topology.services[*entry].name),
            )
        })
        .collect();
    let hosts: Vec<EntityId> = (0..topology.num_hosts)
        .map(|i| db.add_entity(EntityKind::Host, format!("node{i}")))
        .collect();

    for i in 0..n {
        if config.causal_edges {
            // Causal direction: the container's resources drive the
            // service; a callee's behaviour drives its caller.
            db.relate_directed(containers[i], services[i], AssociationKind::ServiceOnContainer);
            for &c in &topology.services[i].callees {
                db.relate_directed(services[c], services[i], AssociationKind::ServiceCall);
            }
        } else {
            db.relate(services[i], containers[i], AssociationKind::ServiceOnContainer);
            for &c in &topology.services[i].callees {
                db.relate(services[i], services[c], AssociationKind::ServiceCall);
            }
        }
        if !hosts.is_empty() {
            let h = hosts[i % hosts.len()];
            db.relate(containers[i], h, AssociationKind::RunsOn);
        }
        db.tag_application(topology.name.clone(), services[i]);
        db.tag_application(topology.name.clone(), containers[i]);
    }
    for (i, (entry, _)) in workload.clients.iter().enumerate() {
        if config.causal_edges {
            db.relate_directed(clients[i], services[*entry], AssociationKind::ClientOf);
        } else {
            db.relate(clients[i], services[*entry], AssociationKind::ClientOf);
        }
    }

    // --- per-tick simulation --------------------------------------------
    let order = topology.call_order();
    for t in 0..config.ticks {
        // Client rates.
        let client_rates: Vec<f64> = workload
            .clients
            .iter()
            .map(|(_, schedule)| schedule.rate_at(t, &mut rng))
            .collect();

        // Load propagation (callers before callees). With load shedding a
        // saturated service forwards only the load it can actually serve,
        // clipping the linear rate→rate relationship.
        let mut rate = vec![0.0f64; n];
        let mut shed = vec![0.0f64; n];
        for (i, (entry, _)) in workload.clients.iter().enumerate() {
            rate[*entry] += client_rates[i];
        }
        for &u in &order {
            let mut served = rate[u];
            if let Some(threshold) = config.load_shedding_threshold {
                let capacity_rps = threshold / topology.services[u].cpu_per_req.max(1e-9);
                if served > capacity_rps {
                    shed[u] = served - capacity_rps;
                    served = capacity_rps;
                }
            }
            rate[u] = served;
            for &c in &topology.services[u].callees {
                rate[c] += served;
            }
        }

        // Container utilization.
        let mut util = vec![0.0f64; n];
        let mut mem = vec![0.0f64; n];
        let mut disk = vec![0.0f64; n];
        for i in 0..n {
            let fault_cpu: f64 = faults
                .iter()
                .filter(|f| f.kind == crate::faults::FaultKind::Cpu)
                .map(|f| f.load_at(i, t))
                .sum();
            let fault_mem: f64 = faults
                .iter()
                .filter(|f| f.kind == crate::faults::FaultKind::Mem)
                .map(|f| f.load_at(i, t))
                .sum();
            let fault_disk: f64 = faults
                .iter()
                .filter(|f| f.kind == crate::faults::FaultKind::Disk)
                .map(|f| f.load_at(i, t))
                .sum();
            let base = rate[i] * topology.services[i].cpu_per_req;
            util[i] = (base + fault_cpu + gaussian(&mut rng) * config.noise * 20.0)
                .clamp(0.0, 100.0);
            mem[i] = (18.0 + 0.02 * rate[i] + fault_mem + gaussian(&mut rng) * config.noise * 10.0)
                .clamp(0.0, 100.0);
            disk[i] = (8.0 + fault_disk + gaussian(&mut rng) * config.noise * 10.0)
                .clamp(0.0, 100.0);
        }

        // Latency propagation (callees before callers). Saturation of any
        // resource inflates the service's own processing time.
        let mut latency = vec![0.0f64; n];
        for &u in order.iter().rev() {
            let saturation = util[u].max(mem[u]).max(disk[u]);
            let congestion = saturation / (105.0 - saturation.min(104.0));
            let own = topology.services[u].base_latency_ms * (1.0 + 3.0 * congestion);
            let downstream: f64 = topology.services[u]
                .callees
                .iter()
                .map(|&c| latency[c])
                .sum();
            latency[u] = own + downstream;
        }

        // Record everything.
        let jitter = |rng: &mut StdRng, scale: f64| gaussian(rng) * config.noise * scale;
        for i in 0..n {
            db.record(containers[i], MetricKind::CpuUtil, t, util[i]);
            db.record(containers[i], MetricKind::MemUtil, t, mem[i]);
            db.record(containers[i], MetricKind::DiskUtil, t, disk[i]);
            db.record(
                containers[i],
                MetricKind::NetTx,
                t,
                (rate[i] * 0.3 + jitter(&mut rng, 1.0)).max(0.0),
            );
            db.record(
                containers[i],
                MetricKind::NetRx,
                t,
                (rate[i] * 0.2 + jitter(&mut rng, 1.0)).max(0.0),
            );
            db.record(
                services[i],
                MetricKind::Latency,
                t,
                (latency[i] + jitter(&mut rng, 2.0)).max(0.1),
            );
            db.record(services[i], MetricKind::RequestRate, t, rate[i].max(0.0));
            // Errors: saturation-driven, plus the shed fraction when load
            // shedding is active.
            let shed_err = if rate[i] + shed[i] > 0.0 {
                100.0 * shed[i] / (rate[i] + shed[i])
            } else {
                0.0
            };
            let err = (((util[i] - 95.0).max(0.0) * 1.5) + shed_err).min(100.0);
            db.record(services[i], MetricKind::ErrorRate, t, err);
        }
        for (i, (entry, _)) in workload.clients.iter().enumerate() {
            db.record(clients[i], MetricKind::RequestRate, t, client_rates[i]);
            db.record(
                clients[i],
                MetricKind::Latency,
                t,
                (latency[*entry] + 2.0 + jitter(&mut rng, 2.0)).max(0.1),
            );
        }
        for (hi, &h) in hosts.iter().enumerate() {
            // Host CPU = mean of resident container CPUs (shared resource).
            let resident: Vec<usize> = (0..n).filter(|i| i % hosts.len() == hi).collect();
            let host_cpu = resident.iter().map(|&i| util[i]).sum::<f64>()
                / resident.len().max(1) as f64;
            db.record(h, MetricKind::CpuUtil, t, host_cpu.clamp(0.0, 100.0));
            db.record(
                h,
                MetricKind::NetTx,
                t,
                resident.iter().map(|&i| rate[i] * 0.3).sum::<f64>().max(0.0),
            );
        }
    }

    Emulation {
        db,
        entities: EmulationEntities {
            services,
            containers,
            clients,
            hosts,
        },
        topology: topology.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultKind;
    use crate::workload::Schedule;
    use murphy_telemetry::MetricId;

    #[test]
    fn hotel_topology_matches_paper_counts() {
        let t = MicroserviceTopology::hotel_reservation();
        assert_eq!(t.num_services(), 8);
        // 8 services + 8 containers = 16 entities, as in §5.1.2.
        let emu = emulate(
            &t,
            &Workload::new().with_client(0, Schedule::steady(50.0)),
            &[],
            &EmulationConfig { ticks: 5, ..Default::default() },
        );
        let app_entities = emu.db.application_members("hotel-reservation");
        assert_eq!(app_entities.len(), 16);
    }

    #[test]
    fn social_topology_matches_paper_counts() {
        let t = MicroserviceTopology::social_network();
        assert_eq!(t.num_services(), 24);
        // 24 services + 24 containers + 9 hosts = 57 entities.
        let emu = emulate(
            &t,
            &Workload::new().with_client(0, Schedule::steady(50.0)),
            &[],
            &EmulationConfig { ticks: 5, ..Default::default() },
        );
        assert_eq!(emu.db.entity_count(), 24 + 24 + 9 + 1); // +1 client
    }

    #[test]
    fn hotel_has_common_services_between_entries() {
        let t = MicroserviceTopology::hotel_reservation();
        let common = t.common_services();
        // rate (5) and profile (7) are shared between the two endpoints.
        assert!(common.contains(&5));
        assert!(common.contains(&7));
        assert!(!common.contains(&4)); // geo only under search
    }

    #[test]
    fn call_order_is_topological() {
        for t in [
            MicroserviceTopology::hotel_reservation(),
            MicroserviceTopology::social_network(),
        ] {
            let order = t.call_order();
            let pos: Vec<usize> = {
                let mut p = vec![0; order.len()];
                for (rank, &s) in order.iter().enumerate() {
                    p[s] = rank;
                }
                p
            };
            for (u, s) in t.services.iter().enumerate() {
                for &c in &s.callees {
                    assert!(pos[u] < pos[c], "{}: {u} must precede {c}", t.name);
                }
            }
        }
    }

    #[test]
    fn load_propagates_to_callees() {
        let t = MicroserviceTopology::hotel_reservation();
        let emu = emulate(
            &t,
            &Workload::new().with_client(0, Schedule::steady(100.0)),
            &[],
            &EmulationConfig { ticks: 30, ..Default::default() },
        );
        // geo (4) is under search: it must see ≈ the entry rate.
        let geo_rate = emu
            .db
            .current_value(MetricId::new(emu.entities.services[4], MetricKind::RequestRate));
        assert!(geo_rate > 30.0, "geo rate = {geo_rate}");
        // user (6) is only under reserve: ≈ 0 rate.
        let user_rate = emu
            .db
            .current_value(MetricId::new(emu.entities.services[6], MetricKind::RequestRate));
        assert!(user_rate < 5.0, "user rate = {user_rate}");
    }

    #[test]
    fn cpu_fault_raises_util_and_latency() {
        let t = MicroserviceTopology::hotel_reservation();
        let fault = ContentionFault {
            kind: FaultKind::Cpu,
            target: 5, // rate service
            start_tick: 100,
            end_tick: 160,
            added_util: 80.0,
        };
        let emu = emulate(
            &t,
            &Workload::new().with_client(0, Schedule::steady(60.0)),
            &[fault],
            &EmulationConfig { ticks: 160, ..Default::default() },
        );
        let rate_ctr = emu.entities.containers[5];
        let util_before = emu.db.value_at(MetricId::new(rate_ctr, MetricKind::CpuUtil), 50);
        let util_during = emu.db.value_at(MetricId::new(rate_ctr, MetricKind::CpuUtil), 130);
        assert!(util_during > util_before + 40.0);
        // Entry latency (frontend-search calls search → rate) inflates too.
        let entry = emu.entities.services[0];
        let lat_before = emu.db.value_at(MetricId::new(entry, MetricKind::Latency), 50);
        let lat_during = emu.db.value_at(MetricId::new(entry, MetricKind::Latency), 130);
        assert!(
            lat_during > lat_before * 1.5,
            "before {lat_before}, during {lat_during}"
        );
    }

    #[test]
    fn interference_spike_raises_sibling_latency() {
        // Client A floods frontend-search; client B's frontend-reserve
        // latency rises through the shared `rate`/`profile` services.
        let t = MicroserviceTopology::hotel_reservation();
        let workload = Workload::new()
            .with_client(0, Schedule::steady(60.0).with_spike(120, 180, 1400.0))
            .with_client(1, Schedule::steady(60.0));
        let emu = emulate(
            &t,
            &workload,
            &[],
            &EmulationConfig { ticks: 180, ..Default::default() },
        );
        let client_b = emu.entities.clients[1];
        let before = emu.db.value_at(MetricId::new(client_b, MetricKind::Latency), 60);
        let during = emu.db.value_at(MetricId::new(client_b, MetricKind::Latency), 150);
        assert!(
            during > before * 1.3,
            "client B latency must rise: before {before}, during {during}"
        );
    }

    #[test]
    fn causal_edges_build_a_dag() {
        let t = MicroserviceTopology::hotel_reservation();
        let emu = emulate(
            &t,
            &Workload::new().with_client(0, Schedule::steady(50.0)),
            &[],
            &EmulationConfig { ticks: 5, causal_edges: true, ..Default::default() },
        );
        // Every association is directed.
        assert!(emu
            .db
            .associations()
            .iter()
            .all(|a| a.direction != murphy_telemetry::Directionality::Both));
    }

    #[test]
    fn undirected_edges_create_cycles() {
        let t = MicroserviceTopology::hotel_reservation();
        let emu = emulate(
            &t,
            &Workload::new().with_client(0, Schedule::steady(50.0)),
            &[],
            &EmulationConfig { ticks: 5, ..Default::default() },
        );
        let graph = murphy_graph::build_from_seeds(
            &emu.db,
            &[emu.entities.services[0]],
            murphy_graph::BuildOptions::default(),
        );
        let stats = murphy_graph::CycleStats::count(&graph);
        assert!(stats.len2 > 0, "undirected input must contain 2-cycles");
    }

    #[test]
    fn load_shedding_caps_downstream_rate_and_raises_errors() {
        let t = MicroserviceTopology::hotel_reservation();
        // search has cpu_per_req 0.04: a 60% shedding threshold caps its
        // served rate at 1500 rps; drive 60+2000 rps at it.
        let workload =
            Workload::new().with_client(0, Schedule::steady(60.0).with_spike(20, 60, 2000.0));
        let linear = emulate(&t, &workload, &[], &EmulationConfig { ticks: 60, ..Default::default() });
        let shedding = emulate(
            &t,
            &workload,
            &[],
            &EmulationConfig {
                ticks: 60,
                load_shedding_threshold: Some(60.0),
                ..Default::default()
            },
        );
        let geo = |emu: &Emulation, tick: u64| {
            emu.db
                .value_at(MetricId::new(emu.entities.services[4], MetricKind::RequestRate), tick)
        };
        // Downstream of the shedding search service, the rate saturates.
        assert!(geo(&shedding, 40) < geo(&linear, 40) * 0.9, "{} vs {}", geo(&shedding, 40), geo(&linear, 40));
        // The shedding service reports errors; the linear one may not.
        let err = shedding
            .db
            .value_at(MetricId::new(shedding.entities.services[2], MetricKind::ErrorRate), 40);
        assert!(err > 5.0, "shed errors = {err}");
    }

    #[test]
    fn shedding_is_inactive_below_threshold() {
        let t = MicroserviceTopology::hotel_reservation();
        let workload = Workload::new().with_client(0, Schedule::steady(50.0));
        let linear = emulate(&t, &workload, &[], &EmulationConfig { ticks: 20, ..Default::default() });
        let shedding = emulate(
            &t,
            &workload,
            &[],
            &EmulationConfig {
                ticks: 20,
                load_shedding_threshold: Some(90.0),
                ..Default::default()
            },
        );
        let m = MetricId::new(linear.entities.services[4], MetricKind::RequestRate);
        assert_eq!(
            linear.db.series(m).unwrap().values(),
            shedding.db.series(m).unwrap().values(),
            "below threshold the two regimes are identical"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let t = MicroserviceTopology::hotel_reservation();
        let w = Workload::new().with_client(0, Schedule::steady(50.0));
        let cfg = EmulationConfig { ticks: 20, ..Default::default() };
        let a = emulate(&t, &w, &[], &cfg);
        let b = emulate(&t, &w, &[], &cfg);
        let m = MetricId::new(a.entities.services[0], MetricKind::Latency);
        assert_eq!(
            a.db.series(m).unwrap().values(),
            b.db.series(m).unwrap().values()
        );
    }
}
