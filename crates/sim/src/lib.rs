//! Evaluation environments for the Murphy reproduction.
//!
//! The paper evaluates on two environments neither of which is publicly
//! reproducible as-is — live DeathStarBench deployments on AWS/private
//! cloud, and a large enterprise's production monitoring platform. This
//! crate provides synthetic equivalents that exercise the same code paths
//! (see DESIGN.md §1 for the substitution argument):
//!
//! * [`microservice`] — a discrete-time queueing emulator of
//!   microservice applications with explicit call graphs, including
//!   topologies matching the paper's two apps (hotel-reservation: 8
//!   services / 16 entities; social-network: 24 services / 57 entities).
//! * [`workload`] — open-loop request generation (wrk2-style constant
//!   rates with spikes).
//! * [`faults`] — fault injection: resource contention (stress-ng-style
//!   CPU/memory/disk load on a container) and performance interference
//!   (a client overwhelming services shared with another client), plus
//!   the "prior incidents" of §6.3.
//! * [`enterprise`] — a generator of enterprise topologies (applications
//!   with VM tiers, flows, hosts, NICs, switches) with coupled metric
//!   synthesis, scalable to the paper's ~17K entities / 300 apps.
//! * [`incidents`] — the 13 scripted incidents of Table 1.
//! * [`scenario`] — the [`scenario::Scenario`] bundle (database + graph +
//!   symptom + ground truth) consumed by the experiment harness, and
//!   builders for every scenario family.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enterprise;
pub mod faults;
pub mod incidents;
pub mod microservice;
pub mod scenario;
pub mod traces;
pub mod workload;

pub use faults::{ContentionFault, FaultKind, InterferencePlan};
pub use microservice::{EmulationConfig, Emulation, MicroserviceTopology};
pub use scenario::{Scenario, ScenarioBuilder};
pub use workload::{Schedule, Workload};
