//! Fault injection (§5.1.2 failure scenarios).
//!
//! Two families, matching the paper's evaluation:
//!
//! * **Resource contention** ([`ContentionFault`]) — stress-ng-style
//!   CPU/memory/disk load injected into one container for a bounded
//!   window, with configurable intensity. §6.3 runs >200 of these,
//!   optionally preceded by up to 14 short "prior incidents" on random
//!   containers ([`prior_incidents`]).
//! * **Performance interference** ([`InterferencePlan`]) — a client
//!   raises its request rate enough to overwhelm downstream services it
//!   shares with another client (§6.1, motivated by the Figure 1
//!   production incident). Realized as a workload spike, so it lives on
//!   the workload side; this type records which client and window for
//!   ground-truth bookkeeping.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which resource a contention fault stresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// CPU hog (stress-ng --cpu).
    Cpu,
    /// Memory hog (stress-ng --vm).
    Mem,
    /// Disk/Io hog (stress-ng --hdd).
    Disk,
}

impl FaultKind {
    /// All kinds, for sweeps.
    pub const ALL: [FaultKind; 3] = [FaultKind::Cpu, FaultKind::Mem, FaultKind::Disk];
}

/// A resource-contention fault on one container.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionFault {
    /// Stressed resource.
    pub kind: FaultKind,
    /// Index of the target container (service index in the topology).
    pub target: usize,
    /// First tick of the fault (inclusive).
    pub start_tick: u64,
    /// One past the last tick (exclusive).
    pub end_tick: u64,
    /// Added utilization percentage points at full intensity.
    pub added_util: f64,
}

impl ContentionFault {
    /// Utilization added to `container` at `tick` by this fault.
    pub fn load_at(&self, container: usize, tick: u64) -> f64 {
        if container == self.target && tick >= self.start_tick && tick < self.end_tick {
            self.added_util
        } else {
            0.0
        }
    }

    /// Is the fault active at `tick`?
    pub fn active_at(&self, tick: u64) -> bool {
        tick >= self.start_tick && tick < self.end_tick
    }
}

/// A performance-interference fault: client `client` floods its entry
/// service during the window (the rate spike itself is added to the
/// client's [`Schedule`](crate::workload::Schedule)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferencePlan {
    /// Index of the aggressor client in the workload.
    pub client: usize,
    /// First tick of the flood.
    pub start_tick: u64,
    /// One past the last tick.
    pub end_tick: u64,
    /// Extra requests per second during the flood.
    pub extra_rps: f64,
}

/// Generate `n` short prior incidents on random containers before
/// `main_start` — the §6.3 realism ingredient ("we induce up to 14 'prior
/// incidents' where short-lived faults are injected on randomly chosen
/// containers before the actual incident").
///
/// Each prior incident is 6–12 ticks long (1–2 minutes at 10 s ticks) with
/// moderate intensity, placed uniformly in `[earliest, main_start)` without
/// overlapping the main incident.
pub fn prior_incidents<R: Rng>(
    n: usize,
    num_containers: usize,
    earliest: u64,
    main_start: u64,
    rng: &mut R,
) -> Vec<ContentionFault> {
    if num_containers == 0 || main_start <= earliest {
        return Vec::new();
    }
    (0..n)
        .map(|_| {
            let duration = rng.gen_range(6..=12);
            let latest_start = main_start.saturating_sub(duration).max(earliest);
            let start = if latest_start > earliest {
                rng.gen_range(earliest..latest_start)
            } else {
                earliest
            };
            ContentionFault {
                kind: FaultKind::ALL[rng.gen_range(0..FaultKind::ALL.len())],
                target: rng.gen_range(0..num_containers),
                start_tick: start,
                end_tick: (start + duration).min(main_start),
                added_util: rng.gen_range(25.0..55.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn contention_load_is_windowed_and_targeted() {
        let f = ContentionFault {
            kind: FaultKind::Cpu,
            target: 3,
            start_tick: 100,
            end_tick: 160,
            added_util: 70.0,
        };
        assert_eq!(f.load_at(3, 99), 0.0);
        assert_eq!(f.load_at(3, 100), 70.0);
        assert_eq!(f.load_at(3, 159), 70.0);
        assert_eq!(f.load_at(3, 160), 0.0);
        assert_eq!(f.load_at(2, 120), 0.0);
        assert!(f.active_at(100));
        assert!(!f.active_at(160));
    }

    #[test]
    fn prior_incidents_fit_before_main() {
        let mut rng = StdRng::seed_from_u64(5);
        let faults = prior_incidents(14, 8, 20, 180, &mut rng);
        assert_eq!(faults.len(), 14);
        for f in &faults {
            assert!(f.start_tick >= 20);
            assert!(f.end_tick <= 180, "fault {f:?} overlaps the main incident");
            assert!(f.end_tick > f.start_tick);
            assert!(f.target < 8);
            assert!(f.added_util >= 25.0 && f.added_util <= 55.0);
        }
    }

    #[test]
    fn prior_incidents_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(prior_incidents(5, 0, 0, 100, &mut rng).is_empty());
        assert!(prior_incidents(5, 4, 100, 100, &mut rng).is_empty());
        assert!(prior_incidents(0, 4, 0, 100, &mut rng).is_empty());
    }

    #[test]
    fn prior_incidents_vary_kind_and_target() {
        let mut rng = StdRng::seed_from_u64(7);
        let faults = prior_incidents(30, 10, 0, 500, &mut rng);
        let kinds: std::collections::BTreeSet<_> =
            faults.iter().map(|f| format!("{:?}", f.kind)).collect();
        let targets: std::collections::BTreeSet<_> = faults.iter().map(|f| f.target).collect();
        assert!(kinds.len() >= 2, "fault kinds should vary");
        assert!(targets.len() >= 4, "targets should vary");
    }
}
