//! Scenarios: the unit the experiment harness consumes.
//!
//! A [`Scenario`] bundles everything a diagnosis scheme needs — the
//! monitoring database, the relationship graph, the problematic symptom —
//! together with the evaluation-side ground truth: the true root cause
//! (and, for the §6.1 relaxed metrics, the set of acceptable "close"
//! entities).

use crate::faults::{prior_incidents, ContentionFault, FaultKind, InterferencePlan};
use crate::microservice::{emulate, EmulationConfig, MicroserviceTopology};
use crate::workload::{Schedule, Workload};
use murphy_core::Symptom;
use murphy_graph::{build_from_seeds, BuildOptions, RelationshipGraph};
use murphy_telemetry::{EntityId, MetricKind, MonitoringDb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fully-built evaluation scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable scenario name.
    pub name: String,
    /// The monitoring database at diagnosis time.
    pub db: MonitoringDb,
    /// The relationship graph seeded from the symptom.
    pub graph: RelationshipGraph,
    /// The problematic symptom to diagnose.
    pub symptom: Symptom,
    /// Ground-truth root cause entities (operator resolution).
    pub ground_truth: Vec<EntityId>,
    /// Entities acceptable under the §6.1 *relaxed* criterion (the true
    /// root cause plus common services/containers). Empty when the
    /// relaxed criterion doesn't apply.
    pub relaxed_truth: Vec<EntityId>,
    /// Tick at which the main incident starts.
    pub incident_start_tick: u64,
}

/// What kind of fault the builder injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlan {
    /// stress-ng-style resource contention on a (seed-chosen) container.
    Contention {
        /// Stressed resource.
        kind: FaultKind,
        /// Intensity multiplier (1.0 ≈ 60 added utilization points).
        intensity: f64,
    },
    /// Performance interference: client 0 floods its entry; client 1 (the
    /// victim) observes latency. `intensity` multiplies the flood rate.
    Interference {
        /// Flood-rate multiplier (1.0 ≈ 20× the base rate).
        intensity: f64,
    },
}

impl FaultPlan {
    /// Contention fault shorthand.
    pub fn contention(kind: FaultKind, intensity: f64) -> Self {
        FaultPlan::Contention { kind, intensity }
    }

    /// Interference fault shorthand.
    pub fn interference(intensity: f64) -> Self {
        FaultPlan::Interference { intensity }
    }
}

/// Builder for microservice scenarios.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    topology: MicroserviceTopology,
    seed: u64,
    ticks: u64,
    fault: FaultPlan,
    num_prior_incidents: usize,
    causal_edges: bool,
    base_rps: f64,
}

impl ScenarioBuilder {
    /// Start from the hotel-reservation topology.
    pub fn hotel_reservation(seed: u64) -> Self {
        Self::new(MicroserviceTopology::hotel_reservation(), seed)
    }

    /// Start from the social-network topology.
    pub fn social_network(seed: u64) -> Self {
        Self::new(MicroserviceTopology::social_network(), seed)
    }

    /// Start from an arbitrary topology.
    pub fn new(topology: MicroserviceTopology, seed: u64) -> Self {
        Self {
            topology,
            seed,
            ticks: 360,
            fault: FaultPlan::contention(FaultKind::Cpu, 1.0),
            num_prior_incidents: 0,
            causal_edges: false,
            base_rps: 60.0,
        }
    }

    /// Choose the fault to inject.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Number of short prior incidents before the main one (§6.3 realism).
    pub fn with_prior_incidents(mut self, n: usize) -> Self {
        self.num_prior_incidents = n;
        self
    }

    /// Trace length in ticks.
    pub fn with_ticks(mut self, ticks: u64) -> Self {
        self.ticks = ticks;
        self
    }

    /// Record directed causal associations (the acyclic §6.3 environment).
    pub fn with_causal_edges(mut self, causal: bool) -> Self {
        self.causal_edges = causal;
        self
    }

    /// Baseline request rate per client.
    pub fn with_base_rps(mut self, rps: f64) -> Self {
        self.base_rps = rps;
        self
    }

    /// Build the scenario: run the emulation and assemble ground truth.
    pub fn build(self) -> Scenario {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.topology.num_services();
        // Main incident occupies the last sixth of the trace and is still
        // in progress at diagnosis time (the paper diagnoses mid-incident).
        let incident_start = self.ticks - (self.ticks / 6).max(20);
        let incident_end = self.ticks;

        match self.fault {
            FaultPlan::Contention { kind, intensity } => {
                // Fault a random non-entry container.
                let non_entry: Vec<usize> =
                    (0..n).filter(|s| !self.topology.entries.contains(s)).collect();
                let target = non_entry[rng.gen_range(0..non_entry.len())];
                let main = ContentionFault {
                    kind,
                    target,
                    start_tick: incident_start,
                    end_tick: incident_end,
                    added_util: (60.0 * intensity).min(98.0),
                };
                let mut faults = prior_incidents(
                    self.num_prior_incidents,
                    n,
                    10,
                    incident_start.saturating_sub(5),
                    &mut rng,
                );
                faults.push(main);

                // One client per entry.
                let mut workload = Workload::new();
                for &e in &self.topology.entries {
                    workload = workload.with_client(e, Schedule::steady(self.base_rps));
                }
                let emu = emulate(
                    &self.topology,
                    &workload,
                    &faults,
                    &EmulationConfig {
                        ticks: self.ticks,
                        seed: self.seed ^ 0xABCD,
                        causal_edges: self.causal_edges,
                        ..Default::default()
                    },
                );

                // Symptom: the latency of the entry service whose tree
                // contains the faulted container (first match).
                let entry = *self
                    .topology
                    .entries
                    .iter()
                    .find(|&&e| self.topology.call_tree(e).contains(&target))
                    .unwrap_or(&self.topology.entries[0]);
                let symptom = Symptom::high(emu.entities.services[entry], MetricKind::Latency);
                let graph =
                    build_from_seeds(&emu.db, &[symptom.entity], BuildOptions::default());
                let faulted_container = emu.entities.containers[target];
                Scenario {
                    name: format!(
                        "{}-contention-{:?}-s{}",
                        self.topology.name, kind, self.seed
                    ),
                    db: emu.db,
                    graph,
                    symptom,
                    ground_truth: vec![faulted_container],
                    relaxed_truth: vec![faulted_container, emu.entities.services[target]],
                    incident_start_tick: incident_start,
                }
            }
            FaultPlan::Interference { intensity } => {
                assert!(
                    self.topology.entries.len() >= 2,
                    "interference needs two entry services"
                );
                let aggressor_entry = self.topology.entries[0];
                let victim_entry = self.topology.entries[1];
                let flood = self.base_rps * 20.0 * intensity;
                let workload = Workload::new()
                    .with_client(
                        aggressor_entry,
                        Schedule::steady(self.base_rps).with_spike(
                            incident_start,
                            incident_end,
                            flood,
                        ),
                    )
                    .with_client(victim_entry, Schedule::steady(self.base_rps));
                let _plan = InterferencePlan {
                    client: 0,
                    start_tick: incident_start,
                    end_tick: incident_end,
                    extra_rps: flood,
                };
                let emu = emulate(
                    &self.topology,
                    &workload,
                    &[],
                    &EmulationConfig {
                        ticks: self.ticks,
                        seed: self.seed ^ 0xABCD,
                        causal_edges: self.causal_edges,
                        ..Default::default()
                    },
                );

                // Symptom: client B's (victim's) observed latency.
                let symptom = Symptom::high(emu.entities.clients[1], MetricKind::Latency);
                let graph =
                    build_from_seeds(&emu.db, &[symptom.entity], BuildOptions::default());
                // True root cause: the aggressor client (its RPS load).
                let aggressor = emu.entities.clients[0];
                // Relaxed: aggressor, aggressor's entry service, common
                // services and their containers.
                let mut relaxed = vec![aggressor, emu.entities.services[aggressor_entry]];
                for s in self.topology.common_services() {
                    relaxed.push(emu.entities.services[s]);
                    relaxed.push(emu.entities.containers[s]);
                }
                Scenario {
                    name: format!("{}-interference-s{}", self.topology.name, self.seed),
                    db: emu.db,
                    graph,
                    symptom,
                    ground_truth: vec![aggressor],
                    relaxed_truth: relaxed,
                    incident_start_tick: incident_start,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murphy_telemetry::MetricId;

    #[test]
    fn contention_scenario_has_consistent_ground_truth() {
        let s = ScenarioBuilder::hotel_reservation(3)
            .with_fault(FaultPlan::contention(FaultKind::Cpu, 1.2))
            .with_ticks(240)
            .build();
        assert_eq!(s.ground_truth.len(), 1);
        let rc = s.ground_truth[0];
        // The root cause container is in the graph and its CPU is elevated
        // at diagnosis time.
        assert!(s.graph.contains(rc));
        let cpu = s.db.current_value(MetricId::new(rc, MetricKind::CpuUtil));
        assert!(cpu > 40.0, "faulted container CPU = {cpu}");
        // The symptom entity's latency is elevated relative to before.
        let lat_now = s.db.current_value(s.symptom.metric_id());
        let lat_before = s.db.value_at(s.symptom.metric_id(), 30);
        assert!(lat_now > lat_before, "latency must rise during incident");
    }

    #[test]
    fn interference_scenario_blames_the_aggressor_client() {
        let s = ScenarioBuilder::hotel_reservation(5)
            .with_fault(FaultPlan::interference(1.0))
            .with_ticks(240)
            .build();
        let aggressor = s.ground_truth[0];
        let agg_rate = s.db.current_value(MetricId::new(aggressor, MetricKind::RequestRate));
        assert!(agg_rate > 500.0, "aggressor rate = {agg_rate}");
        // The relaxed set contains common services.
        assert!(s.relaxed_truth.len() > 2);
        assert!(s.relaxed_truth.contains(&aggressor));
        // Victim client's latency is the symptom and it is elevated.
        let lat_now = s.db.current_value(s.symptom.metric_id());
        let lat_before = s.db.value_at(s.symptom.metric_id(), 30);
        assert!(lat_now > lat_before * 1.2, "now {lat_now} before {lat_before}");
    }

    #[test]
    fn causal_scenario_is_acyclic_for_sage() {
        let s = ScenarioBuilder::social_network(9)
            .with_fault(FaultPlan::contention(FaultKind::Mem, 1.0))
            .with_causal_edges(true)
            .with_ticks(240)
            .build();
        // All service/container associations are directed...
        let directed = s
            .db
            .associations()
            .iter()
            .filter(|a| a.direction != murphy_telemetry::Directionality::Both)
            .count();
        assert!(directed > 0);
        // ...and the scenario graph still contains the ground truth.
        assert!(s.graph.contains(s.ground_truth[0]));
    }

    #[test]
    fn different_seeds_fault_different_containers() {
        let targets: std::collections::BTreeSet<EntityId> = (0..8)
            .map(|seed| {
                ScenarioBuilder::hotel_reservation(seed)
                    .with_fault(FaultPlan::contention(FaultKind::Cpu, 1.0))
                    .with_ticks(120)
                    .build()
                    .ground_truth[0]
            })
            .collect();
        assert!(targets.len() >= 3, "seeds should vary the fault location");
    }

    #[test]
    fn prior_incidents_leave_main_window_intact() {
        let s = ScenarioBuilder::hotel_reservation(2)
            .with_fault(FaultPlan::contention(FaultKind::Disk, 1.0))
            .with_prior_incidents(4)
            .with_ticks(300)
            .build();
        assert!(s.incident_start_tick > 200);
        // Diagnosis-time data exists up to the last tick.
        assert_eq!(s.db.latest_tick(), 299);
    }
}
