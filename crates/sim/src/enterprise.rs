//! Enterprise topology and metric generation.
//!
//! A synthetic stand-in for the paper's production environment (§2.1,
//! §5.1.1): hundreds of applications, each with web/app/db VM tiers,
//! inter-tier flows, VMs spread over shared hosts (the shared-resource
//! couplings that create cycles, §2.2), vNICs, hosts with pNICs, and
//! ToR switches with ports. At the paper's scale — 300 apps — this
//! produces ≈17K entities; every knob scales down for tests.
//!
//! Metric synthesis: each application carries a latent diurnal+noise load
//! signal; VM metrics follow the load through tier weights; host metrics
//! aggregate their resident VMs (so co-located apps couple); flow metrics
//! follow the app load; switch metrics aggregate their ports.

use murphy_learn::model::gaussian;
use murphy_telemetry::{
    AssociationKind, EntityId, EntityKind, MetricKind, MetricSample, MonitoringDb,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnterpriseConfig {
    /// Number of applications.
    pub num_apps: usize,
    /// VMs per application (split over 3 tiers).
    pub vms_per_app: usize,
    /// Shared physical hosts.
    pub num_hosts: usize,
    /// Top-of-rack switches (each host attaches to one).
    pub num_switches: usize,
    /// Trace length in ticks.
    pub ticks: u64,
    /// Interval seconds per tick (the enterprise data set aggregates to
    /// minutes; 300 s here).
    pub interval_secs: u64,
    /// RNG seed.
    pub seed: u64,
}

impl EnterpriseConfig {
    /// A small configuration for tests (≈ a few hundred entities).
    pub fn small(seed: u64) -> Self {
        Self {
            num_apps: 6,
            vms_per_app: 6,
            num_hosts: 8,
            num_switches: 2,
            ticks: 240,
            interval_secs: 300,
            seed,
        }
    }

    /// The paper's scale: ≈300 apps, ≈17K entities. Expensive — used by
    /// the Figure 8a reproduction at full fidelity.
    pub fn paper_scale(seed: u64) -> Self {
        Self {
            num_apps: 300,
            vms_per_app: 21,
            num_hosts: 140,
            num_switches: 12,
            ticks: 300,
            interval_secs: 300,
            seed,
        }
    }

    /// Rough entity-count estimate for this configuration.
    pub fn estimated_entities(&self) -> usize {
        // Per app: VMs + vNICs + two inter-tier flows per tier slot.
        let per_tier = (self.vms_per_app / 3).max(1);
        let per_app = per_tier * 3 * 2 + per_tier * 2;
        // Per host: host + pNIC + switch port; plus the switches.
        self.num_apps * per_app + self.num_hosts * 3 + self.num_switches
    }
}

/// One generated application's handles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppHandles {
    /// Application name (`"app42"`).
    pub name: String,
    /// Web-tier VMs.
    pub web: Vec<EntityId>,
    /// App-tier VMs.
    pub app: Vec<EntityId>,
    /// DB-tier VMs.
    pub db: Vec<EntityId>,
    /// Inter-tier flows (web→app then app→db).
    pub flows: Vec<EntityId>,
}

impl AppHandles {
    /// All VM entities of the app.
    pub fn vms(&self) -> Vec<EntityId> {
        self.web
            .iter()
            .chain(&self.app)
            .chain(&self.db)
            .copied()
            .collect()
    }
}

/// A generated enterprise: database plus handles.
#[derive(Debug, Clone)]
pub struct Enterprise {
    /// The populated monitoring database.
    pub db: MonitoringDb,
    /// Per-application handles.
    pub apps: Vec<AppHandles>,
    /// Host entities.
    pub hosts: Vec<EntityId>,
    /// Switch entities.
    pub switches: Vec<EntityId>,
}

/// Generate an enterprise per `config`.
pub fn generate(config: &EnterpriseConfig) -> Enterprise {
    let mut db = MonitoringDb::new(config.interval_secs);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // --- infrastructure ---------------------------------------------------
    let switches: Vec<EntityId> = (0..config.num_switches)
        .map(|i| db.add_entity(EntityKind::Switch, format!("tor{i}")))
        .collect();
    let mut hosts = Vec::with_capacity(config.num_hosts);
    let mut host_ports = Vec::with_capacity(config.num_hosts);
    for i in 0..config.num_hosts {
        let host = db.add_entity(EntityKind::Host, format!("host{i}"));
        let pnic = db.add_entity(EntityKind::PhysicalNic, format!("host{i}-pnic"));
        let port = db.add_entity(EntityKind::SwitchInterface, format!("tor{}-p{}", i % config.num_switches, i));
        db.relate(host, pnic, AssociationKind::HasNic);
        db.relate(pnic, port, AssociationKind::AttachedToPort);
        db.relate(port, switches[i % config.num_switches], AssociationKind::PortOnSwitch);
        hosts.push(host);
        host_ports.push(port);
    }

    // --- applications ------------------------------------------------------
    let mut apps = Vec::with_capacity(config.num_apps);
    // host index each VM resides on, per app per VM (for metric coupling).
    let mut vm_host: Vec<(EntityId, usize)> = Vec::new();
    for a in 0..config.num_apps {
        let name = format!("app{a}");
        let per_tier = (config.vms_per_app / 3).max(1);
        let mut tiers: [Vec<EntityId>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (ti, tier_name) in ["web", "app", "db"].iter().enumerate() {
            for v in 0..per_tier {
                let vm = db.add_entity(EntityKind::Vm, format!("{name}-{tier_name}{v}"));
                let vnic = db.add_entity(EntityKind::VirtualNic, format!("{name}-{tier_name}{v}-vnic"));
                let h = rng.gen_range(0..config.num_hosts);
                db.relate(vm, vnic, AssociationKind::HasNic);
                db.relate(vm, hosts[h], AssociationKind::RunsOn);
                db.tag_application(name.clone(), vm);
                vm_host.push((vm, h));
                tiers[ti].push(vm);
            }
        }
        // Inter-tier flows: web[i] → app[i], app[i] → db[i].
        let mut flows = Vec::new();
        for i in 0..per_tier {
            for (src, dst) in [(&tiers[0], &tiers[1]), (&tiers[1], &tiers[2])] {
                let flow = db.add_entity(
                    EntityKind::Flow,
                    format!("{name}-flow-{}-{}", db.entity(src[i]).unwrap().name, db.entity(dst[i]).unwrap().name),
                );
                db.relate(flow, src[i], AssociationKind::FlowSource);
                db.relate(flow, dst[i], AssociationKind::FlowDestination);
                // Communicating VMs are directly related too (application
                // discovery infers this from flow patterns) — this is what
                // makes length-3 cycles the norm, §2.2.
                db.relate(src[i], dst[i], AssociationKind::Related);
                db.tag_application(name.clone(), flow);
                flows.push(flow);
            }
        }
        apps.push(AppHandles {
            name,
            web: tiers[0].clone(),
            app: tiers[1].clone(),
            db: tiers[2].clone(),
            flows,
        });
    }

    // --- metric synthesis ---------------------------------------------------
    // Latent per-app load: diurnal sinusoid with per-app phase + AR noise.
    let mut app_phase: Vec<f64> = (0..config.num_apps).map(|_| rng.gen_range(0.0..6.28)).collect();
    let app_scale: Vec<f64> = (0..config.num_apps).map(|_| rng.gen_range(0.5..1.8)).collect();
    if app_phase.is_empty() {
        app_phase.push(0.0);
    }
    let day_ticks = (86_400 / config.interval_secs.max(1)) as f64;

    // Per-tick sample buffer, flushed through the sharded bulk-ingest path
    // (one pool job per shard) instead of one map probe per `record` call.
    // Flushing each tick keeps the buffer small even at paper scale.
    let mut samples: Vec<MetricSample> = Vec::new();
    for t in 0..config.ticks {
        let mut host_cpu = vec![0.0f64; config.num_hosts];
        let mut host_net = vec![0.0f64; config.num_hosts];
        let mut host_vm_count = vec![0usize; config.num_hosts];
        // Running index into `vm_host`, which was pushed in exactly the
        // app/tier/vm order iterated below — so accumulating host
        // aggregates inline here visits hosts in the same order (and thus
        // produces bit-identical f64 sums) as the former read-back loop.
        let mut vi = 0usize;

        for (a, app) in apps.iter().enumerate() {
            let diurnal = ((t as f64) * 2.0 * std::f64::consts::PI / day_ticks + app_phase[a]).sin();
            let load = (40.0 + 25.0 * diurnal) * app_scale[a] + gaussian(&mut rng) * 4.0;
            let load = load.max(1.0);

            let tier_weight = |tier: usize| match tier {
                0 => 0.6,
                1 => 1.0,
                _ => 0.8,
            };
            for (tier, vms) in [(0, &app.web), (1, &app.app), (2, &app.db)] {
                for &vm in vms {
                    let cpu = (load * tier_weight(tier) * 0.6 + gaussian(&mut rng) * 2.0)
                        .clamp(0.0, 100.0);
                    let mem = (25.0 + load * 0.3 + gaussian(&mut rng) * 2.0).clamp(0.0, 100.0);
                    let tx = (load * 1.5 + gaussian(&mut rng) * 3.0).max(0.0);
                    samples.push(MetricSample::new(vm, MetricKind::CpuUtil, t, cpu));
                    samples.push(MetricSample::new(vm, MetricKind::MemUtil, t, mem));
                    samples.push(MetricSample::new(vm, MetricKind::NetTx, t, tx));
                    samples.push(MetricSample::new(vm, MetricKind::NetRx, t, (tx * 0.8).max(0.0)));
                    samples.push(MetricSample::new(vm, MetricKind::DropRate, t, 0.0));
                    // vNIC mirrors the VM's traffic (vNIC id = vm id + 1 by
                    // construction).
                    let vnic = EntityId(vm.0 + 1);
                    samples.push(MetricSample::new(vnic, MetricKind::NetTx, t, tx));
                    samples.push(MetricSample::new(vnic, MetricKind::NetRx, t, (tx * 0.8).max(0.0)));
                    samples.push(MetricSample::new(vnic, MetricKind::DropRate, t, 0.0));
                    // Host aggregation (shared-resource coupling), from the
                    // values just synthesized — no read-back needed.
                    let (vm_again, h) = vm_host[vi];
                    debug_assert_eq!(vm_again, vm, "vm_host order drifted");
                    vi += 1;
                    host_cpu[h] += cpu;
                    host_net[h] += tx;
                    host_vm_count[h] += 1;
                }
            }
            for &flow in &app.flows {
                samples.push(MetricSample::new(flow, MetricKind::Throughput, t, (load * 2.0 + gaussian(&mut rng) * 4.0).max(0.0)));
                samples.push(MetricSample::new(flow, MetricKind::SessionCount, t, (load * 0.4 + gaussian(&mut rng)).max(0.0)));
                samples.push(MetricSample::new(flow, MetricKind::Rtt, t, (2.0 + load * 0.01 + gaussian(&mut rng) * 0.2).max(0.1)));
                samples.push(MetricSample::new(flow, MetricKind::RetransmitRatio, t, 0.0));
            }
        }

        for h in 0..config.num_hosts {
            let denom = host_vm_count[h].max(1) as f64;
            samples.push(MetricSample::new(hosts[h], MetricKind::CpuUtil, t, (host_cpu[h] / denom).clamp(0.0, 100.0)));
            samples.push(MetricSample::new(hosts[h], MetricKind::NetTx, t, host_net[h].max(0.0)));
            samples.push(MetricSample::new(host_ports[h], MetricKind::NetTx, t, host_net[h].max(0.0)));
            samples.push(MetricSample::new(host_ports[h], MetricKind::DropRate, t, 0.0));
            samples.push(MetricSample::new(host_ports[h], MetricKind::BufferUtil, t, (host_net[h] * 0.02).clamp(0.0, 100.0)));
        }
        for (si, &sw) in switches.iter().enumerate() {
            let total: f64 = (0..config.num_hosts)
                .filter(|h| h % config.num_switches == si)
                .map(|h| host_net[h])
                .sum();
            samples.push(MetricSample::new(sw, MetricKind::NetTx, t, total.max(0.0)));
            samples.push(MetricSample::new(sw, MetricKind::DropRate, t, 0.0));
        }

        db.record_batch(&samples);
        samples.clear();
    }

    Enterprise {
        db,
        apps,
        hosts,
        switches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murphy_telemetry::MetricId;

    #[test]
    fn small_enterprise_structure() {
        let ent = generate(&EnterpriseConfig::small(1));
        assert_eq!(ent.apps.len(), 6);
        assert_eq!(ent.hosts.len(), 8);
        assert_eq!(ent.switches.len(), 2);
        // Each app: 2 VMs per tier × 3 tiers + flows.
        let app0 = &ent.apps[0];
        assert_eq!(app0.vms().len(), 6);
        assert_eq!(app0.flows.len(), 4);
        // App membership is tagged.
        let members = ent.db.application_members("app0");
        assert_eq!(members.len(), 6 + 4);
    }

    #[test]
    fn estimated_entities_tracks_actual() {
        let config = EnterpriseConfig::small(2);
        let ent = generate(&config);
        let actual = ent.db.entity_count();
        let est = config.estimated_entities();
        assert!(
            (actual as f64 - est as f64).abs() / actual as f64 <= 0.4,
            "estimate {est} vs actual {actual}"
        );
    }

    #[test]
    fn paper_scale_estimate_is_about_17k() {
        let est = EnterpriseConfig::paper_scale(0).estimated_entities();
        assert!(
            (12_000..=24_000).contains(&est),
            "paper-scale estimate = {est}"
        );
    }

    #[test]
    fn host_cpu_couples_resident_vms() {
        let ent = generate(&EnterpriseConfig::small(3));
        // Host CPU must correlate with the mean of its resident VMs' CPU.
        let host = ent.hosts[0];
        let resident: Vec<EntityId> = ent
            .db
            .neighbors(host)
            .into_iter()
            .filter(|&e| ent.db.entity(e).map(|x| x.kind) == Some(EntityKind::Vm))
            .collect();
        if resident.is_empty() {
            return; // unlucky seed: no VMs on host0
        }
        let host_series = ent
            .db
            .series(MetricId::new(host, MetricKind::CpuUtil))
            .unwrap()
            .window(0, 240, 0.0);
        let mut mean_series = vec![0.0; 240];
        for &vm in &resident {
            let s = ent
                .db
                .series(MetricId::new(vm, MetricKind::CpuUtil))
                .unwrap()
                .window(0, 240, 0.0);
            for (m, v) in mean_series.iter_mut().zip(&s) {
                *m += v / resident.len() as f64;
            }
        }
        let r = murphy_stats::pearson(&host_series, &mean_series);
        assert!(r > 0.95, "host/VM coupling r = {r}");
    }

    #[test]
    fn graphs_built_from_apps_have_cycles() {
        // §2.2: cycles are the norm in enterprise relationship graphs.
        let ent = generate(&EnterpriseConfig::small(4));
        let members = ent.db.application_members("app0");
        let graph = murphy_graph::build_from_seeds(
            &ent.db,
            &members,
            murphy_graph::BuildOptions::four_hops(),
        );
        let stats = murphy_graph::CycleStats::count(&graph);
        assert!(stats.len2 > 10, "len-2 cycles = {}", stats.len2);
        assert!(stats.len3 > 0, "len-3 cycles = {}", stats.len3);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(&EnterpriseConfig::small(5));
        let b = generate(&EnterpriseConfig::small(5));
        let vm = a.apps[0].web[0];
        let m = MetricId::new(vm, MetricKind::CpuUtil);
        assert_eq!(
            a.db.series(m).unwrap().values(),
            b.db.series(m).unwrap().values()
        );
    }

    #[test]
    fn vnic_id_convention_holds() {
        // Metric synthesis relies on vNIC id = VM id + 1; verify.
        let ent = generate(&EnterpriseConfig::small(6));
        for app in &ent.apps {
            for vm in app.vms() {
                let vnic = EntityId(vm.0 + 1);
                let e = ent.db.entity(vnic).expect("vnic exists");
                assert_eq!(e.kind, EntityKind::VirtualNic, "entity after {vm} is {e:?}");
            }
        }
    }
}
