//! Counterfactual candidate evaluation (§4.2, steps 1–4).
//!
//! To test whether entity `A` is a root cause for the symptom `(M_o, E_o)`:
//!
//! 1. set `A`'s most anomalous metric to a counterfactual value 2σ toward
//!    normal;
//! 2. resample the shortest-path subgraph `T(A→E_o)` in increasing
//!    distance from `A`, `W` times;
//! 3. read a resampled value of the symptom metric — one `d1` sample;
//!    repeat with `A`'s *factual* current value for `d2`;
//! 4. generate `num_samples` of each and run a Welch t-test: if the `d1`
//!    samples are significantly below the `d2` samples (for a
//!    problematically-high symptom), `A` is a root cause.

use crate::config::MurphyConfig;
use crate::diagnose::Symptom;
use crate::mrf::MrfModel;
use crate::pool::WorkerPool;
use crate::sampler::{resample_planned, ResamplePlan};
use murphy_graph::{RelationshipGraph, ShortestPathSubgraph, SymptomDistances};
use murphy_stats::{welch_t_test, TTestResult};
use murphy_telemetry::EntityId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Outcome of evaluating one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateVerdict {
    /// Whether the t-test declared the candidate a root cause.
    pub is_root_cause: bool,
    /// Mean of the counterfactual samples d1.
    pub counterfactual_mean: f64,
    /// Mean of the factual samples d2.
    pub factual_mean: f64,
    /// One-sided p-value of the decisive comparison.
    pub p_value: f64,
    /// Graph distance from the candidate to the symptom entity.
    pub distance: usize,
}

/// Evaluate one candidate root cause against the symptom.
///
/// Returns `None` when the candidate cannot influence the symptom at all:
/// it has no path to the symptom entity, no metrics, or its state is
/// already at the counterfactual (no anomaly to undo).
pub fn evaluate_candidate(
    mrf: &MrfModel,
    graph: &RelationshipGraph,
    symptom: &Symptom,
    candidate: EntityId,
    config: &MurphyConfig,
    seed: u64,
) -> Option<CandidateVerdict> {
    let subgraph = ShortestPathSubgraph::compute_with_slack(
        graph,
        candidate,
        symptom.entity,
        config.subgraph_slack,
    )?;
    let plan = ResamplePlan::new(mrf, graph, &subgraph);
    evaluate_with_plan(mrf, symptom, candidate, &subgraph, &plan, config, seed)
}

/// One candidate's memoized setup: its shortest-path subgraph and the
/// (possibly shared) resampling plan derived from it.
///
/// Produced by [`SymptomContext::prepare`]; consumed by
/// [`evaluate_candidate_prepared`], which replays the exact draw loop of
/// [`evaluate_candidate`] without redoing the BFS or the plan build.
#[derive(Debug, Clone)]
pub struct PreparedCandidate {
    /// The candidate root cause this setup belongs to.
    pub entity: EntityId,
    /// Its shortest-path subgraph `T(A→E_o)` (with slack).
    pub subgraph: ShortestPathSubgraph,
    /// The flattened resampling schedule. Candidates whose subgraphs
    /// coincide share one interned plan.
    pub plan: Arc<ResamplePlan>,
}

/// Per-symptom memoization of everything the candidate loop can share.
///
/// After PR 1's allocation-free Gibbs kernel, the dominant per-candidate
/// setup cost in [`evaluate_candidate`] is the `ShortestPathSubgraph`
/// BFS pair plus the [`ResamplePlan`] build — work that is heavily
/// redundant across the candidates of one symptom. A `SymptomContext`
/// computes, once per symptom entity:
///
/// * one **reverse BFS** from the symptom ([`SymptomDistances`]), which
///   yields every candidate's distance-to-symptom at once and halves the
///   per-candidate traversal (only the forward BFS remains);
/// * per-candidate **subgraphs** derived from those shared distances
///   (optionally fanned out over the [`WorkerPool`]);
/// * an **interner** that caches `ResamplePlan`s keyed by subgraph order,
///   so candidates whose subgraphs coincide share one plan allocation.
///
/// The context is prepared up front and then read — immutably, so it can
/// be shared across the worker pool without locks — by the evaluation
/// fan-out. It is keyed by the symptom *entity*: symptoms that differ
/// only in metric (or batch runs revisiting an entity) reuse the same
/// prepared candidates, as long as the same trained [`MrfModel`] is used
/// throughout (plans index into that model's metric positions).
#[derive(Debug)]
pub struct SymptomContext {
    target: EntityId,
    slack: usize,
    /// The graph the context was built over, shared so the persistent
    /// pool's `'static` subgraph jobs can hold it without borrowing.
    graph: Arc<RelationshipGraph>,
    distances: Option<Arc<SymptomDistances>>,
    prepared: BTreeMap<EntityId, Option<Arc<PreparedCandidate>>>,
    plans: BTreeMap<Vec<usize>, Arc<ResamplePlan>>,
    plans_built: usize,
    plans_reused: usize,
}

impl SymptomContext {
    /// A context for one symptom entity: runs the single reverse BFS and
    /// snapshots the graph for the pool fan-out.
    pub fn new(graph: &RelationshipGraph, target: EntityId, slack: usize) -> Self {
        Self {
            target,
            slack,
            graph: Arc::new(graph.clone()),
            distances: SymptomDistances::compute(graph, target).map(Arc::new),
            prepared: BTreeMap::new(),
            plans: BTreeMap::new(),
            plans_built: 0,
            plans_reused: 0,
        }
    }

    /// The symptom entity this context memoizes for.
    pub fn target(&self) -> EntityId {
        self.target
    }

    /// Compute (or reuse) the subgraph + plan for every listed candidate.
    ///
    /// Subgraph derivation is pure and fans out over `pool` when given
    /// (against the context's own graph snapshot); plan interning is
    /// sequential (it deduplicates against the cache). Candidates already
    /// prepared by an earlier call are skipped, which is what lets batch
    /// diagnosis reuse one context across symptoms.
    pub fn prepare(&mut self, mrf: &MrfModel, candidates: &[EntityId], pool: Option<&WorkerPool>) {
        let missing: Vec<EntityId> = candidates
            .iter()
            .copied()
            .filter(|c| !self.prepared.contains_key(c))
            .collect();
        if missing.is_empty() {
            return;
        }
        let Some(rev) = &self.distances else {
            // Symptom entity not in the graph: nothing is reachable.
            for c in missing {
                self.prepared.insert(c, None);
            }
            return;
        };
        let slack = self.slack;
        let subgraphs: Vec<Option<ShortestPathSubgraph>> = match pool {
            Some(pool) if missing.len() > 1 => {
                let graph = Arc::clone(&self.graph);
                let rev = Arc::clone(rev);
                let jobs = missing.clone();
                pool.run_indexed(jobs.len(), move |i| {
                    ShortestPathSubgraph::compute_with_slack_from(&graph, jobs[i], &rev, slack)
                })
            }
            _ => missing
                .iter()
                .map(|&c| {
                    ShortestPathSubgraph::compute_with_slack_from(&self.graph, c, rev, slack)
                })
                .collect(),
        };
        for (&c, subgraph) in missing.iter().zip(subgraphs) {
            let entry = subgraph.map(|subgraph| {
                let plan = match self.plans.get(subgraph.order.as_slice()) {
                    Some(plan) => {
                        self.plans_reused += 1;
                        Arc::clone(plan)
                    }
                    None => {
                        self.plans_built += 1;
                        let plan = Arc::new(ResamplePlan::new(mrf, &self.graph, &subgraph));
                        self.plans.insert(subgraph.order.clone(), Arc::clone(&plan));
                        plan
                    }
                };
                Arc::new(PreparedCandidate {
                    entity: c,
                    subgraph,
                    plan,
                })
            });
            self.prepared.insert(c, entry);
        }
    }

    /// The prepared setup for a candidate; `None` when the candidate was
    /// never prepared or cannot reach the symptom.
    pub fn prepared(&self, candidate: EntityId) -> Option<&PreparedCandidate> {
        self.prepared.get(&candidate)?.as_deref()
    }

    /// Like [`SymptomContext::prepared`] but returns an owning handle, so
    /// the diagnosis fan-out can hand the setup to `'static` pool jobs.
    pub fn prepared_shared(&self, candidate: EntityId) -> Option<Arc<PreparedCandidate>> {
        self.prepared.get(&candidate)?.as_ref().map(Arc::clone)
    }

    /// How many distinct plans were built (cache misses).
    pub fn plans_built(&self) -> usize {
        self.plans_built
    }

    /// How many plan builds were avoided by the interner (cache hits).
    pub fn plans_reused(&self) -> usize {
        self.plans_reused
    }
}

/// [`evaluate_candidate`] with the per-candidate setup memoized away:
/// identical verdicts (bit-for-bit for a fixed seed), zero BFS and zero
/// plan construction per call.
pub fn evaluate_candidate_prepared(
    mrf: &MrfModel,
    symptom: &Symptom,
    prepared: &PreparedCandidate,
    config: &MurphyConfig,
    seed: u64,
) -> Option<CandidateVerdict> {
    evaluate_with_plan(
        mrf,
        symptom,
        prepared.entity,
        &prepared.subgraph,
        &prepared.plan,
        config,
        seed,
    )
}

/// The shared draw loop behind both evaluation entry points. Keeping one
/// body is what pins the determinism contract: memoized and legacy paths
/// consume the RNG identically by construction.
fn evaluate_with_plan(
    mrf: &MrfModel,
    symptom: &Symptom,
    candidate: EntityId,
    subgraph: &ShortestPathSubgraph,
    plan: &ResamplePlan,
    config: &MurphyConfig,
    seed: u64,
) -> Option<CandidateVerdict> {
    let symptom_pos = mrf.index.position(symptom.metric_id())?;

    // The counterfactual state of A: every anomalous metric of the entity
    // (z ≥ 1) moved `counterfactual_sigmas` toward normal. Figure 3 treats
    // the entity's state as the MRF variable ("change A to A*"); with
    // multiple metrics per entity that means pinning all the anomalous
    // ones, not just the single most anomalous (whose identity is noisy
    // when the incident inflates every σ).
    let mut pins: Vec<(usize, f64, f64)> = mrf
        .index
        .entity_positions(candidate)
        .iter()
        .filter(|&&p| mrf.metric_anomaly(p) >= 1.0)
        .map(|&p| {
            (
                p,
                mrf.counterfactual_value(p, config.counterfactual_sigmas),
                mrf.current[p],
            )
        })
        .filter(|&(_, cf, cur)| (cf - cur).abs() > 1e-12)
        .collect();
    if pins.is_empty() {
        // Nothing anomalous: fall back to the single most anomalous metric.
        let p = mrf.most_anomalous_metric(candidate)?;
        let cf = mrf.counterfactual_value(p, config.counterfactual_sigmas);
        if (cf - mrf.current[p]).abs() < 1e-12 {
            return None; // nothing to change
        }
        pins.push((p, cf, mrf.current[p]));
    }

    // Everything the draw loop needs is computed once, up front: the
    // resampling schedule, the save/restore set (exactly the positions a
    // run can mutate), and the feature scratch buffer. The loop itself —
    // restore, pin, resample, read — then runs without heap allocation.
    let mut scratch = plan.scratch();
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.num_samples.max(2);

    let mut state = mrf.current.clone();
    let saved: Vec<f64> = plan.positions().iter().map(|&p| state[p]).collect();
    let mut draw = |counterfactual: bool, rng: &mut StdRng| -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            for (&p, &v) in plan.positions().iter().zip(&saved) {
                state[p] = v;
            }
            for &(p, cf, cur) in &pins {
                state[p] = if counterfactual { cf } else { cur };
            }
            resample_planned(mrf, plan, &mut state, config.gibbs_rounds, rng, &mut scratch);
            out.push(state[symptom_pos]);
            for &(p, _, cur) in &pins {
                state[p] = cur;
            }
        }
        out
    };

    let d1 = draw(true, &mut rng);
    let d2 = draw(false, &mut rng);
    let ttest: TTestResult = welch_t_test(&d1, &d2);

    // For a problematically *high* symptom, the counterfactual must lower
    // it; for a low symptom (e.g. collapsed throughput), raise it. In
    // addition to significance, the relief must be practically meaningful
    // relative to the symptom metric's historical variation — with 5,000
    // samples the t-test alone flags negligible-but-real influences.
    let symptom_std = mrf.history[symptom_pos].std_dev_floored(1e-6);
    let min_relief = config.min_relief_sigmas * symptom_std;
    let relief = mean(&d2) - mean(&d1); // positive when counterfactual lowers
    let (is_root_cause, p_value) = if symptom.is_high() {
        (
            ttest.significantly_less(config.alpha) && relief >= min_relief,
            ttest.p_less,
        )
    } else {
        (
            ttest.significantly_greater(config.alpha) && -relief >= min_relief,
            ttest.p_greater,
        )
    };

    // NaN sanitization at construction: a degenerate history window (zero
    // variance, too-short series) can push NaN through the t-test. The
    // verdict's derived `PartialEq` and every downstream `total_cmp`-based
    // ranking rely on these fields being comparable, so a NaN p-value
    // becomes the least-significant 1.0 and NaN means become 0.0 — the
    // worst possible rank, never a scrambled one.
    Some(CandidateVerdict {
        is_root_cause,
        counterfactual_mean: sanitize_nan(mean(&d1), 0.0),
        factual_mean: sanitize_nan(mean(&d2), 0.0),
        p_value: sanitize_nan(p_value, 1.0),
        distance: subgraph.distance,
    })
}

/// Replace NaN with a caller-chosen worst-rank fallback.
fn sanitize_nan(x: f64, fallback: f64) -> f64 {
    if x.is_nan() {
        fallback
    } else {
        x
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnose::{ProblemDirection, Symptom};
    use crate::training::{train_mrf, TrainingWindow};
    use murphy_graph::{build_from_seeds, BuildOptions};
    use murphy_telemetry::{AssociationKind, EntityKind, MetricKind, MonitoringDb};

    /// driver → victim coupling plus an innocent bystander: the driver's
    /// CPU determines the victim's CPU; the bystander wiggles on its own.
    /// During the "incident" (last ticks) the driver spikes and the victim
    /// follows.
    fn incident_env() -> (
        MonitoringDb,
        RelationshipGraph,
        EntityId, // driver (true root cause)
        EntityId, // victim (symptom entity)
        EntityId, // bystander
    ) {
        let mut db = MonitoringDb::new(10);
        let driver = db.add_entity(EntityKind::Vm, "driver");
        let victim = db.add_entity(EntityKind::Vm, "victim");
        let bystander = db.add_entity(EntityKind::Vm, "bystander");
        db.relate(driver, victim, AssociationKind::Related);
        db.relate(bystander, victim, AssociationKind::Related);
        for t in 0..200u64 {
            let spike = if t >= 180 { 60.0 } else { 0.0 };
            let drv = 15.0 + 5.0 * ((t as f64) * 0.37).sin() + spike;
            let by = 20.0 + 5.0 * ((t as f64) * 0.53).cos();
            db.record(driver, MetricKind::CpuUtil, t, drv);
            db.record(bystander, MetricKind::CpuUtil, t, by);
            db.record(victim, MetricKind::CpuUtil, t, 0.9 * drv + 0.05 * by + 3.0);
        }
        let graph = build_from_seeds(&db, &[victim], BuildOptions::default());
        (db, graph, driver, victim, bystander)
    }

    fn setup() -> (Arc<MrfModel>, RelationshipGraph, Symptom, EntityId, EntityId) {
        let (db, graph, driver, victim, bystander) = incident_env();
        let config = MurphyConfig::fast();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 150), db.latest_tick());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);
        (mrf, graph, symptom, driver, bystander)
    }

    #[test]
    fn true_root_cause_is_confirmed() {
        let (mrf, graph, symptom, driver, _) = setup();
        let config = MurphyConfig::fast();
        let verdict = evaluate_candidate(&mrf, &graph, &symptom, driver, &config, 11)
            .expect("driver has a path and metrics");
        assert!(verdict.is_root_cause, "verdict: {verdict:?}");
        assert!(verdict.counterfactual_mean < verdict.factual_mean);
        assert_eq!(verdict.distance, 1);
    }

    #[test]
    fn weak_influence_is_rejected() {
        let (mrf, graph, symptom, _, bystander) = setup();
        let config = MurphyConfig::fast();
        // The bystander has a path to the victim but its influence weight
        // is ~0.05 and it is not anomalous; lowering it barely moves the
        // victim. It may be evaluated, but must not be confirmed.
        if let Some(verdict) =
            evaluate_candidate(&mrf, &graph, &symptom, bystander, &config, 12)
        {
            assert!(
                !verdict.is_root_cause,
                "bystander wrongly confirmed: {verdict:?}"
            );
        }
    }

    #[test]
    fn unreachable_candidate_is_skipped() {
        let (db, _, _, victim, _) = incident_env();
        // Fresh graph with an isolated node.
        let mut db2 = db.clone();
        let loner = db2.add_entity(EntityKind::Vm, "loner");
        for t in 0..200u64 {
            db2.record(loner, MetricKind::CpuUtil, t, 80.0);
        }
        let graph = build_from_seeds(&db2, &[victim], BuildOptions::default());
        let config = MurphyConfig::fast();
        let mrf = train_mrf(&db2, &graph, &config, TrainingWindow::online(&db2, 150), db2.latest_tick());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);
        assert!(evaluate_candidate(&mrf, &graph, &symptom, loner, &config, 1).is_none());
    }

    #[test]
    fn missing_symptom_metric_is_skipped() {
        let (mrf, graph, _, driver, _) = setup();
        let config = MurphyConfig::fast();
        let bogus = Symptom::high(EntityId(999), MetricKind::Latency);
        assert!(evaluate_candidate(&mrf, &graph, &bogus, driver, &config, 1).is_none());
    }

    #[test]
    fn low_symptom_reverses_the_test() {
        // Build an env where the driver's spike *lowers* the victim's
        // throughput; diagnosing the LOW symptom should confirm the driver.
        let mut db = MonitoringDb::new(10);
        let driver = db.add_entity(EntityKind::Vm, "driver");
        let victim = db.add_entity(EntityKind::Flow, "victim-flow");
        db.relate(driver, victim, AssociationKind::Related);
        for t in 0..200u64 {
            let spike = if t >= 180 { 70.0 } else { 0.0 };
            let drv = 10.0 + 4.0 * ((t as f64) * 0.41).sin() + spike;
            db.record(driver, MetricKind::CpuUtil, t, drv);
            // Throughput collapses as driver CPU rises.
            db.record(victim, MetricKind::Throughput, t, (2000.0 - 20.0 * drv).max(0.0));
        }
        let graph = build_from_seeds(&db, &[victim], BuildOptions::default());
        let config = MurphyConfig::fast();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 150), db.latest_tick());
        let symptom = Symptom {
            entity: victim,
            metric: MetricKind::Throughput,
            direction: ProblemDirection::Low,
        };
        let verdict = evaluate_candidate(&mrf, &graph, &symptom, driver, &config, 5)
            .expect("reachable");
        assert!(verdict.is_root_cause, "verdict: {verdict:?}");
        assert!(verdict.counterfactual_mean > verdict.factual_mean);
    }

    #[test]
    fn deterministic_given_seed() {
        let (mrf, graph, symptom, driver, _) = setup();
        let config = MurphyConfig::fast();
        let a = evaluate_candidate(&mrf, &graph, &symptom, driver, &config, 42).unwrap();
        let b = evaluate_candidate(&mrf, &graph, &symptom, driver, &config, 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn prepared_evaluation_matches_legacy() {
        let (mrf, graph, symptom, driver, bystander) = setup();
        let config = MurphyConfig::fast();
        let mut ctx = SymptomContext::new(&graph, symptom.entity, config.subgraph_slack);
        ctx.prepare(&mrf, &[driver, bystander], None);
        for c in [driver, bystander] {
            let legacy = evaluate_candidate(&mrf, &graph, &symptom, c, &config, 42);
            let memoized = ctx
                .prepared(c)
                .and_then(|p| evaluate_candidate_prepared(&mrf, &symptom, p, &config, 42));
            assert_eq!(legacy, memoized, "candidate {c:?}");
        }
    }

    #[test]
    fn prepare_is_idempotent_and_caches_unreachable() {
        let (mrf, graph, symptom, driver, _) = setup();
        let config = MurphyConfig::fast();
        let mut ctx = SymptomContext::new(&graph, symptom.entity, config.subgraph_slack);
        ctx.prepare(&mrf, &[driver, EntityId(999)], None);
        assert!(ctx.prepared(driver).is_some());
        assert!(ctx.prepared(EntityId(999)).is_none());
        let built = ctx.plans_built();
        // Re-preparing the same candidates does no new work.
        ctx.prepare(&mrf, &[driver, EntityId(999)], None);
        assert_eq!(ctx.plans_built(), built);
    }

    #[test]
    fn coinciding_subgraphs_share_one_interned_plan() {
        use crate::mrf::{MetricIndex, MrfModel};
        use murphy_stats::Summary;
        use murphy_telemetry::MetricId;
        // Two direct predecessors of the symptom in a one-way graph: both
        // subgraphs are exactly [symptom], so the interner must hand out
        // one shared plan.
        let mut graph = RelationshipGraph::new();
        for i in 0..3 {
            graph.add_node(EntityId(i));
        }
        graph.add_edge(EntityId(0), EntityId(2));
        graph.add_edge(EntityId(1), EntityId(2));
        let hist = Summary::of(&[9.0, 10.0, 11.0, 10.0]);
        let mrf = MrfModel {
            index: MetricIndex::new(vec![
                MetricId::new(EntityId(0), MetricKind::CpuUtil),
                MetricId::new(EntityId(1), MetricKind::CpuUtil),
                MetricId::new(EntityId(2), MetricKind::CpuUtil),
            ]),
            factors: vec![None, None, None],
            current: vec![50.0, 50.0, 50.0],
            history: vec![hist, hist, hist],
            reference: vec![hist, hist, hist],
            train_stats: Default::default(),
        };
        let mut ctx = SymptomContext::new(&graph, EntityId(2), 0);
        ctx.prepare(&mrf, &[EntityId(0), EntityId(1)], None);
        let a = ctx.prepared(EntityId(0)).expect("reachable");
        let b = ctx.prepared(EntityId(1)).expect("reachable");
        assert_eq!(a.subgraph.order, b.subgraph.order);
        assert!(Arc::ptr_eq(&a.plan, &b.plan), "plan not shared");
        assert_eq!(ctx.plans_built(), 1);
        assert_eq!(ctx.plans_reused(), 1);
    }

    #[test]
    fn nan_sanitization_helper() {
        assert_eq!(sanitize_nan(f64::NAN, 1.0), 1.0);
        assert_eq!(sanitize_nan(0.25, 1.0), 0.25);
        assert_eq!(sanitize_nan(f64::INFINITY, 1.0), f64::INFINITY);
    }
}
