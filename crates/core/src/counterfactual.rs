//! Counterfactual candidate evaluation (§4.2, steps 1–4).
//!
//! To test whether entity `A` is a root cause for the symptom `(M_o, E_o)`:
//!
//! 1. set `A`'s most anomalous metric to a counterfactual value 2σ toward
//!    normal;
//! 2. resample the shortest-path subgraph `T(A→E_o)` in increasing
//!    distance from `A`, `W` times;
//! 3. read a resampled value of the symptom metric — one `d1` sample;
//!    repeat with `A`'s *factual* current value for `d2`;
//! 4. generate `num_samples` of each and run a Welch t-test: if the `d1`
//!    samples are significantly below the `d2` samples (for a
//!    problematically-high symptom), `A` is a root cause.

use crate::config::MurphyConfig;
use crate::diagnose::Symptom;
use crate::mrf::MrfModel;
use crate::sampler::{resample_planned, ResamplePlan};
use murphy_graph::{RelationshipGraph, ShortestPathSubgraph};
use murphy_stats::{welch_t_test, TTestResult};
use murphy_telemetry::EntityId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Outcome of evaluating one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateVerdict {
    /// Whether the t-test declared the candidate a root cause.
    pub is_root_cause: bool,
    /// Mean of the counterfactual samples d1.
    pub counterfactual_mean: f64,
    /// Mean of the factual samples d2.
    pub factual_mean: f64,
    /// One-sided p-value of the decisive comparison.
    pub p_value: f64,
    /// Graph distance from the candidate to the symptom entity.
    pub distance: usize,
}

/// Evaluate one candidate root cause against the symptom.
///
/// Returns `None` when the candidate cannot influence the symptom at all:
/// it has no path to the symptom entity, no metrics, or its state is
/// already at the counterfactual (no anomaly to undo).
pub fn evaluate_candidate(
    mrf: &MrfModel,
    graph: &RelationshipGraph,
    symptom: &Symptom,
    candidate: EntityId,
    config: &MurphyConfig,
    seed: u64,
) -> Option<CandidateVerdict> {
    let symptom_pos = mrf.index.position(symptom.metric_id())?;
    let subgraph = ShortestPathSubgraph::compute_with_slack(
        graph,
        candidate,
        symptom.entity,
        config.subgraph_slack,
    )?;

    // The counterfactual state of A: every anomalous metric of the entity
    // (z ≥ 1) moved `counterfactual_sigmas` toward normal. Figure 3 treats
    // the entity's state as the MRF variable ("change A to A*"); with
    // multiple metrics per entity that means pinning all the anomalous
    // ones, not just the single most anomalous (whose identity is noisy
    // when the incident inflates every σ).
    let mut pins: Vec<(usize, f64, f64)> = mrf
        .index
        .entity_positions(candidate)
        .iter()
        .filter(|&&p| mrf.metric_anomaly(p) >= 1.0)
        .map(|&p| {
            (
                p,
                mrf.counterfactual_value(p, config.counterfactual_sigmas),
                mrf.current[p],
            )
        })
        .filter(|&(_, cf, cur)| (cf - cur).abs() > 1e-12)
        .collect();
    if pins.is_empty() {
        // Nothing anomalous: fall back to the single most anomalous metric.
        let p = mrf.most_anomalous_metric(candidate)?;
        let cf = mrf.counterfactual_value(p, config.counterfactual_sigmas);
        if (cf - mrf.current[p]).abs() < 1e-12 {
            return None; // nothing to change
        }
        pins.push((p, cf, mrf.current[p]));
    }

    // Everything the draw loop needs is computed once, up front: the
    // resampling schedule, the save/restore set (exactly the positions a
    // run can mutate), and the feature scratch buffer. The loop itself —
    // restore, pin, resample, read — then runs without heap allocation.
    let plan = ResamplePlan::new(mrf, graph, &subgraph);
    let mut scratch = plan.scratch();
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.num_samples.max(2);

    let mut state = mrf.current.clone();
    let saved: Vec<f64> = plan.positions().iter().map(|&p| state[p]).collect();
    let mut draw = |counterfactual: bool, rng: &mut StdRng| -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            for (&p, &v) in plan.positions().iter().zip(&saved) {
                state[p] = v;
            }
            for &(p, cf, cur) in &pins {
                state[p] = if counterfactual { cf } else { cur };
            }
            resample_planned(mrf, &plan, &mut state, config.gibbs_rounds, rng, &mut scratch);
            out.push(state[symptom_pos]);
            for &(p, _, cur) in &pins {
                state[p] = cur;
            }
        }
        out
    };

    let d1 = draw(true, &mut rng);
    let d2 = draw(false, &mut rng);
    let ttest: TTestResult = welch_t_test(&d1, &d2);

    // For a problematically *high* symptom, the counterfactual must lower
    // it; for a low symptom (e.g. collapsed throughput), raise it. In
    // addition to significance, the relief must be practically meaningful
    // relative to the symptom metric's historical variation — with 5,000
    // samples the t-test alone flags negligible-but-real influences.
    let symptom_std = mrf.history[symptom_pos].std_dev_floored(1e-6);
    let min_relief = config.min_relief_sigmas * symptom_std;
    let relief = mean(&d2) - mean(&d1); // positive when counterfactual lowers
    let (is_root_cause, p_value) = if symptom.is_high() {
        (
            ttest.significantly_less(config.alpha) && relief >= min_relief,
            ttest.p_less,
        )
    } else {
        (
            ttest.significantly_greater(config.alpha) && -relief >= min_relief,
            ttest.p_greater,
        )
    };

    Some(CandidateVerdict {
        is_root_cause,
        counterfactual_mean: mean(&d1),
        factual_mean: mean(&d2),
        p_value,
        distance: subgraph.distance,
    })
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnose::{ProblemDirection, Symptom};
    use crate::training::{train_mrf, TrainingWindow};
    use murphy_graph::{build_from_seeds, BuildOptions};
    use murphy_telemetry::{AssociationKind, EntityKind, MetricKind, MonitoringDb};

    /// driver → victim coupling plus an innocent bystander: the driver's
    /// CPU determines the victim's CPU; the bystander wiggles on its own.
    /// During the "incident" (last ticks) the driver spikes and the victim
    /// follows.
    fn incident_env() -> (
        MonitoringDb,
        RelationshipGraph,
        EntityId, // driver (true root cause)
        EntityId, // victim (symptom entity)
        EntityId, // bystander
    ) {
        let mut db = MonitoringDb::new(10);
        let driver = db.add_entity(EntityKind::Vm, "driver");
        let victim = db.add_entity(EntityKind::Vm, "victim");
        let bystander = db.add_entity(EntityKind::Vm, "bystander");
        db.relate(driver, victim, AssociationKind::Related);
        db.relate(bystander, victim, AssociationKind::Related);
        for t in 0..200u64 {
            let spike = if t >= 180 { 60.0 } else { 0.0 };
            let drv = 15.0 + 5.0 * ((t as f64) * 0.37).sin() + spike;
            let by = 20.0 + 5.0 * ((t as f64) * 0.53).cos();
            db.record(driver, MetricKind::CpuUtil, t, drv);
            db.record(bystander, MetricKind::CpuUtil, t, by);
            db.record(victim, MetricKind::CpuUtil, t, 0.9 * drv + 0.05 * by + 3.0);
        }
        let graph = build_from_seeds(&db, &[victim], BuildOptions::default());
        (db, graph, driver, victim, bystander)
    }

    fn setup() -> (MrfModel, RelationshipGraph, Symptom, EntityId, EntityId) {
        let (db, graph, driver, victim, bystander) = incident_env();
        let config = MurphyConfig::fast();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 150), db.latest_tick());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);
        (mrf, graph, symptom, driver, bystander)
    }

    #[test]
    fn true_root_cause_is_confirmed() {
        let (mrf, graph, symptom, driver, _) = setup();
        let config = MurphyConfig::fast();
        let verdict = evaluate_candidate(&mrf, &graph, &symptom, driver, &config, 11)
            .expect("driver has a path and metrics");
        assert!(verdict.is_root_cause, "verdict: {verdict:?}");
        assert!(verdict.counterfactual_mean < verdict.factual_mean);
        assert_eq!(verdict.distance, 1);
    }

    #[test]
    fn weak_influence_is_rejected() {
        let (mrf, graph, symptom, _, bystander) = setup();
        let config = MurphyConfig::fast();
        // The bystander has a path to the victim but its influence weight
        // is ~0.05 and it is not anomalous; lowering it barely moves the
        // victim. It may be evaluated, but must not be confirmed.
        if let Some(verdict) =
            evaluate_candidate(&mrf, &graph, &symptom, bystander, &config, 12)
        {
            assert!(
                !verdict.is_root_cause,
                "bystander wrongly confirmed: {verdict:?}"
            );
        }
    }

    #[test]
    fn unreachable_candidate_is_skipped() {
        let (db, _, _, victim, _) = incident_env();
        // Fresh graph with an isolated node.
        let mut db2 = db.clone();
        let loner = db2.add_entity(EntityKind::Vm, "loner");
        for t in 0..200u64 {
            db2.record(loner, MetricKind::CpuUtil, t, 80.0);
        }
        let graph = build_from_seeds(&db2, &[victim], BuildOptions::default());
        let config = MurphyConfig::fast();
        let mrf = train_mrf(&db2, &graph, &config, TrainingWindow::online(&db2, 150), db2.latest_tick());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);
        assert!(evaluate_candidate(&mrf, &graph, &symptom, loner, &config, 1).is_none());
    }

    #[test]
    fn missing_symptom_metric_is_skipped() {
        let (mrf, graph, _, driver, _) = setup();
        let config = MurphyConfig::fast();
        let bogus = Symptom::high(EntityId(999), MetricKind::Latency);
        assert!(evaluate_candidate(&mrf, &graph, &bogus, driver, &config, 1).is_none());
    }

    #[test]
    fn low_symptom_reverses_the_test() {
        // Build an env where the driver's spike *lowers* the victim's
        // throughput; diagnosing the LOW symptom should confirm the driver.
        let mut db = MonitoringDb::new(10);
        let driver = db.add_entity(EntityKind::Vm, "driver");
        let victim = db.add_entity(EntityKind::Flow, "victim-flow");
        db.relate(driver, victim, AssociationKind::Related);
        for t in 0..200u64 {
            let spike = if t >= 180 { 70.0 } else { 0.0 };
            let drv = 10.0 + 4.0 * ((t as f64) * 0.41).sin() + spike;
            db.record(driver, MetricKind::CpuUtil, t, drv);
            // Throughput collapses as driver CPU rises.
            db.record(victim, MetricKind::Throughput, t, (2000.0 - 20.0 * drv).max(0.0));
        }
        let graph = build_from_seeds(&db, &[victim], BuildOptions::default());
        let config = MurphyConfig::fast();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 150), db.latest_tick());
        let symptom = Symptom {
            entity: victim,
            metric: MetricKind::Throughput,
            direction: ProblemDirection::Low,
        };
        let verdict = evaluate_candidate(&mrf, &graph, &symptom, driver, &config, 5)
            .expect("reachable");
        assert!(verdict.is_root_cause, "verdict: {verdict:?}");
        assert!(verdict.counterfactual_mean > verdict.factual_mean);
    }

    #[test]
    fn deterministic_given_seed() {
        let (mrf, graph, symptom, driver, _) = setup();
        let config = MurphyConfig::fast();
        let a = evaluate_candidate(&mrf, &graph, &symptom, driver, &config, 42).unwrap();
        let b = evaluate_candidate(&mrf, &graph, &symptom, driver, &config, 42).unwrap();
        assert_eq!(a, b);
    }
}
