//! Online factor training (§4.2 "Model training").
//!
//! Murphy keeps no pre-trained models: every invocation trains the factors
//! afresh on the window ending at diagnosis time, so the last few training
//! points come from *during* the incident — the single most important
//! design choice per the §6.5.1 ablation (90% → 15% accuracy without it).
//!
//! For each metric of each graph entity we:
//!
//! 1. collect every metric of the entity's *incoming* neighbors as
//!    candidate features,
//! 2. keep the top B by absolute correlation with the target over the
//!    training window (the one-in-ten rule),
//! 3. fit the configured model family and estimate its residual scale.

use crate::config::MurphyConfig;
use crate::factor::Factor;
use crate::mrf::{MetricIndex, MrfModel};
use crate::train_cache::{
    column_fingerprint, config_fingerprint, CachedFit, TrainStats, TrainingCache,
};
use murphy_graph::RelationshipGraph;
use murphy_learn::{select_top_features, TrainedModel};
use murphy_stats::Summary;
use murphy_telemetry::{MetricId, MetricKind, MonitoringDb};
use std::cell::RefCell;
use std::sync::Arc;

/// The tick window `[from, to)` to train on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingWindow {
    /// First tick (inclusive).
    pub from: u64,
    /// One past the last tick (exclusive).
    pub to: u64,
}

impl TrainingWindow {
    /// The paper's *online* window: the `n_train` ticks ending at (and
    /// including) the latest data — incident-time points included.
    pub fn online(db: &MonitoringDb, n_train: usize) -> Self {
        let to = db.latest_tick() + 1;
        Self {
            from: to.saturating_sub(n_train as u64),
            to,
        }
    }

    /// An *offline* window ending before `incident_start` — the §6.5.1
    /// ablation that excludes incident data.
    pub fn offline(incident_start: u64, n_train: usize) -> Self {
        Self {
            from: incident_start.saturating_sub(n_train as u64),
            to: incident_start,
        }
    }

    /// Window length in ticks.
    pub fn len(&self) -> usize {
        self.to.saturating_sub(self.from) as usize
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.to <= self.from
    }
}

/// A blended offline + online training plan (§7 "Leveraging offline
/// training"): a long historical window concatenated with the fresh
/// online window, with the fresh points *replicated* `fresh_weight` times
/// so the regression weighs recent (incident-inclusive) behaviour more
/// heavily without discarding the history's coverage of rare modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlendedWindow {
    /// The historical window (e.g. an older week).
    pub offline: TrainingWindow,
    /// The fresh window ending at diagnosis time.
    pub online: TrainingWindow,
    /// Replication factor for the fresh points (≥ 1).
    pub fresh_weight: usize,
}

impl BlendedWindow {
    /// Historical data up to `history` ticks before the online window of
    /// `n_train` ticks, with the given fresh weighting.
    pub fn new(db: &MonitoringDb, history: usize, n_train: usize, fresh_weight: usize) -> Self {
        let online = TrainingWindow::online(db, n_train);
        let offline = TrainingWindow {
            from: online.from.saturating_sub(history as u64),
            to: online.from,
        };
        Self {
            offline,
            online,
            fresh_weight: fresh_weight.max(1),
        }
    }

    /// The ticks of the blended sample, fresh points replicated.
    fn ticks(&self) -> Vec<u64> {
        let mut ticks: Vec<u64> = (self.offline.from..self.offline.to).collect();
        for _ in 0..self.fresh_weight {
            ticks.extend(self.online.from..self.online.to);
        }
        ticks
    }
}

/// Train the MRF on a blended offline + online sample (§7 future-work
/// extension). Anomaly references use the *offline* portion (pre-incident
/// by construction); counterfactual σ uses the full blend.
pub fn train_mrf_blended(
    db: &MonitoringDb,
    graph: &RelationshipGraph,
    config: &MurphyConfig,
    blend: BlendedWindow,
    current_tick: u64,
) -> Arc<MrfModel> {
    let index = metric_index_for(db, graph);
    let ticks = blend.ticks();

    // One sharded scan job per metric (results return in index order, so
    // the model is bit-identical to a sequential extraction).
    let columns: Vec<Vec<f64>> = db.scan_series(index.ids().to_vec(), move |m, series| {
        // Mean imputation over the union of both windows.
        let finite: Vec<f64> = ticks
            .iter()
            .filter_map(|&t| series.and_then(|s| s.at(t)))
            .collect();
        let fill = if finite.len() >= 8 {
            finite.iter().sum::<f64>() / finite.len() as f64
        } else {
            m.kind.default_value()
        };
        ticks
            .iter()
            .map(|&t| series.and_then(|s| s.at(t)).unwrap_or(fill))
            .collect()
    });
    let offline_len = blend.offline.len();
    let reference: Vec<Summary> = columns
        .iter()
        .map(|c| Summary::of(&c[..offline_len.min(c.len())]))
        .collect();

    assemble_mrf(db, graph, config, index, columns, reference, current_tick, true)
}

/// Metric kinds for an entity: observed ones if any, otherwise the
/// defaults for its kind (§4.2 edge case: newly introduced entities).
fn entity_metric_kinds(db: &MonitoringDb, entity: murphy_telemetry::EntityId) -> Vec<MetricKind> {
    let observed = db.metrics_of(entity);
    if !observed.is_empty() {
        return observed;
    }
    match db.entity(entity) {
        Some(e) => MetricKind::defaults_for(e.kind).to_vec(),
        None => Vec::new(),
    }
}

/// Train the full MRF over a relationship graph.
///
/// `window` selects the training ticks; `current_tick` is the diagnosis
/// time whose values become the model's current state (normally
/// `db.latest_tick()`).
///
/// The model is returned in an [`Arc`]: the diagnosis fan-out hands
/// clones of it to the persistent worker pool (whose `'static` jobs
/// cannot borrow), and `&Arc<MrfModel>` derefs to `&MrfModel` everywhere
/// a plain reference is expected.
pub fn train_mrf(
    db: &MonitoringDb,
    graph: &RelationshipGraph,
    config: &MurphyConfig,
    window: TrainingWindow,
    current_tick: u64,
) -> Arc<MrfModel> {
    let index = metric_index_for(db, graph);

    // Extract training columns once per metric, fanned out over the
    // database's shards (results return in index order, so the model is
    // bit-identical to a sequential extraction).
    let columns: Vec<Vec<f64>> = db.scan_series(index.ids().to_vec(), move |m, series| {
        match series {
            Some(s) => s.window_mean_imputed(window.from, window.to, m.kind.default_value(), 8),
            None => vec![m.kind.default_value(); window.len()],
        }
    });
    // Reference = the older half of the window: an ongoing incident at the
    // window's tail must not inflate the anomaly-scoring baseline.
    let reference: Vec<Summary> = columns
        .iter()
        .map(|c| Summary::of(&c[..c.len() / 2]))
        .collect();

    assemble_mrf(db, graph, config, index, columns, reference, current_tick, !window.is_empty())
}

/// [`train_mrf`] through a [`TrainingCache`]: factors whose fit inputs
/// are bitwise unchanged since the cached run are reused; the rest are
/// refit on the worker pool exactly as the cold path does. The returned
/// model is **bit-identical** to a cold [`train_mrf`] call for any
/// workload (pinned by `crates/core/tests/train_cache_parity.rs` and the
/// determinism suite) — only [`MrfModel::train_stats`] and the cost
/// differ.
pub fn train_mrf_cached(
    db: &MonitoringDb,
    graph: &RelationshipGraph,
    config: &MurphyConfig,
    window: TrainingWindow,
    current_tick: u64,
    cache: &mut TrainingCache,
) -> Arc<MrfModel> {
    let index = metric_index_for(db, graph);

    // Column extraction matches `train_mrf` exactly; the fingerprint is
    // computed inside the scan closure so the sharded fan-out pays for
    // the hashing, not the caller's thread.
    let pairs: Vec<(Vec<f64>, u64)> = db.scan_series(index.ids().to_vec(), move |m, series| {
        let fill = m.kind.default_value();
        let col = match series {
            Some(s) => s.window_mean_imputed(window.from, window.to, fill, 8),
            None => vec![fill; window.len()],
        };
        let fp = column_fingerprint(window.from, window.to, fill.to_bits(), &col);
        (col, fp)
    });
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(pairs.len());
    let mut fingerprints: Vec<u64> = Vec::with_capacity(pairs.len());
    for (col, fp) in pairs {
        columns.push(col);
        fingerprints.push(fp);
    }
    let reference: Vec<Summary> = columns
        .iter()
        .map(|c| Summary::of(&c[..c.len() / 2]))
        .collect();

    assemble_mrf_cached(
        db,
        graph,
        config,
        index,
        columns,
        fingerprints,
        reference,
        current_tick,
        !window.is_empty(),
        cache,
    )
}

/// Index every (entity, metric) pair of the graph.
fn metric_index_for(db: &MonitoringDb, graph: &RelationshipGraph) -> MetricIndex {
    let mut ids: Vec<MetricId> = Vec::new();
    for &e in graph.entities() {
        for kind in entity_metric_kinds(db, e) {
            ids.push(MetricId::new(e, kind));
        }
    }
    MetricIndex::new(ids)
}

/// Everything a single factor fit reads, bundled once per training run so
/// the persistent pool's `'static` jobs can share it through one `Arc`
/// instead of borrowing from the caller's stack. All fields are read-only
/// during the fan-out.
struct FitInputs {
    config: MurphyConfig,
    index: MetricIndex,
    /// One training column per indexed metric.
    columns: Vec<Vec<f64>>,
    /// Per-position candidate feature positions (all metrics of the
    /// target's incoming neighbor entities), resolved sequentially up
    /// front so the jobs never touch the graph.
    candidate_positions: Vec<Vec<usize>>,
    trainable: bool,
}

/// The shared back half of training: current state, history summaries, and
/// the factor fits over prepared training columns. Both the online and the
/// blended trainers feed into this, so the (parallel) fit loop exists in
/// exactly one place.
#[allow(clippy::too_many_arguments)]
fn assemble_mrf(
    db: &MonitoringDb,
    graph: &RelationshipGraph,
    config: &MurphyConfig,
    index: MetricIndex,
    columns: Vec<Vec<f64>>,
    reference: Vec<Summary>,
    current_tick: u64,
    trainable: bool,
) -> Arc<MrfModel> {
    let current: Vec<f64> = index.ids().iter().map(|&m| db.value_at(m, current_tick)).collect();
    let history: Vec<Summary> = columns.iter().map(|c| Summary::of(c)).collect();
    let candidate_positions = resolve_candidate_positions(graph, &index);

    // Fit one factor per metric from its in-neighbors' metrics. The fits
    // are independent (each reads the shared inputs, none writes), with
    // deterministic per-position seeds — so the pool can fan them out and
    // still produce a bit-identical model to a sequential fit.
    let factors_refit = if trainable {
        columns.iter().filter(|c| !c.is_empty()).count()
    } else {
        0
    };
    let n_jobs = index.len();
    let inputs = Arc::new(FitInputs {
        config: *config,
        index: index.clone(),
        columns,
        candidate_positions,
        trainable,
    });
    let factors: Vec<Option<Factor>> = crate::pool::global()
        .run_indexed(n_jobs, move |pos| fit_factor(&inputs, pos));

    Arc::new(MrfModel {
        index,
        factors,
        current,
        history,
        reference,
        train_stats: TrainStats {
            factors_refit,
            factors_reused: 0,
        },
    })
}

/// The cached counterpart of [`assemble_mrf`]: positions whose fit inputs
/// match a cache entry reuse the cached fit (sharing its model through an
/// `Arc` and re-resolving feature positions against the *current* index);
/// the rest run through the same pool fan-out as the cold path — same
/// jobs, same per-position seeds, results placed by index — so every
/// factor is bit-identical to its cold twin.
#[allow(clippy::too_many_arguments)]
fn assemble_mrf_cached(
    db: &MonitoringDb,
    graph: &RelationshipGraph,
    config: &MurphyConfig,
    index: MetricIndex,
    columns: Vec<Vec<f64>>,
    fingerprints: Vec<u64>,
    reference: Vec<Summary>,
    current_tick: u64,
    trainable: bool,
    cache: &mut TrainingCache,
) -> Arc<MrfModel> {
    let current: Vec<f64> = index.ids().iter().map(|&m| db.value_at(m, current_tick)).collect();
    let history: Vec<Summary> = columns.iter().map(|c| Summary::of(c)).collect();
    let candidate_positions = resolve_candidate_positions(graph, &index);

    cache.reconcile_config(config_fingerprint(config));

    // (position, candidate key, seed) of every cache miss, in position
    // order — the refit fan-out below preserves this order.
    type Miss = (usize, Vec<(MetricId, u64)>, u64);
    let n = index.len();
    let mut factors: Vec<Option<Factor>> = (0..n).map(|_| None).collect();
    let mut misses: Vec<Miss> = Vec::new();
    let mut factors_reused = 0usize;
    for pos in 0..n {
        if !trainable || columns[pos].is_empty() {
            // `fit_factor` would return None without consuming anything;
            // neither a refit nor a reuse.
            continue;
        }
        let target = index.id(pos);
        let candidates: Vec<(MetricId, u64)> = candidate_positions[pos]
            .iter()
            .map(|&p| (index.id(p), fingerprints[p]))
            .collect();
        let seed = fit_seed(config.seed, pos);
        match cache.lookup(target, fingerprints[pos], &candidates, seed) {
            Some(fit) => {
                factors_reused += 1;
                factors[pos] = fit.as_ref().map(|cached| Factor {
                    target,
                    feature_positions: cached
                        .feature_ids
                        .iter()
                        .map(|&id| {
                            index
                                .position(id)
                                .expect("cached feature metric indexed (it was a candidate)")
                        })
                        .collect(),
                    feature_ids: cached.feature_ids.clone(),
                    model: Arc::clone(&cached.model),
                });
            }
            None => misses.push((pos, candidates, seed)),
        }
    }

    let factors_refit = misses.len();
    let inputs = Arc::new(FitInputs {
        config: *config,
        index: index.clone(),
        columns,
        candidate_positions,
        trainable,
    });
    let miss_positions: Arc<Vec<usize>> = Arc::new(misses.iter().map(|(pos, ..)| *pos).collect());
    let jobs_inputs = Arc::clone(&inputs);
    let jobs_positions = Arc::clone(&miss_positions);
    let refit: Vec<Option<Factor>> = crate::pool::global()
        .run_indexed(factors_refit, move |j| {
            fit_factor(&jobs_inputs, jobs_positions[j])
        });

    for ((pos, candidates, seed), factor) in misses.into_iter().zip(refit) {
        cache.store(
            index.id(pos),
            fingerprints[pos],
            candidates,
            seed,
            factor.as_ref().map(|f| CachedFit {
                feature_ids: f.feature_ids.clone(),
                model: Arc::clone(&f.model),
            }),
        );
        factors[pos] = factor;
    }

    // Bound the cache: metrics that left the index (removed entities, or
    // a different graph altogether) can never match again — evict them.
    cache.retain(|m| index.position(m).is_some());

    Arc::new(MrfModel {
        index,
        factors,
        current,
        history,
        reference,
        train_stats: TrainStats {
            factors_refit,
            factors_reused,
        },
    })
}

/// Resolve each factor's candidate feature positions (all metrics of the
/// target's incoming neighbor entities) sequentially up front, so the fit
/// jobs never touch the graph.
fn resolve_candidate_positions(graph: &RelationshipGraph, index: &MetricIndex) -> Vec<Vec<usize>> {
    (0..index.len())
        .map(|pos| {
            let mut cps: Vec<usize> = Vec::new();
            for n in graph.in_nbr_entities(index.id(pos).entity) {
                cps.extend_from_slice(index.entity_positions(n));
            }
            cps
        })
        .collect()
}

/// The per-position fit seed. Position-derived (not metric-derived), so
/// the training cache records the seed each fit consumed and refuses to
/// reuse a fit whose target moved to a differently-seeded position.
fn fit_seed(base: u64, pos: usize) -> u64 {
    base ^ (pos as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Fit the factor for one metric position, or `None` when no usable model
/// exists (empty window, no data, or a numeric failure).
fn fit_factor(inputs: &FitInputs, pos: usize) -> Option<Factor> {
    let target_id = inputs.index.id(pos);
    let target_col = inputs.columns[pos].as_slice();
    if !inputs.trainable || target_col.is_empty() {
        return None;
    }
    // Candidate features: all metrics of incoming neighbor entities,
    // borrowed as slices from the shared column store — no per-factor
    // cloning of the training series.
    let candidate_positions = inputs.candidate_positions[pos].as_slice();
    let candidate_cols: Vec<&[f64]> = candidate_positions
        .iter()
        .map(|&p| inputs.columns[p].as_slice())
        .collect();
    let chosen = select_top_features(&candidate_cols, target_col, inputs.config.feature_budget);
    let feature_positions: Vec<usize> = chosen.iter().map(|&i| candidate_positions[i]).collect();
    let feature_ids: Vec<MetricId> = feature_positions.iter().map(|&p| inputs.index.id(p)).collect();

    // Assemble the training matrix row-major into a per-worker scratch
    // buffer — one reused allocation per thread instead of one `Vec` per
    // training tick per factor. `fit_flat` is pinned bit-identical to the
    // nested-rows fit by `crates/learn/tests/flat_parity.rs`.
    thread_local! {
        static ROW_BUF: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    }
    let width = feature_positions.len();
    let seed = fit_seed(inputs.config.seed, pos);
    let fitted = ROW_BUF.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.clear();
        buf.reserve(width * target_col.len());
        for t in 0..target_col.len() {
            for &p in &feature_positions {
                buf.push(inputs.columns[p][t]);
            }
        }
        TrainedModel::fit_flat(inputs.config.model, &buf, width, target_col, seed)
    });
    match fitted {
        Ok(model) => Some(Factor {
            target: target_id,
            feature_positions,
            feature_ids,
            model: Arc::new(model),
        }),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murphy_graph::{build_from_seeds, BuildOptions};
    use murphy_telemetry::{AssociationKind, EntityKind};

    /// vm_a drives vm_b: cpu_b(t) = 0.8 * cpu_a(t) + 5.
    fn coupled_db() -> (MonitoringDb, murphy_telemetry::EntityId, murphy_telemetry::EntityId) {
        let mut db = MonitoringDb::new(10);
        let a = db.add_entity(EntityKind::Vm, "vm-a");
        let b = db.add_entity(EntityKind::Vm, "vm-b");
        db.relate(a, b, AssociationKind::Related);
        for t in 0..100u64 {
            let cpu_a = 20.0 + 10.0 * ((t as f64) * 0.3).sin();
            db.record(a, MetricKind::CpuUtil, t, cpu_a);
            db.record(b, MetricKind::CpuUtil, t, 0.8 * cpu_a + 5.0);
        }
        (db, a, b)
    }

    #[test]
    fn blended_training_covers_both_windows() {
        let (db, a, b) = coupled_db();
        let graph = build_from_seeds(&db, &[a], BuildOptions::default());
        let config = MurphyConfig::fast();
        let blend = BlendedWindow::new(&db, 40, 30, 3);
        assert_eq!(blend.online.to, 100);
        assert_eq!(blend.online.from, 70);
        assert_eq!(blend.offline, TrainingWindow { from: 30, to: 70 });
        // Fresh points replicated 3×: 40 + 3*30 = 130 ticks.
        assert_eq!(blend.ticks().len(), 130);

        let mrf = train_mrf_blended(&db, &graph, &config, blend, db.latest_tick());
        let b_cpu = MetricId::new(b, MetricKind::CpuUtil);
        let pos = mrf.index.position(b_cpu).unwrap();
        let factor = mrf.factors[pos].as_ref().expect("factor trained");
        // The linear coupling is still learned from the blend.
        let mut state = mrf.current.clone();
        let a_pos = mrf.index.position(MetricId::new(a, MetricKind::CpuUtil)).unwrap();
        state[a_pos] = 30.0;
        let pred = factor.predict(&state);
        assert!((pred - 29.0).abs() < 3.0, "pred = {pred}");
        // Reference summaries come from the offline (pre-incident) part.
        assert!(mrf.reference[pos].count > 0);
    }

    #[test]
    fn blended_fresh_weight_floors_at_one() {
        let (db, _, _) = coupled_db();
        let blend = BlendedWindow::new(&db, 20, 10, 0);
        assert_eq!(blend.fresh_weight, 1);
        assert_eq!(blend.ticks().len(), 30);
    }

    #[test]
    fn online_window_includes_latest_tick() {
        let (db, _, _) = coupled_db();
        let w = TrainingWindow::online(&db, 50);
        assert_eq!(w.to, 100);
        assert_eq!(w.from, 50);
        assert_eq!(w.len(), 50);
    }

    #[test]
    fn offline_window_ends_before_incident() {
        let w = TrainingWindow::offline(80, 50);
        assert_eq!(w.to, 80);
        assert_eq!(w.from, 30);
        let clipped = TrainingWindow::offline(10, 50);
        assert_eq!(clipped.from, 0);
    }

    #[test]
    fn trained_factor_tracks_the_coupling() {
        let (db, a, b) = coupled_db();
        let graph = build_from_seeds(&db, &[a], BuildOptions::default());
        let config = MurphyConfig::fast();
        let window = TrainingWindow::online(&db, 80);
        let mrf = train_mrf(&db, &graph, &config, window, db.latest_tick());

        // b's CPU factor should use a's CPU as a feature and predict the
        // linear relationship.
        let b_cpu = MetricId::new(b, MetricKind::CpuUtil);
        let pos = mrf.index.position(b_cpu).unwrap();
        let factor = mrf.factors[pos].as_ref().expect("factor trained");
        assert!(factor
            .feature_ids
            .contains(&MetricId::new(a, MetricKind::CpuUtil)));

        // Prediction with a's CPU at 30 should be ≈ 0.8*30+5 = 29.
        let mut state = mrf.current.clone();
        let a_pos = mrf.index.position(MetricId::new(a, MetricKind::CpuUtil)).unwrap();
        state[a_pos] = 30.0;
        let pred = factor.predict(&state);
        assert!((pred - 29.0).abs() < 3.0, "pred = {pred}");
    }

    #[test]
    fn entity_without_data_gets_default_metrics() {
        let (mut db, a, _) = coupled_db();
        let ghost = db.add_entity(EntityKind::Vm, "ghost");
        db.relate(a, ghost, AssociationKind::Related);
        let graph = build_from_seeds(&db, &[a], BuildOptions::default());
        let config = MurphyConfig::fast();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 50), db.latest_tick());
        // The ghost VM is indexed with the default VM metric set.
        let ghost_positions = mrf.index.entity_positions(ghost);
        assert_eq!(
            ghost_positions.len(),
            MetricKind::defaults_for(EntityKind::Vm).len()
        );
        // Its history is the imputed constant default → not anomalous.
        assert_eq!(mrf.entity_anomaly(ghost), 0.0);
    }

    #[test]
    fn empty_window_produces_no_factors() {
        let (db, a, _) = coupled_db();
        let graph = build_from_seeds(&db, &[a], BuildOptions::default());
        let config = MurphyConfig::fast();
        let window = TrainingWindow { from: 5, to: 5 };
        let mrf = train_mrf(&db, &graph, &config, window, db.latest_tick());
        assert!(mrf.factors.iter().all(|f| f.is_none()));
        // Current state still populated.
        assert!(mrf.current.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn feature_budget_is_respected() {
        // Star: hub with 6 neighbor VMs (6 metrics each = 36 candidates).
        let mut db = MonitoringDb::new(10);
        let hub = db.add_entity(EntityKind::Vm, "hub");
        let spokes: Vec<_> = (0..6)
            .map(|i| db.add_entity(EntityKind::Vm, format!("spoke{i}")))
            .collect();
        for &s in &spokes {
            db.relate(hub, s, AssociationKind::Related);
        }
        for t in 0..60u64 {
            db.record(hub, MetricKind::CpuUtil, t, (t % 10) as f64);
            for (i, &s) in spokes.iter().enumerate() {
                for kind in [MetricKind::CpuUtil, MetricKind::MemUtil, MetricKind::NetTx] {
                    db.record(s, kind, t, ((t + i as u64) % 10) as f64);
                }
            }
        }
        let graph = build_from_seeds(&db, &[hub], BuildOptions::default());
        let config = MurphyConfig::fast(); // budget 10
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 60), 59);
        let hub_cpu = mrf.index.position(MetricId::new(hub, MetricKind::CpuUtil)).unwrap();
        let factor = mrf.factors[hub_cpu].as_ref().unwrap();
        assert!(factor.feature_positions.len() <= config.feature_budget);
        assert!(!factor.feature_positions.is_empty());
    }
}
