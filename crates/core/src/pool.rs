//! Re-export of the shared worker pool.
//!
//! The pool implementation lives in the `murphy-pool` crate so that
//! `murphy-telemetry` (sharded ingestion, training-window column scans)
//! can fan out over the same process-wide threads as training and
//! diagnosis without a dependency cycle. Everything is re-exported here
//! so existing `murphy_core::pool::*` paths keep working.

pub use murphy_pool::{global, PoolStats, WorkerPool};
