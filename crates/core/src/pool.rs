//! A small shared worker pool for Murphy's embarrassingly parallel stages.
//!
//! Two hot phases of the pipeline fan out over independent work items:
//! online MRF training (one factor fit per entity metric) and candidate
//! evaluation (one counterfactual test per candidate). Both now run through
//! the same [`WorkerPool`], which centralizes
//!
//! * **sizing** — `MURPHY_THREADS` overrides the thread count (useful for
//!   benchmarking scaling curves and for pinning CI), defaulting to the
//!   machine's available parallelism;
//! * **scheduling** — workers pull indices from a shared atomic counter,
//!   so an expensive item (a far candidate with a large subgraph) does not
//!   stall a statically assigned partner;
//! * **result placement** — each worker publishes into its item's dedicated
//!   [`OnceLock`] slot, a per-slot lock-free write; no mutex guards the
//!   results vector and items complete independently.
//!
//! The pool dispatches each batch on crossbeam's scoped threads: the whole
//! workspace is `#![forbid(unsafe_code)]`, and parking OS threads across
//! batches while handing them borrowed closures requires exactly the
//! lifetime-erasing machinery crossbeam's scope already encapsulates.
//! Spawn cost is amortized over batches of factor fits or candidate
//! evaluations that each run for milliseconds to seconds, and the process
//! shares one lazily sized [`global`] pool, so no per-call-site sizing or
//! ad-hoc thread code remains.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A sized pool for running batches of independent indexed jobs.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool with an explicit thread count (floored at 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A pool sized from the environment: `MURPHY_THREADS` when set to a
    /// positive integer, otherwise the machine's available parallelism.
    pub fn from_env() -> Self {
        let threads = std::env::var("MURPHY_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
            .unwrap_or(4);
        Self::new(threads)
    }

    /// Configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(0..n_jobs)` across the pool and return the results in index
    /// order.
    ///
    /// Work is pulled from a shared atomic counter (dynamic load balance)
    /// and each result is written to its own pre-allocated slot, so the
    /// output order — and therefore every downstream ranking — is
    /// independent of thread interleaving. With one thread or one job the
    /// batch runs inline on the caller's thread.
    pub fn run_indexed<T, F>(&self, n_jobs: usize, f: F) -> Vec<T>
    where
        T: Send + Sync,
        F: Fn(usize) -> T + Sync,
    {
        if n_jobs == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n_jobs);
        if workers <= 1 {
            return (0..n_jobs).map(f).collect();
        }
        let slots: Vec<OnceLock<T>> = (0..n_jobs).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        crossbeam::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_jobs {
                        break;
                    }
                    let _ = slots[i].set(f(i));
                });
            }
        })
        .expect("worker pool thread panicked");
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every slot filled"))
            .collect()
    }
}

/// The process-wide pool, sized once (from `MURPHY_THREADS` or the
/// machine) on first use and shared by training and diagnosis.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(WorkerPool::from_env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run_indexed(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_is_empty() {
        let pool = WorkerPool::new(4);
        let out: Vec<usize> = pool.run_indexed(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let out = pool.run_indexed(5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn thread_count_floors_at_one() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = WorkerPool::new(1).run_indexed(257, |i| (i as f64).sqrt());
        let par = WorkerPool::new(8).run_indexed(257, |i| (i as f64).sqrt());
        assert_eq!(seq, par);
    }

    #[test]
    fn global_pool_is_stable() {
        let a = global().threads();
        let b = global().threads();
        assert_eq!(a, b);
        assert!(a >= 1);
    }
}
