//! The per-symptom diagnosis loop (§4.2).
//!
//! For one problematic symptom, Murphy:
//!
//! 1. trains the MRF online,
//! 2. prunes the candidate space with the conservative-threshold BFS,
//! 3. evaluates every surviving candidate with the counterfactual test
//!    (in parallel — the evaluations are independent),
//! 4. ranks the confirmed root causes by anomaly score.

use crate::config::MurphyConfig;
use crate::counterfactual::{evaluate_candidate, CandidateVerdict};
use crate::mrf::MrfModel;
use crate::ranking::rank_root_causes;
use murphy_graph::{prune_candidates, RelationshipGraph};
use murphy_telemetry::{EntityId, MetricId, MetricKind, MonitoringDb};
use serde::{Deserialize, Serialize};

/// Whether the symptom metric is problematically high or low.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProblemDirection {
    /// The metric is anomalously high (latency, CPU, drops — the common
    /// case in the paper).
    High,
    /// The metric is anomalously low (collapsed throughput, vanished
    /// request rate).
    Low,
}

/// A problematic symptom `(M_o, E_o)` to diagnose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Symptom {
    /// The observed entity `E_o`.
    pub entity: EntityId,
    /// The problematic metric `M_o`.
    pub metric: MetricKind,
    /// Problem direction.
    pub direction: ProblemDirection,
}

impl Symptom {
    /// A problematically high metric (the common case).
    pub fn high(entity: EntityId, metric: MetricKind) -> Self {
        Self {
            entity,
            metric,
            direction: ProblemDirection::High,
        }
    }

    /// A problematically low metric.
    pub fn low(entity: EntityId, metric: MetricKind) -> Self {
        Self {
            entity,
            metric,
            direction: ProblemDirection::Low,
        }
    }

    /// The symptom's metric id.
    pub fn metric_id(&self) -> MetricId {
        MetricId::new(self.entity, self.metric)
    }

    /// True when the problem is a high value.
    pub fn is_high(&self) -> bool {
        self.direction == ProblemDirection::High
    }
}

/// One confirmed root cause, ranked.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedRootCause {
    /// The root-cause entity `E_r`.
    pub entity: EntityId,
    /// The entity's most anomalous metric `M_r` (the implicated one).
    pub metric: MetricKind,
    /// Anomaly score (standard deviations from historical mean) — the
    /// ranking key, descending.
    pub score: f64,
    /// The counterfactual verdict that confirmed this candidate.
    pub verdict: CandidateVerdict,
}

/// The result of diagnosing one symptom.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DiagnosisReport {
    /// Confirmed root causes, best first.
    pub root_causes: Vec<RankedRootCause>,
    /// How many candidates survived pruning and were evaluated.
    pub candidates_evaluated: usize,
    /// How many candidates the pruning BFS discarded up front.
    pub candidates_pruned: usize,
}

impl DiagnosisReport {
    /// The entities of the top-k root causes.
    pub fn top_k(&self, k: usize) -> Vec<EntityId> {
        self.root_causes.iter().take(k).map(|r| r.entity).collect()
    }

    /// 1-based rank of an entity in the output, if present.
    pub fn rank_of(&self, entity: EntityId) -> Option<usize> {
        self.root_causes
            .iter()
            .position(|r| r.entity == entity)
            .map(|i| i + 1)
    }
}

/// Run the full candidate loop for one symptom against a trained MRF.
///
/// `candidates` is normally the output of [`prune_candidates`]; callers
/// that need the unpruned space (ablations) can pass all graph entities.
pub fn diagnose_with_candidates(
    db: &MonitoringDb,
    mrf: &MrfModel,
    graph: &RelationshipGraph,
    symptom: &Symptom,
    candidates: &[EntityId],
    config: &MurphyConfig,
) -> DiagnosisReport {
    let capped: Vec<EntityId> = if config.max_candidates > 0 {
        candidates.iter().copied().take(config.max_candidates).collect()
    } else {
        candidates.to_vec()
    };

    let verdicts: Vec<(EntityId, Option<CandidateVerdict>)> = if config.parallel && capped.len() > 1 {
        parallel_evaluate(mrf, graph, symptom, &capped, config)
    } else {
        capped
            .iter()
            .map(|&c| {
                let seed = candidate_seed(config.seed, c);
                (c, evaluate_candidate(mrf, graph, symptom, c, config, seed))
            })
            .collect()
    };

    let confirmed: Vec<(EntityId, CandidateVerdict)> = verdicts
        .into_iter()
        .filter_map(|(e, v)| v.filter(|v| v.is_root_cause).map(|v| (e, v)))
        .collect();

    let root_causes = rank_root_causes(db, mrf, confirmed, config.anomaly_saturation);
    DiagnosisReport {
        candidates_evaluated: capped.len(),
        candidates_pruned: candidates.len().saturating_sub(capped.len()),
        root_causes,
    }
}

/// Full pipeline entry: prune from the symptom entity, then evaluate.
pub fn diagnose_symptom(
    db: &MonitoringDb,
    mrf: &MrfModel,
    graph: &RelationshipGraph,
    symptom: &Symptom,
    config: &MurphyConfig,
) -> DiagnosisReport {
    let candidates = prune_candidates(db, graph, symptom.entity, config.threshold_scale);
    let total_entities = graph.node_count();
    let mut report = diagnose_with_candidates(db, mrf, graph, symptom, &candidates, config);
    report.candidates_pruned = total_entities.saturating_sub(candidates.len() + 1);
    report
}

/// Deterministic per-candidate seed derivation: independent of evaluation
/// order, so parallel and sequential runs agree.
fn candidate_seed(base: u64, candidate: EntityId) -> u64 {
    base ^ (candidate.0 as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

fn parallel_evaluate(
    mrf: &MrfModel,
    graph: &RelationshipGraph,
    symptom: &Symptom,
    candidates: &[EntityId],
    config: &MurphyConfig,
) -> Vec<(EntityId, Option<CandidateVerdict>)> {
    crate::pool::global().run_indexed(candidates.len(), |i| {
        let c = candidates[i];
        let seed = candidate_seed(config.seed, c);
        (c, evaluate_candidate(mrf, graph, symptom, c, config, seed))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{train_mrf, TrainingWindow};
    use murphy_graph::{build_from_seeds, BuildOptions};
    use murphy_telemetry::{AssociationKind, EntityKind, MonitoringDb};

    /// Star around a victim: one genuinely-coupled hot driver, one hot but
    /// uncoupled red herring, several cold bystanders.
    fn star_env() -> (MonitoringDb, RelationshipGraph, EntityId, EntityId, EntityId) {
        let mut db = MonitoringDb::new(10);
        let victim = db.add_entity(EntityKind::Vm, "victim");
        let driver = db.add_entity(EntityKind::Vm, "driver");
        let herring = db.add_entity(EntityKind::Vm, "herring");
        db.relate(driver, victim, AssociationKind::Related);
        db.relate(herring, victim, AssociationKind::Related);
        let cold: Vec<EntityId> = (0..3)
            .map(|i| {
                let c = db.add_entity(EntityKind::Vm, format!("cold{i}"));
                db.relate(c, victim, AssociationKind::Related);
                c
            })
            .collect();
        for t in 0..220u64 {
            let spike = if t >= 200 { 55.0 } else { 0.0 };
            let drv = 12.0 + 6.0 * ((t as f64) * 0.31).sin() + spike;
            // The herring is hot during the incident but uncorrelated with
            // the victim historically (independent wiggle + its own spike).
            let her = 14.0 + 6.0 * ((t as f64) * 1.7).cos() + if t >= 200 { 40.0 } else { 0.0 };
            db.record(driver, MetricKind::CpuUtil, t, drv);
            db.record(herring, MetricKind::CpuUtil, t, her);
            db.record(victim, MetricKind::CpuUtil, t, (0.95 * drv + 4.0).min(100.0));
            for &c in &cold {
                db.record(c, MetricKind::CpuUtil, t, 3.0);
            }
        }
        let graph = build_from_seeds(&db, &[victim], BuildOptions::default());
        (db, graph, victim, driver, herring)
    }

    #[test]
    fn end_to_end_confirms_driver_and_prunes_cold() {
        let (db, graph, victim, driver, _) = star_env();
        let config = MurphyConfig::fast();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 180), db.latest_tick());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);
        let report = diagnose_symptom(&db, &mrf, &graph, &symptom, &config);
        assert!(
            report.top_k(5).contains(&driver),
            "driver missing from {:?}",
            report.root_causes
        );
        // Cold bystanders (CPU 3% < 25% threshold) never get evaluated.
        assert!(report.candidates_evaluated <= 2, "evaluated {}", report.candidates_evaluated);
        assert!(report.candidates_pruned >= 3);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let (db, graph, victim, _, _) = star_env();
        let mut config = MurphyConfig::fast();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 180), db.latest_tick());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);
        config.parallel = false;
        let seq = diagnose_symptom(&db, &mrf, &graph, &symptom, &config);
        config.parallel = true;
        let par = diagnose_symptom(&db, &mrf, &graph, &symptom, &config);
        assert_eq!(seq.top_k(10), par.top_k(10));
    }

    #[test]
    fn max_candidates_caps_evaluation() {
        let (db, graph, victim, _, _) = star_env();
        let mut config = MurphyConfig::fast();
        config.max_candidates = 1;
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 180), db.latest_tick());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);
        let report = diagnose_symptom(&db, &mrf, &graph, &symptom, &config);
        assert_eq!(report.candidates_evaluated, 1);
    }

    #[test]
    fn report_rank_queries() {
        let (db, graph, victim, driver, _) = star_env();
        let config = MurphyConfig::fast();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 180), db.latest_tick());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);
        let report = diagnose_symptom(&db, &mrf, &graph, &symptom, &config);
        if let Some(rank) = report.rank_of(driver) {
            assert!(rank >= 1);
            assert!(report.top_k(rank).contains(&driver));
        }
        assert_eq!(report.rank_of(EntityId(12345)), None);
        assert!(report.top_k(0).is_empty());
    }

    #[test]
    fn symptom_constructors() {
        let s = Symptom::high(EntityId(1), MetricKind::Latency);
        assert!(s.is_high());
        let s = Symptom::low(EntityId(1), MetricKind::Throughput);
        assert!(!s.is_high());
        assert_eq!(s.metric_id(), MetricId::new(EntityId(1), MetricKind::Throughput));
    }
}
