//! The per-symptom diagnosis loop (§4.2).
//!
//! For one problematic symptom, Murphy:
//!
//! 1. trains the MRF online,
//! 2. prunes the candidate space with the conservative-threshold BFS,
//! 3. evaluates every surviving candidate with the counterfactual test
//!    (in parallel — the evaluations are independent), sharing the
//!    per-symptom setup (reverse BFS, interned resampling plans) through
//!    a [`SymptomContext`],
//! 4. ranks the confirmed root causes by anomaly score.
//!
//! [`diagnose_batch`] diagnoses many symptoms against one trained model,
//! reusing pruning results and prepared contexts across symptoms that
//! share an entity.

use crate::config::MurphyConfig;
use crate::counterfactual::{
    evaluate_candidate_prepared, CandidateVerdict, PreparedCandidate, SymptomContext,
};
use crate::mrf::MrfModel;
use crate::pool::WorkerPool;
use crate::ranking::rank_root_causes;
use murphy_graph::{prune_candidates, RelationshipGraph};
use murphy_telemetry::{EntityId, MetricId, MetricKind, MonitoringDb};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Whether the symptom metric is problematically high or low.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProblemDirection {
    /// The metric is anomalously high (latency, CPU, drops — the common
    /// case in the paper).
    High,
    /// The metric is anomalously low (collapsed throughput, vanished
    /// request rate).
    Low,
}

/// A problematic symptom `(M_o, E_o)` to diagnose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Symptom {
    /// The observed entity `E_o`.
    pub entity: EntityId,
    /// The problematic metric `M_o`.
    pub metric: MetricKind,
    /// Problem direction.
    pub direction: ProblemDirection,
}

impl Symptom {
    /// A problematically high metric (the common case).
    pub fn high(entity: EntityId, metric: MetricKind) -> Self {
        Self {
            entity,
            metric,
            direction: ProblemDirection::High,
        }
    }

    /// A problematically low metric.
    pub fn low(entity: EntityId, metric: MetricKind) -> Self {
        Self {
            entity,
            metric,
            direction: ProblemDirection::Low,
        }
    }

    /// The symptom's metric id.
    pub fn metric_id(&self) -> MetricId {
        MetricId::new(self.entity, self.metric)
    }

    /// True when the problem is a high value.
    pub fn is_high(&self) -> bool {
        self.direction == ProblemDirection::High
    }
}

/// One confirmed root cause, ranked.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedRootCause {
    /// The root-cause entity `E_r`.
    pub entity: EntityId,
    /// The entity's most anomalous metric `M_r` (the implicated one).
    pub metric: MetricKind,
    /// Anomaly score (standard deviations from historical mean) — the
    /// ranking key, descending.
    pub score: f64,
    /// The counterfactual verdict that confirmed this candidate.
    pub verdict: CandidateVerdict,
}

/// The result of diagnosing one symptom.
///
/// The three counters plus the symptom entity itself partition the graph:
/// `candidates_evaluated + candidates_pruned + candidates_capped + 1`
/// equals the graph's node count for every [`diagnose_symptom`] /
/// [`diagnose_batch`] report.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DiagnosisReport {
    /// Confirmed root causes, best first.
    pub root_causes: Vec<RankedRootCause>,
    /// How many candidates survived pruning and were evaluated.
    pub candidates_evaluated: usize,
    /// How many candidates the pruning BFS discarded up front.
    pub candidates_pruned: usize,
    /// How many candidates survived pruning but were dropped by the
    /// `max_candidates` cap without being evaluated.
    #[serde(default)]
    pub candidates_capped: usize,
    /// Resampling plans built for this diagnosis (plan-interner cache
    /// misses in the [`SymptomContext`]).
    #[serde(default)]
    pub plans_built: usize,
    /// Plan builds avoided by the interner (cache hits — candidates whose
    /// shortest-path subgraphs coincide, or setup reused from an earlier
    /// diagnosis on the same context).
    #[serde(default)]
    pub plans_reused: usize,
    /// Factors refit by the training run behind this diagnosis (see
    /// [`crate::train_cache::TrainStats`]). All reports produced against
    /// the same trained model carry the same pair of training counters.
    #[serde(default)]
    pub factors_refit: usize,
    /// Factors that training run reused from its [`crate::train_cache::TrainingCache`].
    #[serde(default)]
    pub factors_reused: usize,
}

/// Equality compares the diagnosis *output* — root causes and candidate
/// accounting — and deliberately ignores the `plans_built`/`plans_reused`
/// and `factors_refit`/`factors_reused` cache counters: a batch run
/// shares one prepared context across symptoms, and a warm training
/// cache refits fewer factors than a cold one, so those deltas
/// legitimately differ from independent runs even though the diagnosis
/// itself is bit-identical.
impl PartialEq for DiagnosisReport {
    fn eq(&self, other: &Self) -> bool {
        self.root_causes == other.root_causes
            && self.candidates_evaluated == other.candidates_evaluated
            && self.candidates_pruned == other.candidates_pruned
            && self.candidates_capped == other.candidates_capped
    }
}

impl DiagnosisReport {
    /// The entities of the top-k root causes.
    pub fn top_k(&self, k: usize) -> Vec<EntityId> {
        self.root_causes.iter().take(k).map(|r| r.entity).collect()
    }

    /// 1-based rank of an entity in the output, if present.
    pub fn rank_of(&self, entity: EntityId) -> Option<usize> {
        self.root_causes
            .iter()
            .position(|r| r.entity == entity)
            .map(|i| i + 1)
    }
}

/// Run the full candidate loop for one symptom against a trained MRF.
///
/// `candidates` is normally the output of [`prune_candidates`]; callers
/// that need the unpruned space (ablations) can pass all graph entities.
/// The symptom entity is never evaluated against itself and is dropped
/// from `candidates` if present.
///
/// `candidates_pruned` is 0 in the returned report — this entry point
/// cannot know how many entities a caller's pruning discarded. Use
/// [`diagnose_symptom`] / [`diagnose_batch`] for full accounting.
pub fn diagnose_with_candidates(
    db: &MonitoringDb,
    mrf: &Arc<MrfModel>,
    graph: &RelationshipGraph,
    symptom: &Symptom,
    candidates: &[EntityId],
    config: &MurphyConfig,
) -> DiagnosisReport {
    let mut ctx = SymptomContext::new(graph, symptom.entity, config.subgraph_slack);
    diagnose_with_context(db, mrf, graph, symptom, candidates, config, &mut ctx)
}

/// [`diagnose_with_candidates`] with a caller-owned [`SymptomContext`],
/// so repeated diagnoses of the same symptom entity (ablation sweeps,
/// batch runs) reuse the reverse BFS, subgraphs, and interned plans.
///
/// `ctx` must have been created for `symptom.entity` with the same
/// `subgraph_slack`, against the same graph and `mrf` (the context
/// carries its own graph snapshot; the `_graph` parameter is retained
/// for signature stability).
pub fn diagnose_with_context(
    db: &MonitoringDb,
    mrf: &Arc<MrfModel>,
    _graph: &RelationshipGraph,
    symptom: &Symptom,
    candidates: &[EntityId],
    config: &MurphyConfig,
    ctx: &mut SymptomContext,
) -> DiagnosisReport {
    let pool = config.parallel.then(crate::pool::global);
    diagnose_with_context_on(db, mrf, symptom, candidates, config, ctx, pool)
}

/// The core candidate loop. `pool` decides the fan-out: `None` (or a
/// single-threaded pool, or fewer than two candidates) evaluates
/// sequentially; otherwise each candidate becomes one pool job. Either
/// way the output is bit-identical — per-candidate seeds depend only on
/// the candidate id, and results are placed by index.
fn diagnose_with_context_on(
    db: &MonitoringDb,
    mrf: &Arc<MrfModel>,
    symptom: &Symptom,
    candidates: &[EntityId],
    config: &MurphyConfig,
    ctx: &mut SymptomContext,
    pool: Option<&WorkerPool>,
) -> DiagnosisReport {
    // An entity is never a candidate root cause for its own symptom;
    // `prune_candidates` already guarantees this, but ablation callers
    // passing "all entities" must not have the symptom eat a cap slot or
    // inflate `candidates_evaluated`.
    let eligible: Vec<EntityId> = candidates
        .iter()
        .copied()
        .filter(|&c| c != symptom.entity)
        .collect();
    let capped: Vec<EntityId> = if config.max_candidates > 0 {
        eligible.iter().copied().take(config.max_candidates).collect()
    } else {
        eligible.clone()
    };

    let pool = pool.filter(|p| p.threads() > 1 && capped.len() > 1);
    let (built0, reused0) = (ctx.plans_built(), ctx.plans_reused());
    ctx.prepare(mrf, &capped, pool);
    let (plans_built, plans_reused) =
        (ctx.plans_built() - built0, ctx.plans_reused() - reused0);
    let ctx: &SymptomContext = ctx; // read-only across the fan-out

    let verdicts: Vec<(EntityId, Option<CandidateVerdict>)> = match pool {
        Some(pool) => {
            // The persistent pool's jobs are `'static`: hand them the
            // model and each candidate's prepared setup through Arcs, and
            // copy the (small, `Copy`) symptom and config.
            let prepared: Arc<Vec<(EntityId, Option<Arc<PreparedCandidate>>)>> =
                Arc::new(capped.iter().map(|&c| (c, ctx.prepared_shared(c))).collect());
            let mrf = Arc::clone(mrf);
            let symptom = *symptom;
            let config = *config;
            pool.run_indexed(prepared.len(), move |i| {
                let (c, prep) = &prepared[i];
                let seed = candidate_seed(config.seed, *c);
                let verdict = prep
                    .as_ref()
                    .and_then(|p| evaluate_candidate_prepared(&mrf, &symptom, p, &config, seed));
                (*c, verdict)
            })
        }
        None => capped
            .iter()
            .map(|&c| {
                let seed = candidate_seed(config.seed, c);
                let verdict = ctx
                    .prepared(c)
                    .and_then(|p| evaluate_candidate_prepared(mrf, symptom, p, config, seed));
                (c, verdict)
            })
            .collect(),
    };

    let confirmed: Vec<(EntityId, CandidateVerdict)> = verdicts
        .into_iter()
        .filter_map(|(e, v)| v.filter(|v| v.is_root_cause).map(|v| (e, v)))
        .collect();

    let root_causes = rank_root_causes(db, mrf, confirmed, config.anomaly_saturation);
    DiagnosisReport {
        candidates_evaluated: capped.len(),
        candidates_pruned: 0,
        candidates_capped: eligible.len().saturating_sub(capped.len()),
        plans_built,
        plans_reused,
        factors_refit: mrf.train_stats.factors_refit,
        factors_reused: mrf.train_stats.factors_reused,
        root_causes,
    }
}

/// Full pipeline entry: prune from the symptom entity, then evaluate.
pub fn diagnose_symptom(
    db: &MonitoringDb,
    mrf: &Arc<MrfModel>,
    graph: &RelationshipGraph,
    symptom: &Symptom,
    config: &MurphyConfig,
) -> DiagnosisReport {
    let pool = config.parallel.then(crate::pool::global);
    diagnose_symptom_impl(db, mrf, graph, symptom, config, pool)
}

/// [`diagnose_symptom`] on an explicit [`WorkerPool`] instance,
/// overriding `config.parallel` and the process-global pool.
///
/// The report is bit-identical to [`diagnose_symptom`] for any pool size
/// — this entry point exists so tests (and embedders managing their own
/// pools) can vary thread counts within one process, which the
/// `MURPHY_THREADS`-sized global pool cannot.
pub fn diagnose_symptom_on(
    db: &MonitoringDb,
    mrf: &Arc<MrfModel>,
    graph: &RelationshipGraph,
    symptom: &Symptom,
    config: &MurphyConfig,
    pool: &WorkerPool,
) -> DiagnosisReport {
    diagnose_symptom_impl(db, mrf, graph, symptom, config, Some(pool))
}

fn diagnose_symptom_impl(
    db: &MonitoringDb,
    mrf: &Arc<MrfModel>,
    graph: &RelationshipGraph,
    symptom: &Symptom,
    config: &MurphyConfig,
    pool: Option<&WorkerPool>,
) -> DiagnosisReport {
    let mut ctx = SymptomContext::new(graph, symptom.entity, config.subgraph_slack);
    let candidates = prune_candidates(db, graph, symptom.entity, config.threshold_scale);
    diagnose_pruned(db, mrf, graph, symptom, &candidates, config, &mut ctx, pool)
}

/// Diagnose many symptoms against one trained model.
///
/// Symptom-level memoization makes this cheaper than N independent
/// [`diagnose_symptom`] calls — symptoms sharing an entity reuse one
/// pruning pass, one reverse BFS, and one set of prepared candidate
/// plans — while returning bit-identical reports (each candidate's seed
/// depends only on its id, never on batch position).
pub fn diagnose_batch(
    db: &MonitoringDb,
    mrf: &Arc<MrfModel>,
    graph: &RelationshipGraph,
    symptoms: &[Symptom],
    config: &MurphyConfig,
) -> Vec<DiagnosisReport> {
    let pool = config.parallel.then(crate::pool::global);
    diagnose_batch_impl(db, mrf, graph, symptoms, config, pool)
}

/// [`diagnose_batch`] on an explicit [`WorkerPool`] instance — see
/// [`diagnose_symptom_on`].
pub fn diagnose_batch_on(
    db: &MonitoringDb,
    mrf: &Arc<MrfModel>,
    graph: &RelationshipGraph,
    symptoms: &[Symptom],
    config: &MurphyConfig,
    pool: &WorkerPool,
) -> Vec<DiagnosisReport> {
    diagnose_batch_impl(db, mrf, graph, symptoms, config, Some(pool))
}

fn diagnose_batch_impl(
    db: &MonitoringDb,
    mrf: &Arc<MrfModel>,
    graph: &RelationshipGraph,
    symptoms: &[Symptom],
    config: &MurphyConfig,
    pool: Option<&WorkerPool>,
) -> Vec<DiagnosisReport> {
    let mut pruned: BTreeMap<EntityId, Vec<EntityId>> = BTreeMap::new();
    let mut contexts: BTreeMap<EntityId, SymptomContext> = BTreeMap::new();
    symptoms
        .iter()
        .map(|symptom| {
            let candidates = pruned
                .entry(symptom.entity)
                .or_insert_with(|| {
                    prune_candidates(db, graph, symptom.entity, config.threshold_scale)
                })
                .clone();
            let ctx = contexts.entry(symptom.entity).or_insert_with(|| {
                SymptomContext::new(graph, symptom.entity, config.subgraph_slack)
            });
            diagnose_pruned(db, mrf, graph, symptom, &candidates, config, ctx, pool)
        })
        .collect()
}

/// Shared tail of [`diagnose_symptom`] and [`diagnose_batch`]: evaluate
/// the pruning survivors and fix up the accounting so that
/// `evaluated + pruned + capped + 1 == node_count`.
#[allow(clippy::too_many_arguments)]
fn diagnose_pruned(
    db: &MonitoringDb,
    mrf: &Arc<MrfModel>,
    graph: &RelationshipGraph,
    symptom: &Symptom,
    candidates: &[EntityId],
    config: &MurphyConfig,
    ctx: &mut SymptomContext,
    pool: Option<&WorkerPool>,
) -> DiagnosisReport {
    let mut report = diagnose_with_context_on(db, mrf, symptom, candidates, config, ctx, pool);
    // `prune_candidates` never returns the symptom entity, so the node
    // count partitions exactly into {evaluated, capped, pruned, symptom}.
    report.candidates_pruned = graph
        .node_count()
        .saturating_sub(report.candidates_evaluated + report.candidates_capped + 1);
    report
}

/// Deterministic per-candidate seed derivation.
///
/// Contract: the seed is a pure function of `(base, candidate id)` and
/// never of the candidate's position in the evaluation order — this is
/// what makes sequential, pool-parallel, memoized, and batch runs
/// bit-identical. `wrapping_add` keeps the id→seed map total (an id of
/// `u64::MAX` must wrap, not panic in debug builds); the value is
/// unchanged for every id that does not overflow.
fn candidate_seed(base: u64, candidate: EntityId) -> u64 {
    base ^ (candidate.0 as u64)
        .wrapping_add(1)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{train_mrf, TrainingWindow};
    use murphy_graph::{build_from_seeds, BuildOptions};
    use murphy_telemetry::{AssociationKind, EntityKind, MonitoringDb};

    /// Star around a victim: one genuinely-coupled hot driver, one hot but
    /// uncoupled red herring, several cold bystanders.
    fn star_env() -> (MonitoringDb, RelationshipGraph, EntityId, EntityId, EntityId) {
        let mut db = MonitoringDb::new(10);
        let victim = db.add_entity(EntityKind::Vm, "victim");
        let driver = db.add_entity(EntityKind::Vm, "driver");
        let herring = db.add_entity(EntityKind::Vm, "herring");
        db.relate(driver, victim, AssociationKind::Related);
        db.relate(herring, victim, AssociationKind::Related);
        let cold: Vec<EntityId> = (0..3)
            .map(|i| {
                let c = db.add_entity(EntityKind::Vm, format!("cold{i}"));
                db.relate(c, victim, AssociationKind::Related);
                c
            })
            .collect();
        for t in 0..220u64 {
            let spike = if t >= 200 { 55.0 } else { 0.0 };
            let drv = 12.0 + 6.0 * ((t as f64) * 0.31).sin() + spike;
            // The herring is hot during the incident but uncorrelated with
            // the victim historically (independent wiggle + its own spike).
            let her = 14.0 + 6.0 * ((t as f64) * 1.7).cos() + if t >= 200 { 40.0 } else { 0.0 };
            db.record(driver, MetricKind::CpuUtil, t, drv);
            db.record(herring, MetricKind::CpuUtil, t, her);
            db.record(victim, MetricKind::CpuUtil, t, (0.95 * drv + 4.0).min(100.0));
            for &c in &cold {
                db.record(c, MetricKind::CpuUtil, t, 3.0);
            }
        }
        let graph = build_from_seeds(&db, &[victim], BuildOptions::default());
        (db, graph, victim, driver, herring)
    }

    /// `evaluated + pruned + capped + 1 == node_count` must hold for every
    /// full-pipeline report.
    fn assert_accounting(graph: &RelationshipGraph, report: &DiagnosisReport) {
        assert_eq!(
            report.candidates_evaluated
                + report.candidates_pruned
                + report.candidates_capped
                + 1,
            graph.node_count(),
            "accounting violated: {report:?}"
        );
    }

    #[test]
    fn end_to_end_confirms_driver_and_prunes_cold() {
        let (db, graph, victim, driver, _) = star_env();
        let config = MurphyConfig::fast();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 180), db.latest_tick());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);
        let report = diagnose_symptom(&db, &mrf, &graph, &symptom, &config);
        assert!(
            report.top_k(5).contains(&driver),
            "driver missing from {:?}",
            report.root_causes
        );
        // Cold bystanders (CPU 3% < 25% threshold) never get evaluated.
        assert!(report.candidates_evaluated <= 2, "evaluated {}", report.candidates_evaluated);
        assert!(report.candidates_pruned >= 3);
        assert_eq!(report.candidates_capped, 0);
        assert_accounting(&graph, &report);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let (db, graph, victim, _, _) = star_env();
        let mut config = MurphyConfig::fast();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 180), db.latest_tick());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);
        config.parallel = false;
        let seq = diagnose_symptom(&db, &mrf, &graph, &symptom, &config);
        config.parallel = true;
        let par = diagnose_symptom(&db, &mrf, &graph, &symptom, &config);
        assert_eq!(seq.top_k(10), par.top_k(10));
    }

    #[test]
    fn max_candidates_caps_evaluation() {
        let (db, graph, victim, _, _) = star_env();
        let mut config = MurphyConfig::fast();
        config.max_candidates = 1;
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 180), db.latest_tick());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);
        let report = diagnose_symptom(&db, &mrf, &graph, &symptom, &config);
        assert_eq!(report.candidates_evaluated, 1);
        // Regression: capped candidates are counted as capped, not folded
        // into (or clobbering) the pruning count.
        assert!(report.candidates_capped >= 1, "capped {}", report.candidates_capped);
        assert_accounting(&graph, &report);
    }

    #[test]
    fn symptom_entity_is_never_its_own_candidate() {
        let (db, graph, victim, driver, herring) = star_env();
        let config = MurphyConfig::fast();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 180), db.latest_tick());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);
        // An ablation-style caller passing the symptom entity itself: it
        // must be dropped, not evaluated or counted.
        let with_self = diagnose_with_candidates(
            &db, &mrf, &graph, &symptom, &[victim, driver, herring], &config,
        );
        let without_self =
            diagnose_with_candidates(&db, &mrf, &graph, &symptom, &[driver, herring], &config);
        assert_eq!(with_self, without_self);
        assert_eq!(with_self.candidates_evaluated, 2);
    }

    #[test]
    fn batch_matches_independent_diagnoses() {
        let (db, graph, victim, driver, _) = star_env();
        let config = MurphyConfig::fast();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 180), db.latest_tick());
        let symptoms = [
            Symptom::high(victim, MetricKind::CpuUtil),
            Symptom::high(driver, MetricKind::CpuUtil),
            // Repeat of the first symptom's entity: exercises the context
            // reuse path inside the batch.
            Symptom::high(victim, MetricKind::CpuUtil),
        ];
        let batched = diagnose_batch(&db, &mrf, &graph, &symptoms, &config);
        assert_eq!(batched.len(), symptoms.len());
        for (symptom, report) in symptoms.iter().zip(&batched) {
            let independent = diagnose_symptom(&db, &mrf, &graph, symptom, &config);
            assert_eq!(report, &independent, "batch diverged for {symptom:?}");
            assert_accounting(&graph, report);
        }
        assert_eq!(batched[0], batched[2]);
    }

    #[test]
    fn batch_of_nothing_is_nothing() {
        let (db, graph, _, _, _) = star_env();
        let config = MurphyConfig::fast();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 180), db.latest_tick());
        assert!(diagnose_batch(&db, &mrf, &graph, &[], &config).is_empty());
    }

    #[test]
    fn report_rank_queries() {
        let (db, graph, victim, driver, _) = star_env();
        let config = MurphyConfig::fast();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 180), db.latest_tick());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);
        let report = diagnose_symptom(&db, &mrf, &graph, &symptom, &config);
        if let Some(rank) = report.rank_of(driver) {
            assert!(rank >= 1);
            assert!(report.top_k(rank).contains(&driver));
        }
        assert_eq!(report.rank_of(EntityId(12345)), None);
        assert!(report.top_k(0).is_empty());
    }

    #[test]
    fn symptom_constructors() {
        let s = Symptom::high(EntityId(1), MetricKind::Latency);
        assert!(s.is_high());
        let s = Symptom::low(EntityId(1), MetricKind::Throughput);
        assert!(!s.is_high());
        assert_eq!(s.metric_id(), MetricId::new(EntityId(1), MetricKind::Throughput));
    }
}
