//! The Murphy facade — the Figure 2 workflow end-to-end.
//!
//! Inputs: the monitoring database, a relationship graph (or an affected
//! application / problematic entity to build one from), and one or more
//! problematic symptoms. Output: per symptom, a ranked list of root-cause
//! entities with causal explanation chains.

use crate::config::MurphyConfig;
use crate::diagnose::{diagnose_symptom, DiagnosisReport, Symptom};
use crate::explain::{explain_chain, Explanation};
use crate::mrf::MrfModel;
use crate::train_cache::{train_cache_enabled, TrainingCache};
use crate::training::{train_mrf, train_mrf_cached, TrainingWindow};
use murphy_graph::{build_from_seeds, BuildOptions, RelationshipGraph};
use murphy_telemetry::{ConfigChange, EntityId, MetricId, MonitoringDb};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// A diagnosis report with explanations attached.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExplainedReport {
    /// The ranked diagnosis.
    pub report: DiagnosisReport,
    /// One optional explanation chain per root cause, aligned with
    /// `report.root_causes` (None where no label-respecting path exists).
    pub explanations: Vec<Option<Explanation>>,
    /// Recent configuration changes in the diagnosis window, surfaced for
    /// the operator (§4.2 edge cases: recently spawned/changed entities
    /// may be the trigger even when their metrics carry no history).
    pub recent_changes: Vec<ConfigChange>,
}

/// The Murphy performance-diagnosis engine.
#[derive(Debug, Clone)]
pub struct Murphy {
    config: MurphyConfig,
    /// Fingerprint-keyed fit cache shared by every training run this
    /// engine performs. Cloning the engine shares the cache (a clone
    /// warms the same entries) — this is the "per-tenant model cache" of
    /// the service direction: one `Murphy` per tenant.
    cache: Arc<Mutex<TrainingCache>>,
}

impl Murphy {
    /// Create an engine with the given configuration.
    pub fn new(config: MurphyConfig) -> Self {
        Self {
            config,
            cache: Arc::new(Mutex::new(TrainingCache::new())),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MurphyConfig {
        &self.config
    }

    /// Number of factor fits currently held by the engine's training
    /// cache (observability; 0 until the first cached diagnosis).
    pub fn cached_factors(&self) -> usize {
        self.cache.lock().expect("training cache lock poisoned").len()
    }

    /// Train the MRF for a diagnosis call — through the engine's held
    /// [`TrainingCache`] when `MURPHY_TRAIN_CACHE` allows it (the
    /// default), otherwise the legacy full refit. Both paths produce
    /// bit-identical models; only the cost differs.
    fn train(
        &self,
        db: &MonitoringDb,
        graph: &RelationshipGraph,
        window: TrainingWindow,
    ) -> Arc<MrfModel> {
        if train_cache_enabled() {
            let mut cache = self.cache.lock().expect("training cache lock poisoned");
            train_mrf_cached(db, graph, &self.config, window, db.latest_tick(), &mut cache)
        } else {
            train_mrf(db, graph, &self.config, window, db.latest_tick())
        }
    }

    /// Diagnose one symptom: online training + counterfactual inference +
    /// ranking. Training uses the window of `n_train` ticks ending at the
    /// latest data (incident included).
    pub fn diagnose(
        &self,
        db: &MonitoringDb,
        graph: &RelationshipGraph,
        symptom: &Symptom,
    ) -> DiagnosisReport {
        let window = TrainingWindow::online(db, self.config.n_train);
        let mrf = self.train(db, graph, window);
        diagnose_symptom(db, &mrf, graph, symptom, &self.config)
    }

    /// Diagnose many symptoms in one call: the model is trained **once**
    /// and per-symptom work (pruning, the reverse BFS, resampling plans)
    /// is shared across symptoms on the same entity.
    ///
    /// Reports are bit-identical to per-symptom [`Murphy::diagnose`]
    /// calls; only the cost differs. This is the natural follow-up to
    /// [`Murphy::find_symptoms`], which often returns several symptoms on
    /// one incident entity.
    pub fn diagnose_batch(
        &self,
        db: &MonitoringDb,
        graph: &RelationshipGraph,
        symptoms: &[Symptom],
    ) -> Vec<DiagnosisReport> {
        let window = TrainingWindow::online(db, self.config.n_train);
        let mrf = self.train(db, graph, window);
        crate::diagnose::diagnose_batch(db, &mrf, graph, symptoms, &self.config)
    }

    /// Diagnose with an explicit training window (the offline-training
    /// ablation of §6.5.1 and the n_train sweeps of §6.5.2 use this).
    pub fn diagnose_with_window(
        &self,
        db: &MonitoringDb,
        graph: &RelationshipGraph,
        symptom: &Symptom,
        window: TrainingWindow,
    ) -> DiagnosisReport {
        let mrf = self.train(db, graph, window);
        diagnose_symptom(db, &mrf, graph, symptom, &self.config)
    }

    /// Diagnose and attach explanation chains (§4.3).
    pub fn diagnose_explained(
        &self,
        db: &MonitoringDb,
        graph: &RelationshipGraph,
        symptom: &Symptom,
    ) -> ExplainedReport {
        let report = self.diagnose(db, graph, symptom);
        let explanations = report
            .root_causes
            .iter()
            .map(|rc| {
                explain_chain(
                    db,
                    graph,
                    rc.entity,
                    symptom.entity,
                    self.config.threshold_scale,
                )
            })
            .collect();
        // "Recent" = within the online training window.
        let since = db.latest_tick().saturating_sub(self.config.n_train as u64);
        let recent_changes = db.recent_changes(since).into_iter().cloned().collect();
        ExplainedReport {
            report,
            explanations,
            recent_changes,
        }
    }

    /// Build a relationship graph seeded by one problematic entity (§4.1:
    /// `S = {e}`), expanding per `options`.
    pub fn graph_for_entity(
        &self,
        db: &MonitoringDb,
        entity: EntityId,
        options: BuildOptions,
    ) -> RelationshipGraph {
        build_from_seeds(db, &[entity], options)
    }

    /// Build a relationship graph seeded by an affected application's
    /// members (§4.1).
    pub fn graph_for_application(
        &self,
        db: &MonitoringDb,
        app: &str,
        options: BuildOptions,
    ) -> RelationshipGraph {
        build_from_seeds(db, &db.application_members(app), options)
    }

    /// Find problematic symptoms in an application by scanning member
    /// entities for metrics above their conservative thresholds in the
    /// current time slice (Appendix A.1's automatic mode).
    pub fn find_symptoms(&self, db: &MonitoringDb, app: &str) -> Vec<Symptom> {
        let mut out = Vec::new();
        for e in db.application_members(app) {
            for kind in db.metrics_of(e) {
                let value = db.current_value(MetricId::new(e, kind));
                if value > kind.threshold() * self.config.threshold_scale {
                    out.push(Symptom::high(e, kind));
                }
            }
        }
        out
    }
}

impl Default for Murphy {
    fn default() -> Self {
        Self::new(MurphyConfig::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murphy_telemetry::{AssociationKind, EntityKind, MetricKind};

    /// driver → victim with an incident at the tail of the trace; victim
    /// tagged into an application.
    fn env() -> (MonitoringDb, EntityId, EntityId) {
        let mut db = MonitoringDb::new(10);
        let driver = db.add_entity(EntityKind::Vm, "driver");
        let victim = db.add_entity(EntityKind::Vm, "victim");
        db.relate(driver, victim, AssociationKind::Related);
        db.tag_application("shop", victim);
        for t in 0..220u64 {
            let spike = if t >= 200 { 60.0 } else { 0.0 };
            let drv = 10.0 + 5.0 * ((t as f64) * 0.29).sin() + spike;
            db.record(driver, MetricKind::CpuUtil, t, drv);
            db.record(victim, MetricKind::CpuUtil, t, (0.9 * drv + 5.0).min(100.0));
        }
        (db, driver, victim)
    }

    #[test]
    fn facade_end_to_end() {
        let (db, driver, victim) = env();
        let murphy = Murphy::new(MurphyConfig::fast());
        let graph = murphy.graph_for_entity(&db, victim, BuildOptions::default());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);
        let explained = murphy.diagnose_explained(&db, &graph, &symptom);
        assert!(explained.report.top_k(5).contains(&driver));
        assert_eq!(
            explained.explanations.len(),
            explained.report.root_causes.len()
        );
        // The driver's chain exists: driver (degraded, CPU 70+) → victim.
        let idx = explained
            .report
            .root_causes
            .iter()
            .position(|r| r.entity == driver)
            .unwrap();
        let chain = explained.explanations[idx].as_ref().expect("chain");
        assert_eq!(chain.entities().first(), Some(&driver));
        assert_eq!(chain.entities().last(), Some(&victim));
    }

    #[test]
    fn facade_batch_matches_single_diagnoses() {
        let (db, driver, victim) = env();
        let murphy = Murphy::new(MurphyConfig::fast());
        let graph = murphy.graph_for_entity(&db, victim, BuildOptions::default());
        let symptoms = [
            Symptom::high(victim, MetricKind::CpuUtil),
            Symptom::high(driver, MetricKind::CpuUtil),
        ];
        let batched = murphy.diagnose_batch(&db, &graph, &symptoms);
        assert_eq!(batched.len(), 2);
        for (symptom, report) in symptoms.iter().zip(&batched) {
            assert_eq!(report, &murphy.diagnose(&db, &graph, symptom));
        }
    }

    #[test]
    fn recent_changes_are_surfaced() {
        let (mut db, _, victim) = env();
        // One stale change (outside the window) and one recent one.
        db.record_change(victim, murphy_telemetry::ChangeKind::Created, 5, "spawned");
        db.record_change(victim, murphy_telemetry::ChangeKind::Resized, 210, "scaled up");
        let murphy = Murphy::new(MurphyConfig::fast()); // n_train = 120
        let graph = murphy.graph_for_entity(&db, victim, BuildOptions::default());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);
        let explained = murphy.diagnose_explained(&db, &graph, &symptom);
        assert_eq!(explained.recent_changes.len(), 1);
        assert_eq!(explained.recent_changes[0].detail, "scaled up");
    }

    #[test]
    fn symptom_discovery_by_thresholds() {
        let (db, _, victim) = env();
        let murphy = Murphy::new(MurphyConfig::fast());
        let symptoms = murphy.find_symptoms(&db, "shop");
        // Victim's CPU (≈87%) is above the 25% threshold.
        assert!(symptoms
            .iter()
            .any(|s| s.entity == victim && s.metric == MetricKind::CpuUtil));
        // Unknown app: no symptoms.
        assert!(murphy.find_symptoms(&db, "nope").is_empty());
    }

    #[test]
    fn graph_for_application_uses_members() {
        let (db, _, victim) = env();
        let murphy = Murphy::default();
        let g = murphy.graph_for_application(&db, "shop", BuildOptions { max_hops: Some(0) });
        assert_eq!(g.node_count(), 1);
        assert!(g.contains(victim));
    }

    #[test]
    fn offline_window_misses_the_incident() {
        // §6.5.1 in miniature: training that excludes incident-time points
        // must do no better than online training at confirming the driver.
        let (db, driver, victim) = env();
        let murphy = Murphy::new(MurphyConfig::fast());
        let graph = murphy.graph_for_entity(&db, victim, BuildOptions::default());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);

        let online = murphy.diagnose(&db, &graph, &symptom);
        let offline = murphy.diagnose_with_window(
            &db,
            &graph,
            &symptom,
            TrainingWindow::offline(200, 120),
        );
        let online_hit = online.top_k(5).contains(&driver);
        assert!(online_hit, "online training must find the driver");
        // We don't assert offline *fails* (in this tiny linear system the
        // pre-incident coupling may suffice) — only that online is at least
        // as good, which is the direction the §6.5.1 bar chart shows.
        let offline_hit = offline.top_k(5).contains(&driver);
        assert!(online_hit >= offline_hit);
    }
}
