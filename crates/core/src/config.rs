//! Murphy's configuration.
//!
//! All the paper's tunables live here with their published defaults: W = 4
//! Gibbs passes, 5,000 counterfactual samples, B = 10 features per factor,
//! a few hundred training points from the week before the incident, the
//! 2σ counterfactual offset, and the conservative pruning thresholds.

use murphy_learn::ModelKind;
use serde::{Deserialize, Serialize};

/// Configuration for the Murphy diagnosis engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MurphyConfig {
    /// Model family for the factors (§6.6.1 picks ridge).
    pub model: ModelKind,
    /// Number of training time slices — "one week prior to the incident,
    /// which ... constitutes of a few hundred time points" (§4.2).
    pub n_train: usize,
    /// Feature budget B per factor (the "one in ten rule", §4.2).
    pub feature_budget: usize,
    /// Gibbs passes W over the shortest-path subgraph (§6.8 settles on 4).
    pub gibbs_rounds: usize,
    /// Slack on the shortest-path subgraph: nodes on walks up to
    /// `dist(A,D) + slack` are resampled. Influence routinely detours one
    /// hop off the shortest path (e.g. service → container → service), so
    /// a strict shortest-path subgraph (slack 0) can fail to propagate a
    /// counterfactual at all.
    pub subgraph_slack: usize,
    /// Counterfactual and factual samples each for the t-test (paper: 5000).
    pub num_samples: usize,
    /// Significance level for the Welch t-test decision.
    pub alpha: f64,
    /// Counterfactual offset in historical standard deviations (paper: 2).
    pub counterfactual_sigmas: f64,
    /// Minimum effect size: the counterfactual must relieve the symptom by
    /// at least this many historical standard deviations of the symptom
    /// metric, in addition to t-test significance. With thousands of
    /// samples the t-test alone flags negligible-but-real influences
    /// (statistical vs. practical significance); this guard keeps the
    /// false-positive behaviour the paper reports.
    pub min_relief_sigmas: f64,
    /// Scale on the conservative pruning/labeling thresholds (1.0 = the
    /// paper's values).
    pub threshold_scale: f64,
    /// Saturation on the anomaly score used for ranking. Every metric far
    /// beyond this many reference standard deviations is "maximally
    /// anomalous"; among saturated candidates the ranking prefers the one
    /// *farthest* from the symptom — the most upstream confirmed cause —
    /// instead of comparing meaningless 100σ-vs-200σ values.
    pub anomaly_saturation: f64,
    /// Maximum candidates to evaluate (0 = unlimited). A safety valve for
    /// very large graphs; the paper relies on pruning alone.
    pub max_candidates: usize,
    /// Base RNG seed; per-candidate streams derive from it.
    pub seed: u64,
    /// Evaluate candidates on multiple threads.
    pub parallel: bool,
}

impl MurphyConfig {
    /// The paper's published parameters.
    pub fn paper() -> Self {
        Self {
            model: ModelKind::Ridge,
            n_train: 300,
            feature_budget: 10,
            gibbs_rounds: 4,
            subgraph_slack: 2,
            num_samples: 5000,
            alpha: 0.05,
            counterfactual_sigmas: 2.0,
            min_relief_sigmas: 0.25,
            threshold_scale: 1.0,
            anomaly_saturation: 20.0,
            max_candidates: 0,
            seed: 0x4d55_5250, // "MURP"
            parallel: true,
        }
    }

    /// Reduced sample counts for tests, examples, and CI — same algorithm,
    /// ~10× faster, still statistically decisive on the emulated scenarios.
    pub fn fast() -> Self {
        Self {
            n_train: 120,
            num_samples: 400,
            ..Self::paper()
        }
    }

    /// Builder-style: set the factor model family.
    pub fn with_model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Builder-style: set the training-window length.
    pub fn with_n_train(mut self, n_train: usize) -> Self {
        self.n_train = n_train;
        self
    }

    /// Builder-style: set the Gibbs pass count W.
    pub fn with_gibbs_rounds(mut self, w: usize) -> Self {
        self.gibbs_rounds = w;
        self
    }

    /// Builder-style: set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: set the per-side sample count.
    pub fn with_num_samples(mut self, n: usize) -> Self {
        self.num_samples = n;
        self
    }
}

impl Default for MurphyConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_publication() {
        let c = MurphyConfig::paper();
        assert_eq!(c.gibbs_rounds, 4);
        assert_eq!(c.num_samples, 5000);
        assert_eq!(c.feature_budget, 10);
        assert_eq!(c.counterfactual_sigmas, 2.0);
        assert_eq!(c.model, ModelKind::Ridge);
        assert!(c.n_train >= 200 && c.n_train <= 500, "a few hundred points");
    }

    #[test]
    fn fast_reduces_only_sampling_effort() {
        let p = MurphyConfig::paper();
        let f = MurphyConfig::fast();
        assert!(f.num_samples < p.num_samples);
        assert!(f.n_train < p.n_train);
        assert_eq!(f.gibbs_rounds, p.gibbs_rounds);
        assert_eq!(f.model, p.model);
        assert_eq!(f.counterfactual_sigmas, p.counterfactual_sigmas);
    }

    #[test]
    fn builders_compose() {
        let c = MurphyConfig::fast()
            .with_model(ModelKind::Mlp)
            .with_gibbs_rounds(8)
            .with_n_train(64)
            .with_num_samples(100)
            .with_seed(9);
        assert_eq!(c.model, ModelKind::Mlp);
        assert_eq!(c.gibbs_rounds, 8);
        assert_eq!(c.n_train, 64);
        assert_eq!(c.num_samples, 100);
        assert_eq!(c.seed, 9);
    }
}
