//! The Markov random field over the relationship graph.
//!
//! [`MrfModel`] is the trained, queryable object the inference algorithm
//! works with: a dense index over every (entity, metric) pair in the
//! relationship graph, a factor per metric, the *current* metric state at
//! diagnosis time, and per-metric historical summaries (mean/std from the
//! training window) for anomaly scoring and counterfactual offsets.

use crate::factor::Factor;
use crate::train_cache::TrainStats;
use murphy_stats::Summary;
use murphy_telemetry::{EntityId, MetricId, MetricKind};
use std::collections::BTreeMap;

/// Dense index over the metrics of all graph entities.
#[derive(Debug, Clone, Default)]
pub struct MetricIndex {
    ids: Vec<MetricId>,
    positions: BTreeMap<MetricId, usize>,
    by_entity: BTreeMap<EntityId, Vec<usize>>,
}

impl MetricIndex {
    /// Build from an ordered list of metric ids.
    pub fn new(ids: Vec<MetricId>) -> Self {
        let mut positions = BTreeMap::new();
        let mut by_entity: BTreeMap<EntityId, Vec<usize>> = BTreeMap::new();
        for (i, &m) in ids.iter().enumerate() {
            positions.insert(m, i);
            by_entity.entry(m.entity).or_default().push(i);
        }
        Self {
            ids,
            positions,
            by_entity,
        }
    }

    /// Number of indexed metrics.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no metrics are indexed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Position of a metric id.
    pub fn position(&self, m: MetricId) -> Option<usize> {
        self.positions.get(&m).copied()
    }

    /// Metric id at a position.
    pub fn id(&self, pos: usize) -> MetricId {
        self.ids[pos]
    }

    /// Positions of all of an entity's metrics.
    pub fn entity_positions(&self, e: EntityId) -> &[usize] {
        self.by_entity.get(&e).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All indexed metric ids.
    pub fn ids(&self) -> &[MetricId] {
        &self.ids
    }
}

/// The trained MRF: factors + current state + history summaries.
pub struct MrfModel {
    /// Metric index shared by factors and states.
    pub index: MetricIndex,
    /// One factor per indexed metric, aligned with `index` positions.
    /// `None` where training produced no usable factor (the metric is then
    /// held at its current value during resampling).
    pub factors: Vec<Option<Factor>>,
    /// Metric values at diagnosis time ("current true values").
    pub current: Vec<f64>,
    /// Historical summaries over the full training window per metric
    /// (incident-time points included — used to size counterfactual
    /// offsets, where the inflated σ makes a 2σ step land near normal).
    pub history: Vec<Summary>,
    /// Reference summaries over the *older half* of the training window
    /// (used for anomaly scoring, where an incident-inflated σ would
    /// squash exactly the z-scores the ranking needs).
    pub reference: Vec<Summary>,
    /// Refit/reuse accounting from the training run that produced this
    /// model (all zeros for models assembled outside the trainer).
    pub train_stats: TrainStats,
}

impl MrfModel {
    /// Current value of a metric (by id); the metric-kind default if the
    /// metric is not in the graph.
    pub fn current_value(&self, m: MetricId) -> f64 {
        match self.index.position(m) {
            Some(p) => self.current[p],
            None => m.kind.default_value(),
        }
    }

    /// Historical summary of a metric.
    pub fn history_of(&self, m: MetricId) -> Option<&Summary> {
        self.index.position(m).map(|p| &self.history[p])
    }

    /// Absolute z-score of a metric's current value against its reference
    /// (pre-incident) history — the paper's per-metric anomaly score
    /// (§4.2 "Ranking": standard deviations from the historical mean).
    pub fn metric_anomaly(&self, pos: usize) -> f64 {
        let h = &self.reference[pos];
        if h.count < 2 {
            return 0.0;
        }
        ((self.current[pos] - h.mean) / h.std_dev_floored(murphy_stats::anomaly::STD_FLOOR)).abs()
    }

    /// Entity anomaly score = score of its most anomalous metric.
    pub fn entity_anomaly(&self, e: EntityId) -> f64 {
        self.index
            .entity_positions(e)
            .iter()
            .map(|&p| self.metric_anomaly(p))
            .fold(0.0, f64::max)
    }

    /// Position of the entity's most anomalous metric, if it has any.
    pub fn most_anomalous_metric(&self, e: EntityId) -> Option<usize> {
        self.index
            .entity_positions(e)
            .iter()
            .copied()
            .max_by(|&a, &b| {
                self.metric_anomaly(a)
                    .partial_cmp(&self.metric_anomaly(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Counterfactual value for the metric at `pos`: the current value
    /// moved `sigmas` historical standard deviations *toward normal* (the
    /// paper sets A′ "2 standard deviations away from its current value",
    /// lower when the metric is anomalously high, higher when low), clamped
    /// to the metric's domain.
    pub fn counterfactual_value(&self, pos: usize, sigmas: f64) -> f64 {
        let h = &self.history[pos];
        let kind = self.index.id(pos).kind;
        let std = h.std_dev_floored(1e-6);
        let current = self.current[pos];
        // Direction is judged against the pre-incident reference mean when
        // available (the incident pulls the full-window mean toward the
        // anomaly); the step size uses the full-window σ.
        let normal = if self.reference[pos].count >= 2 {
            self.reference[pos].mean
        } else {
            h.mean
        };
        let direction = if current >= normal { -1.0 } else { 1.0 };
        kind.clamp(current + direction * sigmas * std)
    }

    /// Convenience: kind of the metric at a position.
    pub fn kind_at(&self, pos: usize) -> MetricKind {
        self.index.id(pos).kind
    }
}

impl std::fmt::Debug for MrfModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MrfModel")
            .field("metrics", &self.index.len())
            .field(
                "factors",
                &self.factors.iter().filter(|x| x.is_some()).count(),
            )
            .field("train_stats", &self.train_stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid(e: u32, k: MetricKind) -> MetricId {
        MetricId::new(EntityId(e), k)
    }

    fn tiny_model() -> MrfModel {
        let ids = vec![
            mid(0, MetricKind::CpuUtil),
            mid(0, MetricKind::MemUtil),
            mid(1, MetricKind::Latency),
        ];
        let index = MetricIndex::new(ids);
        let history = vec![
            Summary::of(&[10.0, 12.0, 8.0, 10.0]),  // cpu: mean 10
            Summary::of(&[50.0, 50.0, 50.0, 50.0]), // mem: constant 50
            Summary::of(&[5.0, 6.0, 4.0, 5.0]),     // latency: mean 5
        ];
        MrfModel {
            factors: vec![None, None, None],
            current: vec![90.0, 50.0, 5.0],
            index,
            reference: history.clone(),
            history,
            train_stats: TrainStats::default(),
        }
    }

    #[test]
    fn index_round_trips() {
        let m = tiny_model();
        assert_eq!(m.index.len(), 3);
        let cpu = mid(0, MetricKind::CpuUtil);
        let p = m.index.position(cpu).unwrap();
        assert_eq!(m.index.id(p), cpu);
        assert_eq!(m.index.entity_positions(EntityId(0)).len(), 2);
        assert_eq!(m.index.entity_positions(EntityId(9)).len(), 0);
    }

    #[test]
    fn anomaly_scores_flag_the_hot_metric() {
        let m = tiny_model();
        // CPU at 90 vs history mean 10: hugely anomalous.
        assert!(m.entity_anomaly(EntityId(0)) > 10.0);
        // Latency at its mean: not anomalous.
        assert!(m.entity_anomaly(EntityId(1)) < 0.5);
        // Most anomalous metric of entity 0 is CPU (position 0).
        assert_eq!(m.most_anomalous_metric(EntityId(0)), Some(0));
        // Unknown entity scores zero.
        assert_eq!(m.entity_anomaly(EntityId(7)), 0.0);
        assert_eq!(m.most_anomalous_metric(EntityId(7)), None);
    }

    #[test]
    fn counterfactual_moves_toward_normal() {
        let m = tiny_model();
        // CPU current 90 > mean 10: counterfactual is lower.
        let cf = m.counterfactual_value(0, 2.0);
        assert!(cf < 90.0);
        assert!(cf >= 0.0);
        // A metric below its mean gets pushed up.
        let mut m2 = tiny_model();
        m2.current[2] = 1.0; // latency below mean 5
        let cf2 = m2.counterfactual_value(2, 2.0);
        assert!(cf2 > 1.0);
    }

    #[test]
    fn counterfactual_respects_domain_clamp() {
        let mut m = tiny_model();
        // CPU current 12, historical std small: 2σ down stays ≥ 0; force a
        // huge σ via history with wide spread.
        m.history[0] = Summary::of(&[0.0, 100.0, 0.0, 100.0]);
        m.current[0] = 10.0;
        let cf = m.counterfactual_value(0, 2.0);
        assert!((0.0..=100.0).contains(&cf));
    }

    #[test]
    fn current_value_falls_back_to_default() {
        let m = tiny_model();
        assert_eq!(m.current_value(mid(9, MetricKind::Rtt)), 0.0);
        assert_eq!(m.current_value(mid(0, MetricKind::CpuUtil)), 90.0);
    }

    #[test]
    fn constant_history_is_not_anomalous_at_same_value() {
        let m = tiny_model();
        // mem is constant 50 and currently 50: z-score 0.
        assert_eq!(m.metric_anomaly(1), 0.0);
    }
}
