//! Murphy's core: the MRF framework, counterfactual inference, and
//! explanation generation (§4 of the paper).
//!
//! The pipeline, per problematic symptom `(M_o, E_o)`:
//!
//! 1. **Train** — every entity metric in the relationship graph gets a
//!    factor `P_v(v | in_nbrs(v))`: a regression model (ridge by default)
//!    from the incoming neighbors' metrics to the entity's metric, trained
//!    *online* on the window ending at diagnosis time so incident-time
//!    points are included ([`training`]).
//! 2. **Infer** — for each candidate root cause `A` (pruned by the
//!    conservative-threshold BFS), set `A`'s most anomalous metric to a
//!    counterfactual value 2σ toward normal, resample the shortest-path
//!    subgraph `T(A→D)` with `W` Gibbs passes ([`sampler`]), and collect
//!    samples of the symptom metric; repeat from `A`'s factual value; a
//!    Welch t-test decides whether the counterfactual significantly
//!    relieves the symptom ([`counterfactual`], [`diagnose`]).
//! 3. **Rank** — surviving candidates are ordered by how anomalous their
//!    current metrics are ([`ranking`]).
//! 4. **Explain** — entities get threshold labels (heavy hitter, high
//!    drop rate, degraded, non-functional) and chains from root cause to
//!    symptom are traced through the label-causality state machine of
//!    Figure 4 ([`labels`], [`explain`]).
//!
//! [`murphy::Murphy`] ties the stages into the Figure 2 workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod counterfactual;
pub mod diagnose;
pub mod explain;
pub mod factor;
pub mod labels;
pub mod mrf;
pub mod murphy;
pub mod pool;
pub mod ranking;
pub mod sampler;
pub mod train_cache;
pub mod training;

pub use config::MurphyConfig;
pub use counterfactual::{
    evaluate_candidate, evaluate_candidate_prepared, CandidateVerdict, PreparedCandidate,
    SymptomContext,
};
pub use diagnose::{
    diagnose_batch, diagnose_batch_on, diagnose_symptom, diagnose_symptom_on, DiagnosisReport,
    RankedRootCause, Symptom,
};
pub use explain::{Explanation, ExplanationStep};
pub use labels::EntityLabel;
pub use mrf::MrfModel;
pub use murphy::Murphy;
pub use pool::{PoolStats, WorkerPool};
pub use train_cache::{train_cache_enabled, TrainStats, TrainingCache};
pub use training::{train_mrf, train_mrf_cached, TrainingWindow};
