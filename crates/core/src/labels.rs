//! Threshold-based entity labels (§4.3).
//!
//! Once root causes are found, Murphy assigns each entity one of five
//! labels from its current metrics and the conservative thresholds, then
//! uses a small state machine of causal truths between labels (Figure 4)
//! to trace human-readable explanation chains:
//!
//! * **heavy hitter** — high throughput / session count / load,
//! * **high drop rate** — drops or retransmits above threshold,
//! * **degraded performance** — high latency or saturated resources,
//! * **non-functional** — erroring or apparently down,
//! * **okay** — nothing above threshold.

use murphy_telemetry::{EntityId, MetricId, MetricKind, MonitoringDb};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The label of an entity, per the Figure 4 state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EntityLabel {
    /// No metric above its conservative threshold.
    Okay,
    /// High load: throughput, session count, request rate, or tx/rx above
    /// threshold.
    HeavyHitter,
    /// Drop rate or retransmission ratio above threshold.
    HighDropRate,
    /// High latency/RTT or saturated CPU/memory/disk/buffer.
    Degraded,
    /// Erroring (error rate above threshold) — "faulty/non-functional".
    NonFunctional,
}

impl EntityLabel {
    /// Human-readable label text.
    pub fn label(self) -> &'static str {
        match self {
            EntityLabel::Okay => "okay",
            EntityLabel::HeavyHitter => "heavy hitter",
            EntityLabel::HighDropRate => "high drop rate",
            EntityLabel::Degraded => "degraded performance",
            EntityLabel::NonFunctional => "non-functional",
        }
    }

    /// The Figure 4 causal truths: can an entity in state `self` cause a
    /// neighbor to be in state `to`?
    ///
    /// Encoded edges:
    /// * heavy hitter → heavy hitter (load propagates: crawler → frontend
    ///   → backend),
    /// * heavy hitter → high drop rate ("heavy hitter flow can cause high
    ///   drop rate on a virtual NIC"),
    /// * heavy hitter → degraded ("heavy hitter flow can cause high load
    ///   on a VM"),
    /// * heavy hitter → non-functional,
    /// * high drop rate → degraded / non-functional,
    /// * degraded → degraded / non-functional (a slow dependency slows or
    ///   breaks its dependents).
    pub fn can_cause(self, to: EntityLabel) -> bool {
        use EntityLabel::*;
        matches!(
            (self, to),
            (HeavyHitter, HeavyHitter)
                | (HeavyHitter, HighDropRate)
                | (HeavyHitter, Degraded)
                | (HeavyHitter, NonFunctional)
                | (HighDropRate, Degraded)
                | (HighDropRate, NonFunctional)
                | (Degraded, Degraded)
                | (Degraded, NonFunctional)
        )
    }
}

impl fmt::Display for EntityLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Label one entity from its current metric values.
///
/// Precedence, most severe first: non-functional, degraded, high drop
/// rate, heavy hitter, okay. `threshold_scale` scales the conservative
/// thresholds (1.0 = the paper's).
pub fn label_entity(db: &MonitoringDb, entity: EntityId, threshold_scale: f64) -> EntityLabel {
    let mut heavy = false;
    let mut drops = false;
    let mut degraded = false;
    let mut non_functional = false;
    for kind in db.metrics_of(entity) {
        let value = db.current_value(MetricId::new(entity, kind));
        if value <= kind.threshold() * threshold_scale {
            continue;
        }
        match kind {
            MetricKind::ErrorRate => non_functional = true,
            MetricKind::DropRate | MetricKind::RetransmitRatio => drops = true,
            MetricKind::Latency
            | MetricKind::Rtt
            | MetricKind::CpuUtil
            | MetricKind::MemUtil
            | MetricKind::DiskUtil
            | MetricKind::BufferUtil
            | MetricKind::SpaceUtil => degraded = true,
            k if k.is_load_like() => heavy = true,
            _ => {}
        }
    }
    if non_functional {
        EntityLabel::NonFunctional
    } else if degraded {
        EntityLabel::Degraded
    } else if drops {
        EntityLabel::HighDropRate
    } else if heavy {
        EntityLabel::HeavyHitter
    } else {
        EntityLabel::Okay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murphy_telemetry::EntityKind;

    fn db_with(values: &[(MetricKind, f64)]) -> (MonitoringDb, EntityId) {
        let mut db = MonitoringDb::new(10);
        let e = db.add_entity(EntityKind::Vm, "e");
        for &(kind, v) in values {
            db.record(e, kind, 0, v);
        }
        (db, e)
    }

    #[test]
    fn quiet_entity_is_okay() {
        let (db, e) = db_with(&[(MetricKind::CpuUtil, 5.0), (MetricKind::NetTx, 10.0)]);
        assert_eq!(label_entity(&db, e, 1.0), EntityLabel::Okay);
    }

    #[test]
    fn load_metrics_make_heavy_hitter() {
        let (db, e) = db_with(&[(MetricKind::Throughput, 2000.0)]);
        assert_eq!(label_entity(&db, e, 1.0), EntityLabel::HeavyHitter);
        let (db, e) = db_with(&[(MetricKind::SessionCount, 80.0)]);
        assert_eq!(label_entity(&db, e, 1.0), EntityLabel::HeavyHitter);
    }

    #[test]
    fn drops_make_high_drop_rate() {
        let (db, e) = db_with(&[(MetricKind::DropRate, 0.5)]);
        assert_eq!(label_entity(&db, e, 1.0), EntityLabel::HighDropRate);
    }

    #[test]
    fn saturation_or_latency_make_degraded() {
        let (db, e) = db_with(&[(MetricKind::CpuUtil, 60.0)]);
        assert_eq!(label_entity(&db, e, 1.0), EntityLabel::Degraded);
        let (db, e) = db_with(&[(MetricKind::Latency, 300.0)]);
        assert_eq!(label_entity(&db, e, 1.0), EntityLabel::Degraded);
    }

    #[test]
    fn errors_make_non_functional() {
        let (db, e) = db_with(&[(MetricKind::ErrorRate, 10.0)]);
        assert_eq!(label_entity(&db, e, 1.0), EntityLabel::NonFunctional);
    }

    #[test]
    fn severity_precedence() {
        // All at once: non-functional wins.
        let (db, e) = db_with(&[
            (MetricKind::Throughput, 2000.0),
            (MetricKind::DropRate, 0.5),
            (MetricKind::CpuUtil, 60.0),
            (MetricKind::ErrorRate, 10.0),
        ]);
        assert_eq!(label_entity(&db, e, 1.0), EntityLabel::NonFunctional);
        // Degraded beats drops and heavy.
        let (db, e) = db_with(&[
            (MetricKind::Throughput, 2000.0),
            (MetricKind::DropRate, 0.5),
            (MetricKind::CpuUtil, 60.0),
        ]);
        assert_eq!(label_entity(&db, e, 1.0), EntityLabel::Degraded);
        // Drops beat heavy.
        let (db, e) = db_with(&[(MetricKind::Throughput, 2000.0), (MetricKind::DropRate, 0.5)]);
        assert_eq!(label_entity(&db, e, 1.0), EntityLabel::HighDropRate);
    }

    #[test]
    fn threshold_scale_applies() {
        let (db, e) = db_with(&[(MetricKind::CpuUtil, 30.0)]);
        assert_eq!(label_entity(&db, e, 1.0), EntityLabel::Degraded);
        assert_eq!(label_entity(&db, e, 2.0), EntityLabel::Okay);
    }

    #[test]
    fn figure4_state_machine_edges() {
        use EntityLabel::*;
        // Present edges.
        assert!(HeavyHitter.can_cause(HeavyHitter));
        assert!(HeavyHitter.can_cause(HighDropRate));
        assert!(HeavyHitter.can_cause(Degraded));
        assert!(HeavyHitter.can_cause(NonFunctional));
        assert!(HighDropRate.can_cause(Degraded));
        assert!(Degraded.can_cause(NonFunctional));
        assert!(Degraded.can_cause(Degraded));
        // Absent edges: nothing flows out of Okay or NonFunctional;
        // effects don't cause their causes.
        assert!(!Okay.can_cause(Degraded));
        assert!(!NonFunctional.can_cause(Degraded));
        assert!(!Degraded.can_cause(HeavyHitter));
        assert!(!HighDropRate.can_cause(HeavyHitter));
        assert!(!Degraded.can_cause(HighDropRate));
    }
}
