//! The adapted Gibbs sampler (§4.2, "Inference algorithm").
//!
//! Exact Gibbs sampling over the whole relationship graph is both too
//! expensive (thousands of entities) and destructive (it would resample
//! entities unrelated to the candidate). Murphy instead resamples only the
//! shortest-path subgraph `T(A→D)`, in increasing distance from the
//! candidate `A`, and repeats the pass `W` times — the repetition is what
//! propagates effects around cycles inside `T` (§6.6.2 measures the gain).

use crate::mrf::MrfModel;
use murphy_graph::{RelationshipGraph, ShortestPathSubgraph};
use rand::Rng;

/// A precomputed resampling schedule for one shortest-path subgraph.
///
/// Building the schedule walks the subgraph's entity order once and flattens
/// it to the factor-bearing metric positions, in the exact order the naive
/// resampler visits them. The candidate-evaluation loop builds one plan per
/// candidate and replays it for every one of the thousands of draws, instead
/// of rebuilding entity lists inside the draw loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResamplePlan {
    /// Factor-bearing metric positions in resampling order.
    order: Vec<usize>,
    /// Largest feature count among the planned factors (scratch sizing).
    max_features: usize,
}

impl ResamplePlan {
    /// Flatten a subgraph's entity order into a metric-position schedule.
    pub fn new(mrf: &MrfModel, graph: &RelationshipGraph, subgraph: &ShortestPathSubgraph) -> Self {
        let mut order = Vec::new();
        let mut max_features = 0;
        for e in subgraph.entities(graph) {
            for &pos in mrf.index.entity_positions(e) {
                if let Some(factor) = &mrf.factors[pos] {
                    max_features = max_features.max(factor.feature_positions.len());
                    order.push(pos);
                }
            }
        }
        Self { order, max_features }
    }

    /// The planned metric positions, in resampling order. These are exactly
    /// the positions a resampling run can mutate — the minimal save/restore
    /// set between draws.
    pub fn positions(&self) -> &[usize] {
        &self.order
    }

    /// A scratch buffer sized for the widest planned factor, so the first
    /// draw already gathers without growing.
    pub fn scratch(&self) -> Vec<f64> {
        Vec::with_capacity(self.max_features)
    }
}

/// One resampling run over a shortest-path subgraph.
///
/// `state` is mutated in place: for `W` rounds, every metric of every
/// entity in `subgraph.order` (increasing distance from A, target last) is
/// redrawn from its factor given the evolving state. Metrics without a
/// trained factor keep their current value — they still *feed* other
/// factors.
pub fn resample_subgraph<R: Rng>(
    mrf: &MrfModel,
    graph: &RelationshipGraph,
    subgraph: &ShortestPathSubgraph,
    state: &mut [f64],
    gibbs_rounds: usize,
    rng: &mut R,
) {
    let plan = ResamplePlan::new(mrf, graph, subgraph);
    let mut scratch = plan.scratch();
    resample_planned(mrf, &plan, state, gibbs_rounds, rng, &mut scratch);
}

/// One resampling run over a precomputed [`ResamplePlan`].
///
/// Identical draws to [`resample_subgraph`] (the RNG is consumed in the
/// same factor order), but with zero heap allocation per call: the feature
/// gather reuses `scratch` and the schedule reuses the plan.
pub fn resample_planned<R: Rng>(
    mrf: &MrfModel,
    plan: &ResamplePlan,
    state: &mut [f64],
    gibbs_rounds: usize,
    rng: &mut R,
    scratch: &mut Vec<f64>,
) {
    for _round in 0..gibbs_rounds.max(1) {
        for &pos in &plan.order {
            let factor = mrf.factors[pos].as_ref().expect("plan holds factor positions");
            state[pos] = factor.sample_into(state, scratch, rng);
        }
    }
}

/// Positions of every metric touched by a resampling run (used to
/// save/restore state between samples without cloning the full vector).
pub fn touched_positions(
    mrf: &MrfModel,
    graph: &RelationshipGraph,
    subgraph: &ShortestPathSubgraph,
) -> Vec<usize> {
    subgraph
        .entities(graph)
        .iter()
        .flat_map(|&e| mrf.index.entity_positions(e).iter().copied())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MurphyConfig;
    use crate::training::{train_mrf, TrainingWindow};
    use murphy_graph::{build_from_seeds, BuildOptions};
    use murphy_telemetry::{AssociationKind, EntityKind, MetricId, MetricKind, MonitoringDb};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 3-entity chain a → b → c where each CPU tracks its predecessor.
    fn chain_env() -> (
        MonitoringDb,
        RelationshipGraph,
        [murphy_telemetry::EntityId; 3],
    ) {
        let mut db = MonitoringDb::new(10);
        let a = db.add_entity(EntityKind::Vm, "a");
        let b = db.add_entity(EntityKind::Vm, "b");
        let c = db.add_entity(EntityKind::Vm, "c");
        db.relate(a, b, AssociationKind::Related);
        db.relate(b, c, AssociationKind::Related);
        for t in 0..120u64 {
            let base = 20.0 + 15.0 * ((t as f64) * 0.21).sin();
            db.record(a, MetricKind::CpuUtil, t, base);
            db.record(b, MetricKind::CpuUtil, t, 0.9 * base + 2.0);
            db.record(c, MetricKind::CpuUtil, t, 0.8 * (0.9 * base + 2.0) + 1.0);
        }
        let graph = build_from_seeds(&db, &[a], BuildOptions::default());
        (db, graph, [a, b, c])
    }

    #[test]
    fn counterfactual_propagates_down_the_chain() {
        let (db, graph, [a, _b, c]) = chain_env();
        let config = MurphyConfig::fast();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 100), db.latest_tick());
        let sp = ShortestPathSubgraph::compute(&graph, a, c).unwrap();

        let a_pos = mrf.index.position(MetricId::new(a, MetricKind::CpuUtil)).unwrap();
        let c_pos = mrf.index.position(MetricId::new(c, MetricKind::CpuUtil)).unwrap();

        let mut rng = StdRng::seed_from_u64(1);
        let n = 300;
        let avg_with = |a_value: f64, rng: &mut StdRng| -> f64 {
            let mut sum = 0.0;
            for _ in 0..n {
                let mut state = mrf.current.clone();
                state[a_pos] = a_value;
                resample_subgraph(&mrf, &graph, &sp, &mut state, 4, rng);
                sum += state[c_pos];
            }
            sum / n as f64
        };
        let low = avg_with(5.0, &mut rng);
        let high = avg_with(35.0, &mut rng);
        assert!(
            high - low > 5.0,
            "c's CPU should follow a's: low={low}, high={high}"
        );
    }

    #[test]
    fn untouched_entities_keep_their_values() {
        let (mut db, _, [a, b, _c]) = chain_env();
        // Add a pendant entity attached to a; it is off every a→c path.
        let d = db.add_entity(EntityKind::Vm, "d");
        db.relate(a, d, AssociationKind::Related);
        for t in 0..120u64 {
            db.record(d, MetricKind::CpuUtil, t, 55.0);
        }
        let graph = build_from_seeds(&db, &[a], BuildOptions::default());
        let config = MurphyConfig::fast();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 100), db.latest_tick());
        let sp = ShortestPathSubgraph::compute(&graph, a, b).unwrap();
        let d_pos = mrf.index.position(MetricId::new(d, MetricKind::CpuUtil)).unwrap();

        let mut state = mrf.current.clone();
        let before = state[d_pos];
        let mut rng = StdRng::seed_from_u64(2);
        resample_subgraph(&mrf, &graph, &sp, &mut state, 4, &mut rng);
        assert_eq!(state[d_pos], before, "off-path entity was resampled");
    }

    #[test]
    fn touched_positions_cover_subgraph_metrics() {
        let (db, graph, [a, b, c]) = chain_env();
        let config = MurphyConfig::fast();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 100), db.latest_tick());
        let sp = ShortestPathSubgraph::compute(&graph, a, c).unwrap();
        let touched = touched_positions(&mrf, &graph, &sp);
        // b and c are in the subgraph (a itself is pinned/excluded).
        let b_pos = mrf.index.position(MetricId::new(b, MetricKind::CpuUtil)).unwrap();
        let c_pos = mrf.index.position(MetricId::new(c, MetricKind::CpuUtil)).unwrap();
        assert!(touched.contains(&b_pos));
        assert!(touched.contains(&c_pos));
        let a_pos = mrf.index.position(MetricId::new(a, MetricKind::CpuUtil)).unwrap();
        assert!(!touched.contains(&a_pos));
    }

    #[test]
    fn zero_rounds_still_runs_one_pass() {
        // gibbs_rounds.max(1): a misconfigured 0 must not silently skip
        // resampling (the t-test would then compare identical constants).
        let (db, graph, [a, _b, c]) = chain_env();
        let config = MurphyConfig::fast();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 100), db.latest_tick());
        let sp = ShortestPathSubgraph::compute(&graph, a, c).unwrap();
        let c_pos = mrf.index.position(MetricId::new(c, MetricKind::CpuUtil)).unwrap();
        let mut state = mrf.current.clone();
        let mut rng = StdRng::seed_from_u64(3);
        // With noise in the factors the value almost surely changes.
        let before = state[c_pos];
        resample_subgraph(&mrf, &graph, &sp, &mut state, 0, &mut rng);
        assert_ne!(state[c_pos].to_bits(), before.to_bits());
    }
}
