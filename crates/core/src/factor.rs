//! Entity-metric factors.
//!
//! The MRF's joint distribution is a product of per-entity factors
//! `P_v(v | in_nbrs(v))` (§4.2). We realize each factor as one regression
//! model per (entity, metric) pair: the model predicts that metric in a
//! time slice from a selected subset of the incoming neighbors' metrics in
//! the same slice, and carries the training-residual scale so it can be
//! *sampled* from, not just evaluated.

use murphy_learn::TrainedModel;
use murphy_telemetry::MetricId;
use rand::Rng;
use std::sync::Arc;

/// A single metric's factor within the MRF.
pub struct Factor {
    /// The metric this factor models.
    pub target: MetricId,
    /// Positions (into the MRF's dense metric index) of the selected
    /// feature metrics — the top-B incoming-neighbor metrics.
    pub feature_positions: Vec<usize>,
    /// The metric ids of those features (for reporting).
    pub feature_ids: Vec<MetricId>,
    /// The fitted conditional model with residual noise scale. Shared:
    /// the training cache hands the same fit to every model generation
    /// that can reuse it, so a factor holds an [`Arc`] rather than the
    /// model itself.
    pub model: Arc<TrainedModel>,
}

impl Factor {
    /// Gather this factor's feature vector from a dense metric state.
    pub fn features_from(&self, state: &[f64]) -> Vec<f64> {
        self.feature_positions.iter().map(|&i| state[i]).collect()
    }

    /// Gather this factor's features into a caller-provided scratch buffer.
    ///
    /// The buffer is cleared and refilled; once its capacity covers the
    /// factor's feature count (at most the configured feature budget) the
    /// gather performs no heap allocation — this is what keeps the Gibbs
    /// inner loop allocation-free across millions of draws.
    pub fn gather_into(&self, state: &[f64], buf: &mut Vec<f64>) {
        buf.clear();
        buf.extend(self.feature_positions.iter().map(|&i| state[i]));
    }

    /// Point prediction of the target from the current state.
    pub fn predict(&self, state: &[f64]) -> f64 {
        let mut buf = Vec::with_capacity(self.feature_positions.len());
        self.predict_into(state, &mut buf)
    }

    /// Allocation-free point prediction.
    ///
    /// Routes through [`murphy_learn::Regressor::predict_indexed`]: linear
    /// models read features straight out of `state` (no gather at all);
    /// other families gather into `buf`. Either way the result is
    /// bit-identical to gather-then-predict.
    pub fn predict_into(&self, state: &[f64], buf: &mut Vec<f64>) -> f64 {
        self.target
            .kind
            .clamp(self.model.predict_indexed(state, &self.feature_positions, buf))
    }

    /// Draw one sample of the target given the current state, clamped to
    /// the metric's physical domain (percentages in [0, 100], rates ≥ 0).
    pub fn sample<R: Rng>(&self, state: &[f64], rng: &mut R) -> f64 {
        let mut buf = Vec::with_capacity(self.feature_positions.len());
        self.sample_into(state, &mut buf, rng)
    }

    /// Allocation-free sampling (the Gibbs inner call). Draws are
    /// bit-identical to [`Factor::sample`] for the same RNG state; for
    /// ridge factors the feature gather is skipped entirely.
    pub fn sample_into<R: Rng>(&self, state: &[f64], buf: &mut Vec<f64>, rng: &mut R) -> f64 {
        self.target
            .kind
            .clamp(self.model.sample_indexed(state, &self.feature_positions, buf, rng))
    }
}

impl std::fmt::Debug for Factor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Factor")
            .field("target", &self.target)
            .field("features", &self.feature_ids)
            .field("residual_std", &self.model.residual_std)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murphy_learn::ModelKind;
    use murphy_telemetry::{EntityId, MetricKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn linear_factor() -> Factor {
        // target ≈ 0.5 * feature.
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 0.5 * r[0]).collect();
        let model = TrainedModel::fit(ModelKind::Ridge, &xs, &ys, 0).unwrap();
        Factor {
            target: MetricId::new(EntityId(0), MetricKind::CpuUtil),
            feature_positions: vec![2],
            feature_ids: vec![MetricId::new(EntityId(1), MetricKind::CpuUtil)],
            model: Arc::new(model),
        }
    }

    #[test]
    fn features_are_gathered_by_position() {
        let f = linear_factor();
        let state = vec![9.0, 9.0, 40.0, 9.0];
        assert_eq!(f.features_from(&state), vec![40.0]);
        let pred = f.predict(&state);
        assert!((pred - 20.0).abs() < 1.0, "pred = {pred}");
    }

    #[test]
    fn prediction_is_clamped_to_domain() {
        let f = linear_factor();
        // Feature value 1000 would predict ~500%, clamped to 100%.
        let state = vec![0.0, 0.0, 1000.0, 0.0];
        assert_eq!(f.predict(&state), 100.0);
        // Negative predictions clamp to 0.
        let state = vec![0.0, 0.0, -1000.0, 0.0];
        assert_eq!(f.predict(&state), 0.0);
    }

    #[test]
    fn samples_center_on_prediction() {
        let f = linear_factor();
        let state = vec![0.0, 0.0, 60.0, 0.0];
        let expected = f.predict(&state);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 500;
        let avg: f64 = (0..n).map(|_| f.sample(&state, &mut rng)).sum::<f64>() / n as f64;
        assert!(
            (avg - expected).abs() < 1.0 + 3.0 * f.model.residual_std,
            "avg {avg} vs {expected}"
        );
    }
}
