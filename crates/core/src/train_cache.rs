//! Fingerprint-keyed factor-fit caching (incremental training).
//!
//! Murphy trains *online*: every diagnosis refits the full MRF on the
//! window ending at diagnosis time (§4.2). In steady state, though,
//! consecutive training runs see mostly identical columns — only metrics
//! whose window slid over new data actually change. A factor's fit is a
//! pure function of
//!
//! 1. its target training column,
//! 2. every candidate column (feature selection reads all of them),
//! 3. the candidate-position list itself (selection indexes into it),
//! 4. the fit-relevant configuration, and
//! 5. the per-position RNG seed,
//!
//! so a cached fit may be reused **iff all five match bitwise** — which is
//! exactly what [`TrainingCache`] checks. Columns are fingerprinted over
//! `f64::to_bits` (NaN payloads and signed zeros distinguish like any
//! other bit pattern), plus the window bounds and the imputation fill, so
//! a window slide or a changed default invalidates honestly. Entries are
//! keyed by [`MetricId`] — not position — so the cache survives
//! [`crate::mrf::MetricIndex`] remaps when entities are added or removed;
//! the recorded seed catches the remaps that *do* change a factor's fit.
//!
//! The cached path is pinned **bit-identical** to a cold
//! [`crate::training::train_mrf`] by `crates/core/tests/train_cache_parity.rs`
//! and the determinism suite; `MURPHY_TRAIN_CACHE=0` forces the legacy
//! full-refit path as a parity reference.

use crate::config::MurphyConfig;
use murphy_learn::{ModelKind, TrainedModel};
use murphy_telemetry::MetricId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Refit/reuse accounting for one training run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainStats {
    /// Factors fitted on the worker pool this run (cache misses, or every
    /// trainable factor on the legacy path).
    pub factors_refit: usize,
    /// Factors reused from the cache without refitting.
    pub factors_reused: usize,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One FNV-1a round over a 64-bit word.
#[inline]
fn mix(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

/// Bitwise fingerprint of one training column: FNV-1a over the window
/// bounds, the imputation fill (as bits), the column length, and every
/// value's `f64::to_bits`. Equal fingerprints ⟺ (modulo hash collisions)
/// bit-identical training input for that metric.
pub fn column_fingerprint(window_from: u64, window_to: u64, fill_bits: u64, column: &[f64]) -> u64 {
    let mut h = FNV_OFFSET;
    h = mix(h, window_from);
    h = mix(h, window_to);
    h = mix(h, fill_bits);
    h = mix(h, column.len() as u64);
    for &v in column {
        h = mix(h, v.to_bits());
    }
    h
}

fn model_tag(kind: ModelKind) -> u64 {
    match kind {
        ModelKind::Ridge => 0,
        ModelKind::Gmm => 1,
        ModelKind::Svr => 2,
        ModelKind::Mlp => 3,
    }
}

/// Fingerprint of the full configuration. Conservative by design: *any*
/// config change flushes the cache, even fields the fit itself never
/// reads — a config flip is rare and a stale-cache bug is not worth the
/// few saved refits.
pub fn config_fingerprint(config: &MurphyConfig) -> u64 {
    let mut h = FNV_OFFSET;
    h = mix(h, model_tag(config.model));
    h = mix(h, config.n_train as u64);
    h = mix(h, config.feature_budget as u64);
    h = mix(h, config.gibbs_rounds as u64);
    h = mix(h, config.subgraph_slack as u64);
    h = mix(h, config.num_samples as u64);
    h = mix(h, config.alpha.to_bits());
    h = mix(h, config.counterfactual_sigmas.to_bits());
    h = mix(h, config.min_relief_sigmas.to_bits());
    h = mix(h, config.threshold_scale.to_bits());
    h = mix(h, config.anomaly_saturation.to_bits());
    h = mix(h, config.max_candidates as u64);
    h = mix(h, config.seed);
    h = mix(h, config.parallel as u64);
    h
}

/// Whether the fingerprint-keyed training cache is enabled
/// (`MURPHY_TRAIN_CACHE`; default on, set `0` to force the legacy
/// full-refit path).
pub fn train_cache_enabled() -> bool {
    !matches!(std::env::var("MURPHY_TRAIN_CACHE"), Ok(v) if v.trim() == "0")
}

/// The cached outcome of one successful factor fit.
#[derive(Debug, Clone)]
pub(crate) struct CachedFit {
    /// Selected feature metrics, in selection order. Positions are *not*
    /// cached — they are re-resolved against the current index at reuse
    /// time, which is what makes entries survive index remaps.
    pub(crate) feature_ids: Vec<MetricId>,
    /// The fitted model, shared with every factor built from it.
    pub(crate) model: Arc<TrainedModel>,
}

/// One cache entry: everything the fit was a function of, plus its
/// outcome. `fit: None` records a *failed* fit — failure is as pure a
/// function of the inputs as success, so it is reusable too.
#[derive(Debug, Clone)]
struct CacheEntry {
    target_fp: u64,
    /// (candidate metric, column fingerprint) pairs, in candidate order.
    candidates: Vec<(MetricId, u64)>,
    /// The per-position seed the fit consumed. Seeds derive from index
    /// *positions*, so a remap that moves the target refits even when
    /// every column is unchanged.
    seed: u64,
    fit: Option<CachedFit>,
}

/// Fingerprint-keyed cache of factor fits across training runs.
///
/// Hold one per model stream — [`crate::murphy::Murphy`] keeps one for
/// all its diagnosis calls, and a long-running service would hold one per
/// tenant. Entries whose metric leaves the index are evicted on every
/// run, so churning topologies don't grow the cache without bound.
#[derive(Debug, Default)]
pub struct TrainingCache {
    config_fp: Option<u64>,
    entries: BTreeMap<MetricId, CacheEntry>,
}

impl TrainingCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached fits.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when a fit for this target metric is cached (matching or not).
    pub fn contains(&self, target: MetricId) -> bool {
        self.entries.contains_key(&target)
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.config_fp = None;
    }

    /// Flush the cache if the config fingerprint changed since the last
    /// run (or this is the first).
    pub(crate) fn reconcile_config(&mut self, fp: u64) {
        if self.config_fp != Some(fp) {
            self.entries.clear();
            self.config_fp = Some(fp);
        }
    }

    /// Look up a reusable fit: `Some(..)` only when the target
    /// fingerprint, the full candidate list (ids *and* fingerprints, in
    /// order), and the seed all match the cached entry.
    pub(crate) fn lookup(
        &self,
        target: MetricId,
        target_fp: u64,
        candidates: &[(MetricId, u64)],
        seed: u64,
    ) -> Option<&Option<CachedFit>> {
        let e = self.entries.get(&target)?;
        (e.target_fp == target_fp && e.seed == seed && e.candidates == candidates)
            .then_some(&e.fit)
    }

    /// Record the outcome of a fresh fit.
    pub(crate) fn store(
        &mut self,
        target: MetricId,
        target_fp: u64,
        candidates: Vec<(MetricId, u64)>,
        seed: u64,
        fit: Option<CachedFit>,
    ) {
        self.entries.insert(
            target,
            CacheEntry {
                target_fp,
                candidates,
                seed,
                fit,
            },
        );
    }

    /// Evict entries whose target metric fails the predicate (used to
    /// drop metrics that left the index).
    pub(crate) fn retain<F: FnMut(MetricId) -> bool>(&mut self, mut keep: F) {
        self.entries.retain(|&m, _| keep(m));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murphy_telemetry::{EntityId, MetricKind};

    fn mid(e: u32) -> MetricId {
        MetricId::new(EntityId(e), MetricKind::CpuUtil)
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_input() {
        let col = [1.0, 2.0, 3.0];
        let base = column_fingerprint(0, 3, 0, &col);
        assert_eq!(base, column_fingerprint(0, 3, 0, &col));
        assert_ne!(base, column_fingerprint(1, 3, 0, &col), "window from");
        assert_ne!(base, column_fingerprint(0, 4, 0, &col), "window to");
        assert_ne!(base, column_fingerprint(0, 3, 1, &col), "fill");
        assert_ne!(base, column_fingerprint(0, 3, 0, &[1.0, 2.0, 3.5]), "value");
        assert_ne!(base, column_fingerprint(0, 3, 0, &[1.0, 2.0]), "length");
    }

    #[test]
    fn nan_columns_fingerprint_stably() {
        // Bit-pattern equality, not value equality: the same NaN bits
        // fingerprint identically run over run...
        let nan_col = [1.0, f64::NAN, 3.0];
        assert_eq!(
            column_fingerprint(0, 3, 0, &nan_col),
            column_fingerprint(0, 3, 0, &[1.0, f64::NAN, 3.0])
        );
        // ...while a NaN with different payload bits is a different input.
        let other_nan = f64::from_bits(f64::NAN.to_bits() ^ 1);
        assert!(other_nan.is_nan());
        assert_ne!(
            column_fingerprint(0, 3, 0, &nan_col),
            column_fingerprint(0, 3, 0, &[1.0, other_nan, 3.0])
        );
        // Signed zeros differ bitwise too.
        assert_ne!(
            column_fingerprint(0, 3, 0, &[0.0, 1.0, 2.0]),
            column_fingerprint(0, 3, 0, &[-0.0, 1.0, 2.0])
        );
    }

    #[test]
    fn config_fingerprint_tracks_changes() {
        let a = MurphyConfig::fast();
        assert_eq!(config_fingerprint(&a), config_fingerprint(&a));
        assert_ne!(config_fingerprint(&a), config_fingerprint(&a.with_seed(9)));
        assert_ne!(
            config_fingerprint(&a),
            config_fingerprint(&a.with_model(murphy_learn::ModelKind::Mlp))
        );
        let mut b = a;
        b.feature_budget += 1;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
    }

    #[test]
    fn lookup_requires_exact_key_match() {
        let mut cache = TrainingCache::new();
        let cands = vec![(mid(1), 11u64), (mid(2), 22u64)];
        cache.store(mid(0), 7, cands.clone(), 42, None);
        assert!(cache.lookup(mid(0), 7, &cands, 42).is_some());
        assert!(cache.lookup(mid(0), 8, &cands, 42).is_none(), "target fp");
        assert!(cache.lookup(mid(0), 7, &cands, 43).is_none(), "seed");
        let reordered = vec![(mid(2), 22u64), (mid(1), 11u64)];
        assert!(cache.lookup(mid(0), 7, &reordered, 42).is_none(), "order");
        let refreshed = vec![(mid(1), 11u64), (mid(2), 23u64)];
        assert!(cache.lookup(mid(0), 7, &refreshed, 42).is_none(), "cand fp");
        assert!(cache.lookup(mid(9), 7, &cands, 42).is_none(), "unknown");
    }

    #[test]
    fn config_reconcile_flushes_and_retain_evicts() {
        let mut cache = TrainingCache::new();
        cache.reconcile_config(1);
        cache.store(mid(0), 7, vec![], 0, None);
        cache.store(mid(1), 7, vec![], 0, None);
        assert_eq!(cache.len(), 2);
        // Same config: untouched.
        cache.reconcile_config(1);
        assert_eq!(cache.len(), 2);
        // Changed config: flushed.
        cache.reconcile_config(2);
        assert!(cache.is_empty());

        cache.store(mid(0), 7, vec![], 0, None);
        cache.store(mid(1), 7, vec![], 0, None);
        cache.retain(|m| m == mid(1));
        assert_eq!(cache.len(), 1);
        assert!(!cache.contains(mid(0)));
        assert!(cache.contains(mid(1)));
    }
}
