//! Root-cause ranking (§4.2, "Ranking the root causes").
//!
//! Confirmed root causes are ordered by how anomalous their current
//! metrics are: each metric scores its z-distance from the historical
//! mean, the entity takes the score of its most anomalous metric, and the
//! most anomalous entity ranks first (the operator checks it first).

use crate::counterfactual::CandidateVerdict;
use crate::diagnose::RankedRootCause;
use crate::mrf::MrfModel;
use murphy_telemetry::{EntityId, EntityKind, MonitoringDb};

/// Is this entity a *workload source* — a client or a flow? In the Figure
/// 4 label state machine, heavy hitters are the only state with no
/// incoming causal edge: load originates at clients and flows, it doesn't
/// happen to them. Among equally-anomalous, equally-distant confirmed
/// candidates, the workload source is the likelier root cause than the
/// service/container it drives.
fn is_workload_source(db: &MonitoringDb, entity: EntityId) -> bool {
    matches!(
        db.entity(entity).map(|e| e.kind),
        Some(EntityKind::Client) | Some(EntityKind::Flow)
    )
}

/// Rank confirmed root causes by descending anomaly score, saturated at
/// `saturation`.
///
/// During an incident every entity on the causal chain can be hundreds of
/// reference standard deviations out — comparing 150σ to 250σ carries no
/// signal, only the noise floor of the reference window. Scores are
/// therefore capped at `saturation`; among saturated candidates the tie
/// breaks toward the one *farthest* from the symptom (the most upstream
/// confirmed cause — intermediate symptoms sit between the root cause and
/// the observation), then toward the smaller p-value, then by entity id
/// for determinism.
pub fn rank_root_causes(
    db: &MonitoringDb,
    mrf: &MrfModel,
    confirmed: Vec<(EntityId, CandidateVerdict)>,
    saturation: f64,
) -> Vec<RankedRootCause> {
    let mut ranked: Vec<RankedRootCause> = confirmed
        .into_iter()
        .map(|(entity, verdict)| {
            // Defense-in-depth: `entity_anomaly` currently absorbs NaN
            // metrics (its `f64::max` fold keeps the non-NaN operand),
            // but the sort key below must NEVER be NaN — `f64::min`
            // would keep a NaN anomaly as-is only by accident of operand
            // order, and a NaN key is exactly what made the old
            // comparator non-transitive. A NaN anomaly means "no valid
            // evidence", so it gets the worst score and ranks last.
            let anomaly = mrf.entity_anomaly(entity);
            let score = if anomaly.is_nan() {
                -1.0
            } else {
                anomaly.min(saturation)
            };
            let metric = mrf
                .most_anomalous_metric(entity)
                .map(|p| mrf.index.id(p).kind)
                .unwrap_or(murphy_telemetry::MetricKind::CpuUtil);
            RankedRootCause {
                entity,
                metric,
                score,
                verdict,
            }
        })
        .collect();
    // `total_cmp`, not `partial_cmp(..).unwrap_or(Equal)`: treating NaN as
    // equal-to-everything is not transitive, which violates the strict
    // weak ordering `sort_by` requires — with a NaN key the final order
    // depended on comparison sequence (and could scramble non-NaN
    // entries). `total_cmp` is a total order, and the construction above
    // plus verdict sanitization keep NaN out of the keys anyway.
    ranked.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then(b.verdict.distance.cmp(&a.verdict.distance))
            .then(
                is_workload_source(db, b.entity).cmp(&is_workload_source(db, a.entity)),
            )
            .then(a.verdict.p_value.total_cmp(&b.verdict.p_value))
            .then(a.entity.cmp(&b.entity))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrf::{MetricIndex, MrfModel};
    use murphy_stats::Summary;
    use murphy_telemetry::{MetricId, MetricKind};

    /// Three VM entities (ids 0..2) so kind-based tie-breaks are neutral.
    fn vm_db() -> MonitoringDb {
        let mut db = MonitoringDb::new(10);
        for i in 0..3 {
            db.add_entity(EntityKind::Vm, format!("vm{i}"));
        }
        db
    }

    fn verdict(p: f64) -> CandidateVerdict {
        verdict_at(p, 1)
    }

    fn verdict_at(p: f64, distance: usize) -> CandidateVerdict {
        CandidateVerdict {
            is_root_cause: true,
            counterfactual_mean: 1.0,
            factual_mean: 2.0,
            p_value: p,
            distance,
        }
    }

    fn model_with_anomalies() -> MrfModel {
        // Entity 0: very anomalous (cpu 90 vs mean 10±1).
        // Entity 1: mildly anomalous (cpu 14 vs mean 10±1).
        // Entity 2: not anomalous.
        let ids = vec![
            MetricId::new(EntityId(0), MetricKind::CpuUtil),
            MetricId::new(EntityId(1), MetricKind::CpuUtil),
            MetricId::new(EntityId(2), MetricKind::CpuUtil),
        ];
        let hist = Summary::of(&[9.0, 10.0, 11.0, 10.0]);
        MrfModel {
            index: MetricIndex::new(ids),
            factors: vec![None, None, None],
            current: vec![90.0, 14.0, 10.0],
            history: vec![hist, hist, hist],
            reference: vec![hist, hist, hist],
            train_stats: Default::default(),
        }
    }

    #[test]
    fn most_anomalous_first() {
        let mrf = model_with_anomalies();
        let ranked = rank_root_causes(
            &vm_db(),
            &mrf,
            vec![
                (EntityId(1), verdict(0.01)),
                (EntityId(0), verdict(0.01)),
                (EntityId(2), verdict(0.01)),
            ],
            1e9,
        );
        let order: Vec<EntityId> = ranked.iter().map(|r| r.entity).collect();
        assert_eq!(order, vec![EntityId(0), EntityId(1), EntityId(2)]);
        assert!(ranked[0].score > ranked[1].score);
        assert_eq!(ranked[0].metric, MetricKind::CpuUtil);
    }

    #[test]
    fn p_value_breaks_score_ties() {
        let mut mrf = model_with_anomalies();
        mrf.current = vec![50.0, 50.0, 10.0]; // entities 0 and 1 tie on score
        let ranked = rank_root_causes(
            &vm_db(),
            &mrf,
            vec![(EntityId(0), verdict(0.04)), (EntityId(1), verdict(0.001))],
            1e9,
        );
        assert_eq!(ranked[0].entity, EntityId(1));
    }

    #[test]
    fn entity_id_breaks_full_ties() {
        let mut mrf = model_with_anomalies();
        mrf.current = vec![50.0, 50.0, 10.0];
        let ranked = rank_root_causes(
            &vm_db(),
            &mrf,
            vec![(EntityId(1), verdict(0.01)), (EntityId(0), verdict(0.01))],
            1e9,
        );
        assert_eq!(ranked[0].entity, EntityId(0));
    }

    #[test]
    fn empty_input_is_empty_output() {
        let mrf = model_with_anomalies();
        assert!(rank_root_causes(&vm_db(), &mrf, vec![], 20.0).is_empty());
    }

    #[test]
    fn saturation_prefers_upstream_candidates() {
        // Both entities are wildly anomalous (far past saturation); the
        // farther (more upstream) one must rank first.
        let mut mrf = model_with_anomalies();
        mrf.current = vec![500.0, 900.0, 10.0]; // both saturate at 20
        let ranked = rank_root_causes(
            &vm_db(),
            &mrf,
            vec![
                (EntityId(0), verdict_at(0.001, 1)), // intermediate
                (EntityId(1), verdict_at(0.01, 3)),  // upstream
            ],
            20.0,
        );
        assert_eq!(ranked[0].entity, EntityId(1));
        assert_eq!(ranked[0].score, 20.0);
        assert_eq!(ranked[1].score, 20.0);
    }

    #[test]
    fn nan_current_value_never_ranks_first() {
        // Entity 1's metric has a NaN current value. Whatever the anomaly
        // fold does with it, the resulting sort key must be a real number
        // and the candidate must not beat entities with actual evidence.
        let mut mrf = model_with_anomalies();
        mrf.current = vec![50.0, f64::NAN, 14.0];
        let ranked = rank_root_causes(
            &vm_db(),
            &mrf,
            vec![
                (EntityId(1), verdict(0.001)),
                (EntityId(0), verdict(0.01)),
                (EntityId(2), verdict(0.01)),
            ],
            20.0,
        );
        let order: Vec<EntityId> = ranked.iter().map(|r| r.entity).collect();
        assert_eq!(order, vec![EntityId(0), EntityId(2), EntityId(1)]);
        assert!(!ranked[2].score.is_nan());
    }

    #[test]
    fn nan_p_values_do_not_scramble_order() {
        // NaN p-values at equal scores: the sort must stay a strict weak
        // ordering (total_cmp) and NaN must lose to any real p-value.
        let mut mrf = model_with_anomalies();
        mrf.current = vec![50.0, 50.0, 50.0]; // all tie on score
        let ranked = rank_root_causes(
            &vm_db(),
            &mrf,
            vec![
                (EntityId(2), verdict(f64::NAN)),
                (EntityId(1), verdict(0.04)),
                (EntityId(0), verdict(f64::NAN)),
            ],
            20.0,
        );
        let order: Vec<EntityId> = ranked.iter().map(|r| r.entity).collect();
        assert_eq!(order, vec![EntityId(1), EntityId(0), EntityId(2)]);
    }

    #[test]
    fn workload_sources_break_score_and_distance_ties() {
        // Entity 0 is a VM, entity 1 a Client; equal scores and distances:
        // the client (workload source) must rank first despite the VM's
        // lower entity id.
        let mut db = MonitoringDb::new(10);
        db.add_entity(EntityKind::Vm, "vm");
        db.add_entity(EntityKind::Client, "client");
        db.add_entity(EntityKind::Vm, "other");
        let mut mrf = model_with_anomalies();
        mrf.current = vec![500.0, 900.0, 10.0]; // both saturate
        let ranked = rank_root_causes(
            &db,
            &mrf,
            vec![
                (EntityId(0), verdict_at(0.001, 2)),
                (EntityId(1), verdict_at(0.01, 2)),
            ],
            20.0,
        );
        assert_eq!(ranked[0].entity, EntityId(1));
    }
}
