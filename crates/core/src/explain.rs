//! Explanation chains (§4.3).
//!
//! After diagnosis, Murphy produces a human-readable causal chain from
//! each root cause back to the symptom: a path through the relationship
//! graph in which every entity carries a non-Okay label and every hop
//! respects the Figure 4 label-causality rules. This step never changes
//! which root causes are selected — it only provides plausible intuition
//! for them.

use crate::labels::{label_entity, EntityLabel};
use murphy_graph::RelationshipGraph;
use murphy_telemetry::{EntityId, MonitoringDb};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// One hop of an explanation chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExplanationStep {
    /// The entity at this hop.
    pub entity: EntityId,
    /// Its label at diagnosis time.
    pub label: EntityLabel,
    /// Rendered description, e.g. `"VM backend-1: degraded performance"`.
    pub text: String,
}

/// A causal chain from a root cause to the symptom entity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Explanation {
    /// Steps in causal order: root cause first, symptom last.
    pub steps: Vec<ExplanationStep>,
}

impl Explanation {
    /// Multi-line rendering (one line per step, arrows between).
    pub fn render(&self) -> String {
        self.steps
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if i == 0 {
                    s.text.clone()
                } else {
                    format!("→ {}", s.text)
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The chain's entities in causal order.
    pub fn entities(&self) -> Vec<EntityId> {
        self.steps.iter().map(|s| s.entity).collect()
    }
}

/// Trace an explanation chain from `root_cause` to `symptom_entity`.
///
/// BFS over the relationship graph's directed edges restricted to hops
/// `u → v` where `label(u).can_cause(label(v))` and `label(v) != Okay`
/// (the root cause itself must also be non-Okay). Returns `None` when no
/// label-respecting path exists — the root cause still stands, it just
/// gets no narrative.
pub fn explain_chain(
    db: &MonitoringDb,
    graph: &RelationshipGraph,
    root_cause: EntityId,
    symptom_entity: EntityId,
    threshold_scale: f64,
) -> Option<Explanation> {
    let start = graph.node(root_cause)?;
    let goal = graph.node(symptom_entity)?;

    // Label every graph entity once.
    let labels: Vec<EntityLabel> = graph
        .entities()
        .iter()
        .map(|&e| label_entity(db, e, threshold_scale))
        .collect();
    if labels[start] == EntityLabel::Okay {
        return None;
    }

    // BFS respecting label causality.
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue = VecDeque::from([start]);
    parent.insert(start, start);
    while let Some(u) = queue.pop_front() {
        if u == goal {
            break;
        }
        for &v in graph.out_nbrs(u) {
            if parent.contains_key(&v) {
                continue;
            }
            if labels[v] == EntityLabel::Okay {
                continue;
            }
            if !labels[u].can_cause(labels[v]) {
                continue;
            }
            parent.insert(v, u);
            queue.push_back(v);
        }
    }
    if !parent.contains_key(&goal) {
        return None;
    }

    // Reconstruct the path.
    let mut path = vec![goal];
    let mut cur = goal;
    while cur != start {
        cur = parent[&cur];
        path.push(cur);
    }
    path.reverse();

    let steps = path
        .into_iter()
        .map(|idx| {
            let entity = graph.entity(idx);
            let label = labels[idx];
            let text = match db.entity(entity) {
                Some(e) => format!("{}: {}", e.describe(), label),
                None => format!("{entity}: {label}"),
            };
            ExplanationStep {
                entity,
                label,
                text,
            }
        })
        .collect();
    Some(Explanation { steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use murphy_graph::{build_from_seeds, BuildOptions};
    use murphy_telemetry::{AssociationKind, EntityKind, MetricKind};

    /// The Figure 1 shape: heavy flow → frontend VM → heavy flow → backend
    /// VM with high CPU.
    fn crawler_env() -> (MonitoringDb, RelationshipGraph, EntityId, EntityId) {
        let mut db = MonitoringDb::new(10);
        let flow1 = db.add_entity(EntityKind::Flow, "crawler→frontend");
        let frontend = db.add_entity(EntityKind::Vm, "frontend");
        let flow2 = db.add_entity(EntityKind::Flow, "frontend→backend");
        let backend = db.add_entity(EntityKind::Vm, "backend");
        db.relate(flow1, frontend, AssociationKind::FlowDestination);
        db.relate(flow2, frontend, AssociationKind::FlowSource);
        db.relate(flow2, backend, AssociationKind::FlowDestination);
        // Labels: flow1 heavy, frontend heavy (high net tx), flow2 heavy,
        // backend degraded (high CPU).
        db.record(flow1, MetricKind::SessionCount, 0, 500.0);
        db.record(frontend, MetricKind::NetTx, 0, 5000.0);
        db.record(flow2, MetricKind::Throughput, 0, 4000.0);
        db.record(backend, MetricKind::CpuUtil, 0, 95.0);
        let graph = build_from_seeds(&db, &[backend], BuildOptions::default());
        (db, graph, flow1, backend)
    }

    #[test]
    fn crawler_chain_is_traced() {
        let (db, graph, flow1, backend) = crawler_env();
        let expl = explain_chain(&db, &graph, flow1, backend, 1.0).expect("chain exists");
        assert_eq!(expl.steps.len(), 4);
        assert_eq!(expl.steps.first().unwrap().entity, flow1);
        assert_eq!(expl.steps.last().unwrap().entity, backend);
        assert_eq!(expl.steps[0].label, EntityLabel::HeavyHitter);
        assert_eq!(expl.steps[3].label, EntityLabel::Degraded);
        let text = expl.render();
        assert!(text.contains("crawler→frontend"));
        assert!(text.contains("degraded"));
        assert!(text.lines().count() == 4);
    }

    #[test]
    fn okay_entities_break_chains() {
        let (mut db, graph, flow1, backend) = crawler_env();
        // Cool the frontend below every threshold: chain must break.
        let frontend = db.entity_by_name("frontend").unwrap().id;
        db.record(frontend, MetricKind::NetTx, 1, 1.0);
        assert!(explain_chain(&db, &graph, flow1, backend, 1.0).is_none());
    }

    #[test]
    fn okay_root_cause_has_no_chain() {
        let (mut db, graph, flow1, backend) = crawler_env();
        db.record(flow1, MetricKind::SessionCount, 1, 1.0);
        assert!(explain_chain(&db, &graph, flow1, backend, 1.0).is_none());
    }

    #[test]
    fn label_causality_is_respected() {
        // degraded → heavy is not a causal truth: a chain requiring that
        // hop must not be produced.
        let mut db = MonitoringDb::new(10);
        let a = db.add_entity(EntityKind::Vm, "a"); // degraded
        let b = db.add_entity(EntityKind::Flow, "b"); // heavy
        db.relate(a, b, AssociationKind::Related);
        db.record(a, MetricKind::CpuUtil, 0, 80.0);
        db.record(b, MetricKind::Throughput, 0, 5000.0);
        let graph = build_from_seeds(&db, &[a], BuildOptions::default());
        assert!(explain_chain(&db, &graph, a, b, 1.0).is_none());
        // But heavy → degraded works in the other direction.
        let expl = explain_chain(&db, &graph, b, a, 1.0).unwrap();
        assert_eq!(expl.entities(), vec![b, a]);
    }

    #[test]
    fn self_explanation_is_single_step() {
        let (db, graph, _, backend) = crawler_env();
        let expl = explain_chain(&db, &graph, backend, backend, 1.0).unwrap();
        assert_eq!(expl.steps.len(), 1);
        assert_eq!(expl.steps[0].entity, backend);
    }

    #[test]
    fn entities_not_in_graph_yield_none() {
        let (db, graph, flow1, _) = crawler_env();
        assert!(explain_chain(&db, &graph, flow1, EntityId(99), 1.0).is_none());
        assert!(explain_chain(&db, &graph, EntityId(99), flow1, 1.0).is_none());
    }
}
