//! Seed-parity regression tests for the allocation-free sampling kernel.
//!
//! The optimized path (scratch-buffer feature gather + precomputed
//! [`ResamplePlan`]) must consume the RNG in exactly the order the naive
//! allocate-per-call path did, so fixed-seed diagnosis output stays
//! bit-identical across the optimization. These tests pin that contract.

use murphy_core::config::MurphyConfig;
use murphy_core::factor::Factor;
use murphy_core::mrf::MrfModel;
use murphy_core::sampler::{resample_planned, resample_subgraph, touched_positions, ResamplePlan};
use murphy_core::training::{train_mrf, TrainingWindow};
use murphy_graph::{build_from_seeds, BuildOptions, RelationshipGraph, ShortestPathSubgraph};
use murphy_learn::{ModelKind, TrainedModel};
use murphy_telemetry::{AssociationKind, EntityId, EntityKind, MetricId, MetricKind, MonitoringDb};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 4-entity diamond a → {b, c} → d with coupled CPU metrics.
fn diamond_env() -> (MonitoringDb, RelationshipGraph, [EntityId; 4]) {
    let mut db = MonitoringDb::new(10);
    let a = db.add_entity(EntityKind::Vm, "a");
    let b = db.add_entity(EntityKind::Vm, "b");
    let c = db.add_entity(EntityKind::Vm, "c");
    let d = db.add_entity(EntityKind::Vm, "d");
    db.relate(a, b, AssociationKind::Related);
    db.relate(a, c, AssociationKind::Related);
    db.relate(b, d, AssociationKind::Related);
    db.relate(c, d, AssociationKind::Related);
    for t in 0..140u64 {
        let base = 25.0 + 12.0 * ((t as f64) * 0.23).sin();
        db.record(a, MetricKind::CpuUtil, t, base);
        db.record(b, MetricKind::CpuUtil, t, 0.7 * base + 4.0);
        db.record(c, MetricKind::CpuUtil, t, 0.5 * base + 9.0);
        db.record(d, MetricKind::CpuUtil, t, (0.4 * base + 0.3 * base + 2.0).min(100.0));
    }
    let graph = build_from_seeds(&db, &[a], BuildOptions::default());
    (db, graph, [a, b, c, d])
}

/// The seed implementation of the resampling pass, verbatim: iterate the
/// subgraph's entity order and redraw each factored metric with the
/// allocate-per-call [`Factor::sample`].
fn naive_resample<R: Rng>(
    mrf: &MrfModel,
    graph: &RelationshipGraph,
    subgraph: &ShortestPathSubgraph,
    state: &mut [f64],
    gibbs_rounds: usize,
    rng: &mut R,
) {
    let entities = subgraph.entities(graph);
    for _round in 0..gibbs_rounds.max(1) {
        for &e in &entities {
            for &pos in mrf.index.entity_positions(e) {
                if let Some(factor) = &mrf.factors[pos] {
                    state[pos] = factor.sample(state, rng);
                }
            }
        }
    }
}

#[test]
fn planned_kernel_matches_naive_kernel_bit_for_bit() {
    let (db, graph, [a, _, _, d]) = diamond_env();
    let config = MurphyConfig::fast();
    let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 120), db.latest_tick());
    let sp = ShortestPathSubgraph::compute_with_slack(&graph, a, d, config.subgraph_slack).unwrap();
    let plan = ResamplePlan::new(&mrf, &graph, &sp);
    let mut scratch = plan.scratch();

    for seed in 0..4u64 {
        let mut naive_state = mrf.current.clone();
        let mut planned_state = mrf.current.clone();
        let mut naive_rng = StdRng::seed_from_u64(seed);
        let mut planned_rng = StdRng::seed_from_u64(seed);
        // Many consecutive draws: any divergence in RNG consumption order
        // compounds and is caught by the bitwise comparison.
        for draw in 0..25 {
            naive_resample(&mrf, &graph, &sp, &mut naive_state, 4, &mut naive_rng);
            resample_planned(&mrf, &plan, &mut planned_state, 4, &mut planned_rng, &mut scratch);
            for (i, (x, y)) in naive_state.iter().zip(&planned_state).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "divergence at metric {i}, draw {draw}, seed {seed}: {x} vs {y}"
                );
            }
        }
    }
}

#[test]
fn wrapper_resample_matches_naive() {
    let (db, graph, [a, _, _, d]) = diamond_env();
    let config = MurphyConfig::fast();
    let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 120), db.latest_tick());
    let sp = ShortestPathSubgraph::compute(&graph, a, d).unwrap();

    let mut naive_state = mrf.current.clone();
    let mut wrapper_state = mrf.current.clone();
    let mut naive_rng = StdRng::seed_from_u64(7);
    let mut wrapper_rng = StdRng::seed_from_u64(7);
    naive_resample(&mrf, &graph, &sp, &mut naive_state, 4, &mut naive_rng);
    resample_subgraph(&mrf, &graph, &sp, &mut wrapper_state, 4, &mut wrapper_rng);
    for (x, y) in naive_state.iter().zip(&wrapper_state) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn plan_positions_are_the_factored_touched_subset() {
    let (db, graph, [a, _, _, d]) = diamond_env();
    let config = MurphyConfig::fast();
    let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 120), db.latest_tick());
    let sp = ShortestPathSubgraph::compute_with_slack(&graph, a, d, config.subgraph_slack).unwrap();
    let plan = ResamplePlan::new(&mrf, &graph, &sp);
    let touched = touched_positions(&mrf, &graph, &sp);
    for &pos in plan.positions() {
        assert!(touched.contains(&pos), "planned position {pos} outside the subgraph");
        assert!(mrf.factors[pos].is_some(), "planned position {pos} has no factor");
    }
    // Every factored touched position is planned — nothing is skipped.
    for &pos in &touched {
        if mrf.factors[pos].is_some() {
            assert!(plan.positions().contains(&pos));
        }
    }
    assert!(plan.scratch().capacity() >= config.feature_budget.min(1));
}

/// A hand-built ridge factor reading positions [1, 3, 5] of a 7-wide state.
fn test_factor() -> Factor {
    let xs: Vec<Vec<f64>> = (0..80)
        .map(|i| vec![i as f64, ((i * 3) % 11) as f64, ((i * 7) % 5) as f64])
        .collect();
    let ys: Vec<f64> = xs.iter().map(|r| 0.4 * r[0] - 1.2 * r[1] + 2.0 * r[2] + 3.0).collect();
    let model = TrainedModel::fit(ModelKind::Ridge, &xs, &ys, 0).unwrap();
    Factor {
        target: MetricId::new(EntityId(0), MetricKind::CpuUtil),
        feature_positions: vec![1, 3, 5],
        feature_ids: vec![
            MetricId::new(EntityId(1), MetricKind::CpuUtil),
            MetricId::new(EntityId(2), MetricKind::CpuUtil),
            MetricId::new(EntityId(3), MetricKind::CpuUtil),
        ],
        model: std::sync::Arc::new(model),
    }
}

proptest! {
    /// `sample_into` must agree bit-for-bit with `sample` for arbitrary
    /// states and seeds, even when the scratch buffer carries junk from a
    /// previous gather. (The ridge path is gather-free — it reads the
    /// state through the position map and may leave the scratch buffer
    /// untouched — so nothing is asserted about the buffer's contents.)
    #[test]
    fn sample_into_matches_sample(
        state in proptest::collection::vec(-1e3f64..1e3, 7),
        junk in proptest::collection::vec(-1e6f64..1e6, 0..6),
        seed in any::<u64>(),
    ) {
        let factor = test_factor();
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let mut buf = junk;
        let plain = factor.sample(&state, &mut rng_a);
        let scratched = factor.sample_into(&state, &mut buf, &mut rng_b);
        prop_assert_eq!(plain.to_bits(), scratched.to_bits());
    }

    /// Same contract for the point prediction.
    #[test]
    fn predict_into_matches_predict(
        state in proptest::collection::vec(-1e3f64..1e3, 7),
    ) {
        let factor = test_factor();
        let mut buf = Vec::new();
        prop_assert_eq!(
            factor.predict(&state).to_bits(),
            factor.predict_into(&state, &mut buf).to_bits()
        );
    }
}
