//! Bit-parity pinning for the fingerprint-keyed training cache.
//!
//! The contract: for any workload — fresh databases, new ticks, added or
//! removed entities, window slides, config flips — [`train_mrf_cached`]
//! produces a model **bit-identical** to a cold [`train_mrf`] on the same
//! inputs. The cache may only change *how much work* training does
//! (`train_stats`), never a single bit of the model. The proptest replays
//! randomized incremental workloads against a held cache; the unit tests
//! pin the individual invalidation edges the design argues for.

use murphy_core::config::MurphyConfig;
use murphy_core::mrf::MrfModel;
use murphy_core::training::{train_mrf, train_mrf_cached, TrainingWindow};
use murphy_core::TrainingCache;
use murphy_graph::{build_from_seeds, BuildOptions, RelationshipGraph};
use murphy_telemetry::{AssociationKind, EntityId, EntityKind, MetricId, MetricKind, MonitoringDb};
use proptest::prelude::*;

/// Bitwise equality of two trained models: every float through
/// `to_bits()`, every factor field-by-field, plus a point-prediction probe
/// through each factor's model (catches a swapped-but-similar fit that
/// happens to share its summary statistics).
fn assert_models_bit_identical(cold: &MrfModel, cached: &MrfModel, context: &str) {
    assert_eq!(cold.index.ids(), cached.index.ids(), "{context}: index");
    assert_eq!(cold.factors.len(), cached.factors.len(), "{context}");
    for (pos, (a, b)) in cold.current.iter().zip(&cached.current).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{context}: current[{pos}]");
    }
    for (label, xs, ys) in [
        ("history", &cold.history, &cached.history),
        ("reference", &cold.reference, &cached.reference),
    ] {
        for (pos, (a, b)) in xs.iter().zip(ys.iter()).enumerate() {
            assert_eq!(a.count, b.count, "{context}: {label}[{pos}].count");
            assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "{context}: {label}[{pos}].mean");
            assert_eq!(
                a.std_dev.to_bits(),
                b.std_dev.to_bits(),
                "{context}: {label}[{pos}].std_dev"
            );
        }
    }
    for (pos, (a, b)) in cold.factors.iter().zip(&cached.factors).enumerate() {
        match (a, b) {
            (None, None) => {}
            (Some(fa), Some(fb)) => {
                assert_eq!(fa.target, fb.target, "{context}: factor[{pos}].target");
                assert_eq!(
                    fa.feature_positions, fb.feature_positions,
                    "{context}: factor[{pos}].feature_positions"
                );
                assert_eq!(
                    fa.feature_ids, fb.feature_ids,
                    "{context}: factor[{pos}].feature_ids"
                );
                assert_eq!(
                    fa.model.residual_std.to_bits(),
                    fb.model.residual_std.to_bits(),
                    "{context}: factor[{pos}].residual_std"
                );
                assert_eq!(
                    fa.model.train_mae.to_bits(),
                    fb.model.train_mae.to_bits(),
                    "{context}: factor[{pos}].train_mae"
                );
                // Probe prediction on the model's own current state.
                assert_eq!(
                    fa.predict(&cold.current).to_bits(),
                    fb.predict(&cached.current).to_bits(),
                    "{context}: factor[{pos}] prediction drift"
                );
            }
            _ => panic!("{context}: factor[{pos}] presence differs"),
        }
    }
}

/// Train cold and cached on identical inputs, assert bit parity, and
/// return the cached model (whose `train_stats` carry the refit/reuse
/// accounting under test).
fn train_both(
    db: &MonitoringDb,
    graph: &RelationshipGraph,
    config: &MurphyConfig,
    cache: &mut TrainingCache,
    context: &str,
) -> std::sync::Arc<MrfModel> {
    let window = TrainingWindow::online(db, 100);
    let cold = train_mrf(db, graph, config, window, db.latest_tick());
    let cached = train_mrf_cached(db, graph, config, window, db.latest_tick(), cache);
    assert_models_bit_identical(&cold, &cached, context);
    assert_eq!(
        cold.train_stats.factors_refit,
        cached.train_stats.factors_refit + cached.train_stats.factors_reused,
        "{context}: cached run must account for every cold-path fit"
    );
    cached
}

/// Record one synthetic tick for every listed entity.
fn record_tick(db: &mut MonitoringDb, entities: &[EntityId], t: u64, jitter: f64) {
    for (i, &e) in entities.iter().enumerate() {
        let v = 10.0 + jitter + 5.0 * ((t as f64) * (0.2 + 0.05 * i as f64)).sin();
        db.record(e, MetricKind::CpuUtil, t, v);
    }
}

/// A directed hub: every spoke drives the victim (spoke → victim), so the
/// victim's factor reads every spoke column and spokes read nothing.
fn directed_hub(n_spokes: usize) -> (MonitoringDb, EntityId, Vec<EntityId>) {
    let mut db = MonitoringDb::new(10);
    let victim = db.add_entity(EntityKind::Vm, "victim");
    let spokes: Vec<EntityId> = (0..n_spokes)
        .map(|i| db.add_entity(EntityKind::Vm, format!("spoke{i}")))
        .collect();
    for &s in &spokes {
        db.relate_directed(s, victim, AssociationKind::ServiceCall);
    }
    let mut all = vec![victim];
    all.extend(&spokes);
    for t in 0..120u64 {
        record_tick(&mut db, &all, t, 0.0);
    }
    (db, victim, spokes)
}

fn graph_of(db: &MonitoringDb, victim: EntityId) -> RelationshipGraph {
    build_from_seeds(db, &[victim], BuildOptions::default())
}

/// splitmix64: drives the replayed workload from one proptest-supplied
/// seed, so the sequence is deterministic per seed yet covers every op
/// kind over the 12 steps.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Replay a randomized 12-step incremental workload — new ticks,
    /// in-window overwrites, entity adds/removes, config flips — against
    /// one held cache, asserting cold/cached bit parity after every step.
    #[test]
    fn cached_training_is_bit_identical_under_incremental_workloads(
        n in 3usize..6,
        workload_seed in any::<u64>(),
    ) {
        let (mut db, victim, spokes) = directed_hub(n);
        let mut entities: Vec<EntityId> = std::iter::once(victim).chain(spokes).collect();
        let mut extras: Vec<EntityId> = Vec::new();
        let mut config = MurphyConfig::fast();
        let mut cache = TrainingCache::new();
        let mut rng = workload_seed;

        let graph = graph_of(&db, victim);
        train_both(&db, &graph, &config, &mut cache, "initial");

        for step in 0..12usize {
            let r = splitmix(&mut rng);
            let op = r % 5;
            match op {
                0 => {
                    // Advance the clock 1–3 ticks (slides the window).
                    for _ in 0..=(r >> 3) % 3 {
                        let t = db.latest_tick() + 1;
                        record_tick(&mut db, &entities, t, 0.3);
                    }
                }
                1 => {
                    // Late-arriving correction at an in-window tick,
                    // clock unchanged.
                    let e = entities[(r >> 3) as usize % entities.len()];
                    let t = db.latest_tick().saturating_sub(5);
                    db.record(e, MetricKind::CpuUtil, t, 42.0 + ((r >> 8) % 17) as f64);
                }
                2 => {
                    // New spoke (backfilled) driving the victim.
                    let e = db.add_entity(EntityKind::Vm, format!("extra{step}"));
                    db.relate_directed(e, victim, AssociationKind::ServiceCall);
                    for t in 0..=db.latest_tick() {
                        db.record(e, MetricKind::CpuUtil, t, 7.0 + (t % 13) as f64);
                    }
                    entities.push(e);
                    extras.push(e);
                }
                3 => {
                    // Remove the most recently added extra, if any.
                    if let Some(e) = extras.pop() {
                        db.remove_entity(e);
                        entities.retain(|&x| x != e);
                    }
                }
                _ => {
                    // Config flip (flushes the cache; parity must survive).
                    config.seed ^= (r >> 3) | 1;
                }
            }
            let graph = graph_of(&db, victim);
            train_both(&db, &graph, &config, &mut cache, &format!("step {step}, op {op}"));
        }
    }
}

/// Steady state: retraining at an unchanged window refits nothing and
/// reuses every factor.
#[test]
fn warm_rerun_reuses_every_factor() {
    let (db, victim, spokes) = directed_hub(4);
    let graph = graph_of(&db, victim);
    let config = MurphyConfig::fast();
    let mut cache = TrainingCache::new();

    let cold = train_both(&db, &graph, &config, &mut cache, "cold");
    assert_eq!(cold.train_stats.factors_reused, 0);
    assert_eq!(cold.train_stats.factors_refit, spokes.len() + 1);
    assert_eq!(cache.len(), spokes.len() + 1);

    let warm = train_both(&db, &graph, &config, &mut cache, "warm");
    assert_eq!(warm.train_stats.factors_refit, 0, "steady state must refit nothing");
    assert_eq!(warm.train_stats.factors_reused, spokes.len() + 1);
}

/// A window slide changes every column fingerprint (the bounds are part of
/// the hash), so nothing may be reused — stale-window fits never leak in.
#[test]
fn window_slide_invalidates_everything() {
    let (mut db, victim, spokes) = directed_hub(4);
    let config = MurphyConfig::fast();
    let mut cache = TrainingCache::new();
    let graph = graph_of(&db, victim);
    train_both(&db, &graph, &config, &mut cache, "cold");

    let entities: Vec<EntityId> = std::iter::once(victim).chain(spokes.iter().copied()).collect();
    let t = db.latest_tick() + 1;
    record_tick(&mut db, &entities, t, 1.0);

    let graph = graph_of(&db, victim);
    let slid = train_both(&db, &graph, &config, &mut cache, "slid");
    assert_eq!(slid.train_stats.factors_reused, 0, "window slide must invalidate all");
    assert_eq!(slid.train_stats.factors_refit, entities.len());
}

/// Overwriting one spoke's value at an in-window tick (no clock advance)
/// refits exactly that spoke's own factor and the victim's (which reads
/// the spoke as a candidate); every other spoke is reused.
#[test]
fn single_metric_update_invalidates_only_downstream_factors() {
    let (mut db, victim, spokes) = directed_hub(5);
    let config = MurphyConfig::fast();
    let mut cache = TrainingCache::new();
    let graph = graph_of(&db, victim);
    train_both(&db, &graph, &config, &mut cache, "cold");

    let t = db.latest_tick() - 10;
    db.record(spokes[0], MetricKind::CpuUtil, t, 77.0);

    let dirty = train_both(&db, &graph, &config, &mut cache, "dirty spoke");
    // spoke0's own factor (target column changed) + victim (candidate
    // column changed); the other 4 spokes have no candidates and
    // unchanged targets.
    assert_eq!(dirty.train_stats.factors_refit, 2);
    assert_eq!(dirty.train_stats.factors_reused, spokes.len() - 1);
}

/// Adding an entity appends to the index, so existing positions — and
/// their seeds — are stable: only the new entity and the factors that see
/// it as a candidate refit.
#[test]
fn add_entity_preserves_reuse_for_untouched_factors() {
    let (mut db, victim, spokes) = directed_hub(4);
    let config = MurphyConfig::fast();
    let mut cache = TrainingCache::new();
    let graph = graph_of(&db, victim);
    train_both(&db, &graph, &config, &mut cache, "cold");

    let newcomer = db.add_entity(EntityKind::Vm, "newcomer");
    db.relate_directed(newcomer, victim, AssociationKind::ServiceCall);
    for t in 0..=db.latest_tick() {
        db.record(newcomer, MetricKind::CpuUtil, t, 3.0 + (t % 7) as f64);
    }

    let graph = graph_of(&db, victim);
    let grown = train_both(&db, &graph, &config, &mut cache, "grown");
    // Refit: the newcomer's factor + the victim's (its candidate list
    // gained a column). Reused: every untouched spoke.
    assert_eq!(grown.train_stats.factors_refit, 2);
    assert_eq!(grown.train_stats.factors_reused, spokes.len());
}

/// Removing an entity evicts its cache entry (bounding the cache) and the
/// model stays bit-identical to a cold train on the shrunken topology.
#[test]
fn remove_entity_evicts_cache_entries() {
    let (mut db, victim, spokes) = directed_hub(4);
    let config = MurphyConfig::fast();
    let mut cache = TrainingCache::new();
    let graph = graph_of(&db, victim);
    train_both(&db, &graph, &config, &mut cache, "cold");
    let gone = MetricId::new(spokes[0], MetricKind::CpuUtil);
    assert!(cache.contains(gone));
    assert_eq!(cache.len(), spokes.len() + 1);

    db.remove_entity(spokes[0]);
    let graph = graph_of(&db, victim);
    train_both(&db, &graph, &config, &mut cache, "shrunk");
    assert!(!cache.contains(gone), "evicted entry for removed entity");
    assert_eq!(cache.len(), spokes.len(), "cache bounded to the live index");
}

/// Any config change flushes the cache: the next run is a full refit.
#[test]
fn config_change_flushes_cache() {
    let (db, victim, spokes) = directed_hub(3);
    let graph = graph_of(&db, victim);
    let mut config = MurphyConfig::fast();
    let mut cache = TrainingCache::new();
    train_both(&db, &graph, &config, &mut cache, "cold");

    config.feature_budget += 1;
    let flipped = train_both(&db, &graph, &config, &mut cache, "config flip");
    assert_eq!(flipped.train_stats.factors_reused, 0);
    assert_eq!(flipped.train_stats.factors_refit, spokes.len() + 1);
}
