//! Parity and accounting regression tests for the per-symptom
//! memoization layer (`SymptomContext`) and batch diagnosis.
//!
//! The memoized path (shared reverse BFS + interned resampling plans)
//! must be a pure cost optimization: for a fixed seed, every candidate
//! verdict — and therefore every ranked report — must be bit-identical
//! to the legacy per-candidate path. These tests pin that contract, plus
//! the candidate-accounting invariant
//! `evaluated + pruned + capped + 1 == node_count`.

use murphy_core::config::MurphyConfig;
use murphy_core::diagnose::{diagnose_batch, diagnose_symptom, diagnose_with_candidates};
use murphy_core::training::{train_mrf, TrainingWindow};
use murphy_core::{evaluate_candidate, evaluate_candidate_prepared, Symptom, SymptomContext};
use murphy_graph::{
    build_from_seeds, BuildOptions, RelationshipGraph, ShortestPathSubgraph, SymptomDistances,
};
use murphy_telemetry::{AssociationKind, EntityId, EntityKind, MetricKind, MonitoringDb};
use proptest::prelude::*;

/// A randomized star or chain around a victim entity, with one hot
/// driver at the far end and mildly wiggling intermediates.
fn topology_env(
    n: usize,
    star: bool,
    amp: f64,
    phase: f64,
) -> (MonitoringDb, RelationshipGraph, EntityId, Vec<EntityId>) {
    let mut db = MonitoringDb::new(10);
    let entities: Vec<EntityId> = (0..n)
        .map(|i| db.add_entity(EntityKind::Vm, format!("e{i}")))
        .collect();
    let victim = entities[0];
    if star {
        for &e in &entities[1..] {
            db.relate(e, victim, AssociationKind::Related);
        }
    } else {
        for w in entities.windows(2) {
            db.relate(w[1], w[0], AssociationKind::Related);
        }
    }
    let driver_idx = n - 1;
    for t in 0..200u64 {
        let spike = if t >= 180 { 50.0 } else { 0.0 };
        let drv = 15.0 + amp * ((t as f64) * 0.3 + phase).sin() + spike;
        for (i, &e) in entities.iter().enumerate() {
            let v = if i == driver_idx {
                drv
            } else if i == 0 {
                (0.8 * drv + 5.0).min(100.0)
            } else {
                10.0 + amp * ((t as f64) * (0.2 + 0.1 * i as f64) + phase).cos()
            };
            db.record(e, MetricKind::CpuUtil, t, v);
        }
    }
    let graph = build_from_seeds(&db, &[victim], BuildOptions::default());
    (db, graph, victim, entities)
}

/// Assert two optional verdicts are bit-identical in every float field.
fn assert_bit_identical(
    legacy: &Option<murphy_core::CandidateVerdict>,
    memoized: &Option<murphy_core::CandidateVerdict>,
    context: &str,
) {
    match (legacy, memoized) {
        (None, None) => {}
        (Some(l), Some(m)) => {
            assert_eq!(l.is_root_cause, m.is_root_cause, "{context}");
            assert_eq!(l.distance, m.distance, "{context}");
            assert_eq!(
                l.counterfactual_mean.to_bits(),
                m.counterfactual_mean.to_bits(),
                "{context}"
            );
            assert_eq!(l.factual_mean.to_bits(), m.factual_mean.to_bits(), "{context}");
            assert_eq!(l.p_value.to_bits(), m.p_value.to_bits(), "{context}");
        }
        _ => panic!("{context}: one path returned a verdict, the other did not: {legacy:?} vs {memoized:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The shared-reverse-BFS subgraph derivation must equal the
    /// from-scratch computation for every (candidate, target) pair.
    #[test]
    fn shared_reverse_bfs_subgraphs_match_from_scratch(
        n in 3usize..7,
        star in any::<bool>(),
        slack in 0usize..3,
        amp in 0.5f64..8.0,
    ) {
        let (_db, graph, victim, entities) = topology_env(n, star, amp, 0.0);
        let rev = SymptomDistances::compute(&graph, victim).expect("victim in graph");
        for &c in &entities {
            let scratch = ShortestPathSubgraph::compute_with_slack(&graph, c, victim, slack);
            let shared = ShortestPathSubgraph::compute_with_slack_from(&graph, c, &rev, slack);
            prop_assert_eq!(&scratch, &shared, "candidate {:?}", c);
        }
    }

    /// Memoized candidate evaluation is bit-identical to the legacy
    /// per-candidate path over random topologies, slacks, and seeds.
    #[test]
    fn memoized_verdicts_bit_identical_to_legacy(
        n in 3usize..6,
        star in any::<bool>(),
        seed in any::<u64>(),
        amp in 0.5f64..8.0,
        phase in 0.0f64..3.0,
    ) {
        let (db, graph, victim, entities) = topology_env(n, star, amp, phase);
        let mut config = MurphyConfig::fast();
        config.num_samples = 30;
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 160), db.latest_tick());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);

        let candidates: Vec<EntityId> =
            entities.iter().copied().filter(|&e| e != victim).collect();
        let mut ctx = SymptomContext::new(&graph, victim, config.subgraph_slack);
        ctx.prepare(&mrf, &candidates, None);

        for &c in &candidates {
            let legacy = evaluate_candidate(&mrf, &graph, &symptom, c, &config, seed);
            let memoized = ctx
                .prepared(c)
                .and_then(|p| evaluate_candidate_prepared(&mrf, &symptom, p, &config, seed));
            assert_bit_identical(&legacy, &memoized, &format!("candidate {c:?}, seed {seed}"));
        }
    }
}

#[test]
fn batch_reports_equal_independent_reports() {
    let (db, graph, victim, entities) = topology_env(5, true, 4.0, 0.7);
    let config = MurphyConfig::fast();
    let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 160), db.latest_tick());
    let symptoms: Vec<Symptom> = entities
        .iter()
        .map(|&e| Symptom::high(e, MetricKind::CpuUtil))
        // Duplicate the victim symptom to exercise context reuse.
        .chain([Symptom::high(victim, MetricKind::CpuUtil)])
        .collect();
    let batched = diagnose_batch(&db, &mrf, &graph, &symptoms, &config);
    assert_eq!(batched.len(), symptoms.len());
    for (symptom, report) in symptoms.iter().zip(&batched) {
        let single = diagnose_symptom(&db, &mrf, &graph, symptom, &config);
        assert_eq!(report, &single, "batch diverged for {symptom:?}");
        assert_eq!(
            report.candidates_evaluated
                + report.candidates_pruned
                + report.candidates_capped
                + 1,
            graph.node_count(),
            "accounting violated for {symptom:?}: {report:?}"
        );
    }
}

#[test]
fn accounting_invariant_with_max_candidates_cap() {
    let (db, graph, victim, _) = topology_env(6, true, 5.0, 1.3);
    for max_candidates in [0usize, 1, 2, 100] {
        let mut config = MurphyConfig::fast();
        config.max_candidates = max_candidates;
        let mrf =
            train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 160), db.latest_tick());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);
        let report = diagnose_symptom(&db, &mrf, &graph, &symptom, &config);
        assert_eq!(
            report.candidates_evaluated
                + report.candidates_pruned
                + report.candidates_capped
                + 1,
            graph.node_count(),
            "accounting violated at cap {max_candidates}: {report:?}"
        );
        if max_candidates > 0 {
            assert!(report.candidates_evaluated <= max_candidates);
        }
    }
}

#[test]
fn ablation_candidate_lists_filter_the_symptom_entity() {
    // Passing every graph entity — symptom included — must not change the
    // accounting base or evaluate the symptom against itself.
    let (db, graph, victim, entities) = topology_env(4, false, 3.0, 0.2);
    let config = MurphyConfig::fast();
    let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 160), db.latest_tick());
    let symptom = Symptom::high(victim, MetricKind::CpuUtil);
    let all: Vec<EntityId> = entities.clone();
    let report = diagnose_with_candidates(&db, &mrf, &graph, &symptom, &all, &config);
    assert_eq!(report.candidates_evaluated, entities.len() - 1);
    assert!(report.rank_of(victim).is_none(), "symptom ranked as its own cause");
}
