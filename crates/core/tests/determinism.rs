//! Determinism pinning for the persistent worker pool.
//!
//! The fixed-seed contract: for a given `(db, graph, symptom, config)`,
//! diagnosis output is **bit-identical** regardless of how the candidate
//! fan-out is scheduled — sequentially, over a 2/4/8-thread pool, or
//! repeatedly on one long-lived pool instance whose workers have already
//! served other batches. Thread counts are varied in-process through
//! explicit [`WorkerPool`] instances and the `diagnose_*_on` entry points
//! (the `MURPHY_THREADS`-sized global pool is fixed per process;
//! `scripts/tier1.sh` additionally runs the whole suite under
//! `MURPHY_THREADS=1` and `=4`).
//!
//! Work stealing only decides *who computes* an index, never where its
//! result lands, and per-candidate seeds are pure functions of stable
//! entity ids — these tests are the tripwire for anything that breaks
//! either half of that argument.
//!
//! The same contract extends to the telemetry store's shard count: the
//! sharded database (`MURPHY_SHARDS`, `MonitoringDb::with_shards`) is a
//! storage layout, so end-to-end diagnosis must be bit-identical at 1,
//! 2, 4, and 8 shards — including when the trace was ingested through
//! the bulk `record_batch` path and trained through the fanned-out
//! column scans.

use murphy_core::config::MurphyConfig;
use murphy_core::diagnose::{diagnose_batch_on, diagnose_symptom_on};
use murphy_core::training::{train_mrf, train_mrf_cached, TrainingWindow};
use murphy_core::{DiagnosisReport, Symptom, TrainingCache, WorkerPool};
use murphy_graph::{build_from_seeds, BuildOptions, RelationshipGraph};
use murphy_telemetry::{
    AssociationKind, EntityId, EntityKind, MetricKind, MetricSample, MonitoringDb,
};
use proptest::prelude::*;

/// Populate a randomized star or chain around a victim entity, with one
/// hot driver at the far end and mildly wiggling intermediates. Metrics
/// go in through the bulk `record_batch` path (one batch per tick), so
/// every test in this file also exercises sharded ingestion end to end.
fn populate_topology(
    db: &mut MonitoringDb,
    n: usize,
    star: bool,
    amp: f64,
    phase: f64,
) -> (RelationshipGraph, EntityId, Vec<EntityId>) {
    let entities: Vec<EntityId> = (0..n)
        .map(|i| db.add_entity(EntityKind::Vm, format!("e{i}")))
        .collect();
    let victim = entities[0];
    if star {
        for &e in &entities[1..] {
            db.relate(e, victim, AssociationKind::Related);
        }
    } else {
        for w in entities.windows(2) {
            db.relate(w[1], w[0], AssociationKind::Related);
        }
    }
    let driver_idx = n - 1;
    let mut samples: Vec<MetricSample> = Vec::new();
    for t in 0..200u64 {
        let spike = if t >= 180 { 50.0 } else { 0.0 };
        let drv = 15.0 + amp * ((t as f64) * 0.3 + phase).sin() + spike;
        for (i, &e) in entities.iter().enumerate() {
            // Intermediates catch a partial spike too, so several
            // entities clear the anomaly threshold and the candidate
            // fan-out has real parallel work to schedule.
            let v = if i == driver_idx {
                drv
            } else if i == 0 {
                (0.8 * drv + 5.0).min(100.0)
            } else {
                10.0 + 0.6 * spike + amp * ((t as f64) * (0.2 + 0.1 * i as f64) + phase).cos()
            };
            samples.push(MetricSample::new(e, MetricKind::CpuUtil, t, v));
        }
        db.record_batch(&samples);
        samples.clear();
    }
    let graph = build_from_seeds(db, &[victim], BuildOptions::default());
    (graph, victim, entities)
}

/// Environment on a database whose shard count comes from the ambient
/// `MURPHY_SHARDS` (so the tier-1 matrix varies it process-wide).
fn topology_env(
    n: usize,
    star: bool,
    amp: f64,
    phase: f64,
) -> (MonitoringDb, RelationshipGraph, EntityId, Vec<EntityId>) {
    let mut db = MonitoringDb::new(10);
    let (graph, victim, entities) = populate_topology(&mut db, n, star, amp, phase);
    (db, graph, victim, entities)
}

/// Environment on a database with an explicit shard count.
fn topology_env_sharded(
    n: usize,
    star: bool,
    amp: f64,
    phase: f64,
    shards: usize,
) -> (MonitoringDb, RelationshipGraph, EntityId, Vec<EntityId>) {
    let mut db = MonitoringDb::with_shards(10, shards);
    let (graph, victim, entities) = populate_topology(&mut db, n, star, amp, phase);
    (db, graph, victim, entities)
}

/// Bitwise equality of two reports: counts exactly, every float field
/// compared through `to_bits()` (the `PartialEq` impl would hide a
/// ±1-ulp drift — exactly the regression these tests exist to catch).
fn assert_reports_bit_identical(a: &DiagnosisReport, b: &DiagnosisReport, context: &str) {
    assert_eq!(a.candidates_evaluated, b.candidates_evaluated, "{context}");
    assert_eq!(a.candidates_pruned, b.candidates_pruned, "{context}");
    assert_eq!(a.candidates_capped, b.candidates_capped, "{context}");
    assert_eq!(
        a.root_causes.len(),
        b.root_causes.len(),
        "{context}: {:?} vs {:?}",
        a.root_causes,
        b.root_causes
    );
    for (x, y) in a.root_causes.iter().zip(&b.root_causes) {
        assert_eq!(x.entity, y.entity, "{context}");
        assert_eq!(x.metric, y.metric, "{context}");
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "{context}: score drift");
        assert_eq!(x.verdict.is_root_cause, y.verdict.is_root_cause, "{context}");
        assert_eq!(x.verdict.distance, y.verdict.distance, "{context}");
        assert_eq!(
            x.verdict.counterfactual_mean.to_bits(),
            y.verdict.counterfactual_mean.to_bits(),
            "{context}: counterfactual_mean drift"
        );
        assert_eq!(
            x.verdict.factual_mean.to_bits(),
            y.verdict.factual_mean.to_bits(),
            "{context}: factual_mean drift"
        );
        assert_eq!(
            x.verdict.p_value.to_bits(),
            y.verdict.p_value.to_bits(),
            "{context}: p_value drift"
        );
    }
}

fn fast_config() -> MurphyConfig {
    let mut config = MurphyConfig::fast();
    config.num_samples = 30;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// One symptom, one trained model, pools of 1/2/4/8 threads: every
    /// report must be bit-identical to the sequential reference.
    #[test]
    fn diagnosis_is_bit_identical_across_thread_counts(
        n in 3usize..6,
        star in any::<bool>(),
        amp in 0.5f64..8.0,
        phase in 0.0f64..3.0,
    ) {
        let (db, graph, victim, _) = topology_env(n, star, amp, phase);
        let config = fast_config();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 160), db.latest_tick());
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);

        let reference =
            diagnose_symptom_on(&db, &mrf, &graph, &symptom, &config, &WorkerPool::new(1));
        for threads in [2usize, 4, 8] {
            let pool = WorkerPool::new(threads);
            let report = diagnose_symptom_on(&db, &mrf, &graph, &symptom, &config, &pool);
            assert_reports_bit_identical(
                &reference,
                &report,
                &format!("threads={threads}, n={n}, star={star}"),
            );
        }
    }

    /// Batch diagnosis over every entity (with a duplicated symptom to
    /// exercise context reuse) must be bit-identical across pool sizes.
    #[test]
    fn batch_is_bit_identical_across_thread_counts(
        n in 3usize..6,
        star in any::<bool>(),
        amp in 0.5f64..8.0,
    ) {
        let (db, graph, victim, entities) = topology_env(n, star, amp, 0.4);
        let config = fast_config();
        let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 160), db.latest_tick());
        let symptoms: Vec<Symptom> = entities
            .iter()
            .map(|&e| Symptom::high(e, MetricKind::CpuUtil))
            .chain([Symptom::high(victim, MetricKind::CpuUtil)])
            .collect();

        let reference =
            diagnose_batch_on(&db, &mrf, &graph, &symptoms, &config, &WorkerPool::new(1));
        for threads in [2usize, 4, 8] {
            let pool = WorkerPool::new(threads);
            let reports = diagnose_batch_on(&db, &mrf, &graph, &symptoms, &config, &pool);
            prop_assert_eq!(reports.len(), reference.len());
            for (i, (a, b)) in reference.iter().zip(&reports).enumerate() {
                assert_reports_bit_identical(
                    a,
                    b,
                    &format!("threads={threads}, symptom #{i}"),
                );
            }
        }
    }

    /// The same topology ingested into 1/2/4/8-shard databases (through
    /// `record_batch`), trained and diagnosed afresh on each: every
    /// report must be bit-identical to the unsharded reference —
    /// crossed with pool sizes, since shard fan-out and candidate
    /// fan-out share the worker pool.
    #[test]
    fn diagnosis_is_bit_identical_across_shard_counts(
        n in 3usize..6,
        star in any::<bool>(),
        amp in 0.5f64..8.0,
        phase in 0.0f64..3.0,
    ) {
        let config = fast_config();
        let mut reference: Option<DiagnosisReport> = None;
        for shards in [1usize, 2, 4, 8] {
            let (db, graph, victim, _) = topology_env_sharded(n, star, amp, phase, shards);
            prop_assert_eq!(db.shard_count(), shards);
            let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 160), db.latest_tick());
            let symptom = Symptom::high(victim, MetricKind::CpuUtil);
            for threads in [1usize, 4] {
                let report = diagnose_symptom_on(
                    &db, &mrf, &graph, &symptom, &config, &WorkerPool::new(threads),
                );
                match &reference {
                    None => reference = Some(report),
                    Some(r) => assert_reports_bit_identical(
                        r,
                        &report,
                        &format!("shards={shards}, threads={threads}, n={n}, star={star}"),
                    ),
                }
            }
        }
    }

    /// Batch diagnosis on sharded vs unsharded databases.
    #[test]
    fn batch_is_bit_identical_across_shard_counts(
        n in 3usize..6,
        star in any::<bool>(),
        amp in 0.5f64..8.0,
    ) {
        let config = fast_config();
        let mut reference: Option<Vec<DiagnosisReport>> = None;
        for shards in [1usize, 2, 4, 8] {
            let (db, graph, victim, entities) = topology_env_sharded(n, star, amp, 0.4, shards);
            let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 160), db.latest_tick());
            let symptoms: Vec<Symptom> = entities
                .iter()
                .map(|&e| Symptom::high(e, MetricKind::CpuUtil))
                .chain([Symptom::high(victim, MetricKind::CpuUtil)])
                .collect();
            let reports =
                diagnose_batch_on(&db, &mrf, &graph, &symptoms, &config, &WorkerPool::new(4));
            match &reference {
                None => reference = Some(reports),
                Some(r) => {
                    prop_assert_eq!(reports.len(), r.len());
                    for (i, (a, b)) in r.iter().zip(&reports).enumerate() {
                        assert_reports_bit_identical(
                            a,
                            b,
                            &format!("shards={shards}, symptom #{i}"),
                        );
                    }
                }
            }
        }
    }
}

/// Cache-trained models must diagnose bit-identically to cold-trained
/// ones at every shard count — both on a cold cache (everything refit
/// through the pool fan-out) and on a warm rerun (everything reused) —
/// crossed with pool sizes for the candidate fan-out. The tier-1 matrix
/// additionally runs this whole file under `MURPHY_THREADS={1,4}` ×
/// `MURPHY_SHARDS={1,4}` × `MURPHY_TRAIN_CACHE={0,1}`, which varies the
/// training pool and the `Murphy` facade's gate process-wide.
#[test]
fn cached_training_diagnoses_bit_identical_across_shard_counts() {
    let config = fast_config();
    let mut reference: Option<DiagnosisReport> = None;
    for shards in [1usize, 2, 4, 8] {
        let (db, graph, victim, _) = topology_env_sharded(5, true, 4.0, 1.1, shards);
        let window = TrainingWindow::online(&db, 160);
        let symptom = Symptom::high(victim, MetricKind::CpuUtil);

        let cold = train_mrf(&db, &graph, &config, window, db.latest_tick());
        let mut cache = TrainingCache::new();
        let first = train_mrf_cached(&db, &graph, &config, window, db.latest_tick(), &mut cache);
        assert_eq!(first.train_stats.factors_reused, 0, "shards={shards}: cold cache");
        assert_eq!(
            first.train_stats.factors_refit, cold.train_stats.factors_refit,
            "shards={shards}: cold-cache run must fit exactly the cold path's factors"
        );
        let warm = train_mrf_cached(&db, &graph, &config, window, db.latest_tick(), &mut cache);
        assert_eq!(warm.train_stats.factors_refit, 0, "shards={shards}: warm rerun");
        assert!(warm.train_stats.factors_reused > 0, "shards={shards}: warm rerun");

        for (label, mrf) in [("cold", &cold), ("first", &first), ("warm", &warm)] {
            for threads in [1usize, 4] {
                let report = diagnose_symptom_on(
                    &db, mrf, &graph, &symptom, &config, &WorkerPool::new(threads),
                );
                match &reference {
                    None => reference = Some(report),
                    Some(r) => assert_reports_bit_identical(
                        r,
                        &report,
                        &format!("shards={shards}, threads={threads}, model={label}"),
                    ),
                }
            }
        }
    }
}

/// Reusing one pool instance across many diagnoses — the production
/// shape: one long-lived global pool serving every batch — must not leak
/// state between runs.
#[test]
fn repeated_runs_on_one_pool_instance_are_bit_identical() {
    let (db, graph, victim, _) = topology_env(5, true, 4.0, 1.1);
    let config = fast_config();
    let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 160), db.latest_tick());
    let symptom = Symptom::high(victim, MetricKind::CpuUtil);

    let pool = WorkerPool::new(4);
    let first = diagnose_symptom_on(&db, &mrf, &graph, &symptom, &config, &pool);
    for run in 1..5 {
        let again = diagnose_symptom_on(&db, &mrf, &graph, &symptom, &config, &pool);
        assert_reports_bit_identical(&first, &again, &format!("run #{run} on shared pool"));
    }
    // The same workers served every run — batches accumulated, threads
    // did not.
    let stats = pool.stats();
    assert!(stats.batches_run >= 5, "expected ≥5 batches, got {}", stats.batches_run);
    assert!(stats.jobs_dispatched > stats.batches_run, "{stats:?}");
    assert_eq!(stats.threads, 4);
    assert_eq!(stats.live_workers, 3, "3 workers + the submitting thread");
}

/// The explicit-pool entry point must agree with the config-driven one
/// (sequential flavor), pinning that `diagnose_symptom_on` is a pure
/// scheduling override.
#[test]
fn explicit_pool_matches_config_driven_sequential_path() {
    let (db, graph, victim, _) = topology_env(4, false, 3.0, 0.8);
    let mut config = fast_config();
    let mrf = train_mrf(&db, &graph, &config, TrainingWindow::online(&db, 160), db.latest_tick());
    let symptom = Symptom::high(victim, MetricKind::CpuUtil);

    config.parallel = false;
    let sequential = murphy_core::diagnose::diagnose_symptom(&db, &mrf, &graph, &symptom, &config);
    config.parallel = true;
    let pooled = diagnose_symptom_on(&db, &mrf, &graph, &symptom, &config, &WorkerPool::new(8));
    assert_reports_bit_identical(&sequential, &pooled, "sequential vs explicit 8-thread pool");
}
